//! Cross-crate integration: the full CO-MAP decision pipeline from
//! positions to transmission settings, exercised through the umbrella
//! crate's public API.

use comap::core::{CoMapError, Protocol, ProtocolConfig};
use comap::radio::Position;

/// A two-cell network with one of everything: contender, hidden terminal,
/// independent node.
fn populated() -> Protocol<&'static str> {
    let mut p = Protocol::new("me", ProtocolConfig::testbed());
    p.set_own_position(Position::new(0.0, 0.0));
    p.on_position_report("myap", Position::new(18.0, 0.0));
    p.on_position_report("contender", Position::new(14.0, 4.0));
    p.on_position_report("hidden", Position::new(43.0, 0.0));
    p.on_position_report("independent", Position::new(120.0, 0.0));
    p.on_position_report("far_src", Position::new(140.0, 0.0));
    p
}

#[test]
fn census_classifies_the_menagerie() {
    let p = populated();
    let census = p.ht_census("myap").unwrap();
    assert!(census.hidden.contains(&"hidden"), "census = {census:?}");
    assert!(
        census.contenders.contains(&"contender"),
        "census = {census:?}"
    );
    assert!(
        census.independent.contains(&"independent"),
        "census = {census:?}"
    );
}

#[test]
fn settings_react_to_the_census() {
    let p = populated();
    let with_ht = p.tx_setting("myap").unwrap();
    // Remove the hidden terminal: payload must not shrink further.
    let mut calm = populated();
    calm.on_position_report("hidden", Position::new(500.0, 0.0));
    let without = calm.tx_setting("myap").unwrap();
    assert!(with_ht.payload_bytes <= without.payload_bytes);
}

#[test]
fn concurrency_pipeline_uses_and_fills_the_cache() {
    let mut p = populated();
    // A remote link is concurrent-safe.
    let ok = p
        .concurrency_allowed(("independent", "far_src"), "myap")
        .unwrap();
    assert!(ok, "remote cells must validate");
    let (h0, m0) = p.cooccurrence().stats();
    assert_eq!((h0, m0), (0, 1));
    // Second query is a cache hit.
    let again = p
        .concurrency_allowed(("independent", "far_src"), "myap")
        .unwrap();
    assert!(again);
    assert_eq!(p.cooccurrence().stats(), (1, 1));
    // Failure feedback flips the verdict.
    p.record_concurrency_outcome(("independent", "far_src"), "myap", false);
    assert!(!p
        .concurrency_allowed(("independent", "far_src"), "myap")
        .unwrap());
}

#[test]
fn errors_surface_for_unknown_nodes() {
    let mut p = populated();
    assert_eq!(
        p.concurrency_allowed(("ghost", "far_src"), "myap"),
        Err(CoMapError::UnknownNeighbor("ghost"))
    );
    assert!(p.ht_census("ghost").is_err());
}

#[test]
fn mobility_threshold_gates_cache_invalidation() {
    let mut p = populated();
    let _ = p
        .concurrency_allowed(("independent", "far_src"), "myap")
        .unwrap();
    assert_eq!(p.cooccurrence().len(), 1);
    // Sub-threshold jiggle keeps the cache.
    assert!(!p.on_position_report("independent", Position::new(121.0, 0.0)));
    assert_eq!(p.cooccurrence().len(), 1);
    // A real move drops entries involving the mover.
    assert!(p.on_position_report("independent", Position::new(60.0, 0.0)));
    assert_eq!(p.cooccurrence().len(), 0);
}

#[test]
fn scheduler_is_derivable_from_config() {
    let p = populated();
    let sched = p.arm_scheduler(comap::radio::units::Dbm::new(-70.0));
    use comap::core::EtAction;
    assert_eq!(
        sched.on_rssi(comap::radio::units::Dbm::new(-70.0)),
        EtAction::Continue
    );
    assert_eq!(
        sched.on_rssi(comap::radio::units::Dbm::new(-60.0)),
        EtAction::Abandon
    );
}
