//! Golden-trace regression tests.
//!
//! The full JSONL event stream of one representative quick-mode run of
//! fig02 (hidden-terminal testbed) and fig08 (exposed-terminal testbed)
//! is pinned byte-for-byte under `tests/golden/`. Any change to event
//! ordering, timing, RNG consumption, medium bookkeeping, or the JSONL
//! schema shows up here as a diff against the stored trace — which is
//! exactly the point: behavioral drift must be a deliberate, reviewed
//! regeneration, never an accident.
//!
//! To regenerate after an intentional behavior change, run
//! `scripts/regen_golden.sh` (it sets `REGEN_GOLDEN=1` and re-runs this
//! test binary, which then rewrites the files instead of comparing).

use std::cell::RefCell;
use std::io::{self, Write};
use std::path::PathBuf;
use std::rc::Rc;

use comap::experiments::instrument::representative;
use comap::mac::SimDuration;
use comap::sim::observe::parse_jsonl_line;
use comap::sim::{JsonlSink, Simulator};

/// `(experiment name, golden file)` — names resolve through
/// [`representative`], so the golden topology is exactly the one the
/// `--trace` instrumentation flag of that binary would run.
const GOLDEN: &[(&str, &str)] = &[
    ("fig02", "fig02_quick.jsonl"),
    ("fig08", "fig08_quick.jsonl"),
];

/// Shorter than the 400 ms instrumentation runs to keep the checked-in
/// files small, long enough that DATA/ACK cycles, backoff, map exchange
/// and (for fig02) mobility all appear in the stream.
const GOLDEN_MILLIS: u64 = 150;

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn regen_requested() -> bool {
    std::env::var_os("REGEN_GOLDEN").is_some()
}

/// A writer handing every byte to a shared buffer, so the trace survives
/// `Simulator::run` consuming the boxed sink.
#[derive(Clone)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Runs the named experiment's representative topology for
/// [`GOLDEN_MILLIS`] with a [`JsonlSink`] attached and returns the trace.
fn trace(name: &str) -> String {
    let (cfg, _) = representative(name);
    let buf = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulator::new(cfg);
    sim.attach_sink(Box::new(JsonlSink::new(SharedBuf(buf.clone()))));
    sim.run(SimDuration::from_millis(GOLDEN_MILLIS));
    let bytes = buf.borrow().clone();
    String::from_utf8(bytes).expect("JSONL traces are UTF-8")
}

#[test]
fn golden_traces_are_reproduced_byte_for_byte() {
    for &(name, file) in GOLDEN {
        let path = golden_path(file);
        let fresh = trace(name);
        assert!(
            fresh.lines().count() > 500,
            "{name}: a {GOLDEN_MILLIS} ms trace should hold hundreds of events, \
             got {} — the scenario is degenerate",
            fresh.lines().count()
        );

        if regen_requested() {
            std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
                .expect("create tests/golden");
            std::fs::write(&path, &fresh)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!(
                "regenerated {} ({} lines)",
                path.display(),
                fresh.lines().count()
            );
            continue;
        }

        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing or unreadable golden trace {}: {e}\n\
                 run scripts/regen_golden.sh to (re)create it",
                path.display()
            )
        });
        if fresh != golden {
            let divergence = fresh
                .lines()
                .zip(golden.lines())
                .position(|(f, g)| f != g)
                .unwrap_or_else(|| fresh.lines().count().min(golden.lines().count()));
            let fresh_line = fresh.lines().nth(divergence).unwrap_or("<end of trace>");
            let golden_line = golden.lines().nth(divergence).unwrap_or("<end of trace>");
            panic!(
                "{name}: trace diverged from {} at line {} \
                 (fresh {} lines vs golden {}):\n  fresh:  {fresh_line}\n  golden: {golden_line}\n\
                 if the change is intentional, regenerate with scripts/regen_golden.sh",
                path.display(),
                divergence + 1,
                fresh.lines().count(),
                golden.lines().count(),
            );
        }
    }
}

#[test]
fn golden_traces_replay_through_the_parser() {
    if regen_requested() {
        // Files may be mid-rewrite by the regen pass; the comparison
        // test above validates the fresh traces in that mode.
        return;
    }
    for &(name, file) in GOLDEN {
        let path = golden_path(file);
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden trace {}: {e}\nrun scripts/regen_golden.sh",
                path.display()
            )
        });
        let mut last_t = None;
        for (i, line) in golden.lines().enumerate() {
            let (t, _event) = parse_jsonl_line(line).unwrap_or_else(|| {
                panic!(
                    "{name}: line {} of {} does not parse back into a SimEvent: {line}",
                    i + 1,
                    path.display()
                )
            });
            if let Some(prev) = last_t {
                assert!(
                    t >= prev,
                    "{name}: timestamps must be monotone, line {} goes backwards",
                    i + 1
                );
            }
            last_t = Some(t);
        }
    }
}
