//! End-to-end scenario checks: the paper's headline claims must hold in
//! sign and rough shape at small scale. These are the repository's
//! "reproduction smoke tests"; the full-scale numbers live in
//! EXPERIMENTS.md.

use comap::experiments::topology::{et_testbed, fig9_topology, ht_testbed, validation_cell};
use comap::mac::SimDuration;
use comap::sim::config::MacFeatures;
use comap::sim::Simulator;

const DUR: SimDuration = SimDuration::from_millis(1500);

fn mean<F: Fn(u64) -> f64>(f: F, seeds: &[u64]) -> f64 {
    seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64
}

#[test]
fn exposed_region_comap_beats_dcf() {
    // Fig. 8's core claim at C2 = 26 m. Per-seed ratios at this small
    // scale swing 0.8–1.6×, so the margin is pinned over 12 seeds: the
    // 12-seed mean ratio is ~1.15 (measured identically before and
    // after the counter-keyed RNG migration; the previous 3-seed 1.2×
    // bar was a realization fluke).
    let g = |features: MacFeatures| {
        mean(
            |seed| {
                let (cfg, ids) = et_testbed(26.0, features, seed);
                Simulator::new(cfg)
                    .run(DUR)
                    .link_goodput_bps(ids.c1, ids.ap1)
            },
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
        )
    };
    let dcf = g(MacFeatures::DCF);
    let comap = g(MacFeatures::COMAP);
    assert!(
        comap > 1.1 * dcf,
        "CO-MAP must clearly win in the exposed region: {comap:.0} vs {dcf:.0}"
    );
}

#[test]
fn outside_the_exposed_region_comap_does_not_lose() {
    // At C2 = 12 m concurrency is denied; CO-MAP must stay competitive.
    let g = |features: MacFeatures| {
        mean(
            |seed| {
                let (cfg, ids) = et_testbed(12.0, features, seed);
                Simulator::new(cfg)
                    .run(DUR)
                    .link_goodput_bps(ids.c1, ids.ap1)
            },
            &[1, 2, 3],
        )
    };
    assert!(g(MacFeatures::COMAP) > 0.85 * g(MacFeatures::DCF));
}

#[test]
fn both_links_gain_under_comap() {
    // Paper: "their goodputs are both improved significantly".
    let (cfg, ids) = et_testbed(28.0, MacFeatures::COMAP, 1);
    let comap = Simulator::new(cfg).run(DUR);
    let (cfg, _) = et_testbed(28.0, MacFeatures::DCF, 1);
    let dcf = Simulator::new(cfg).run(DUR);
    let sum_comap =
        comap.link_goodput_bps(ids.c1, ids.ap1) + comap.link_goodput_bps(ids.c2, ids.ap2);
    let sum_dcf = dcf.link_goodput_bps(ids.c1, ids.ap1) + dcf.link_goodput_bps(ids.c2, ids.ap2);
    assert!(sum_comap > 1.15 * sum_dcf, "{sum_comap:.0} vs {sum_dcf:.0}");
}

#[test]
fn hidden_terminals_hurt_and_scale() {
    // Fig. 2's monotone damage: 0 < 1 < 3 hidden terminals.
    let g = |n_ht: usize| {
        mean(
            |seed| {
                let (cfg, ids) = ht_testbed(1000, n_ht, MacFeatures::DCF, seed);
                Simulator::new(cfg)
                    .run(DUR)
                    .link_goodput_bps(ids.c1, ids.ap1)
            },
            &[1, 2, 3],
        )
    };
    let (g0, g1, g3) = (g(0), g(1), g(3));
    assert!(g1 < 0.85 * g0, "one HT must hurt: {g1:.0} vs {g0:.0}");
    assert!(
        g3 < 0.6 * g1,
        "three HTs must hurt much more: {g3:.0} vs {g1:.0}"
    );
}

#[test]
fn ht_penalty_grows_with_payload() {
    // The mechanism behind packet-size adaptation: relative HT damage is
    // worse for bigger frames.
    let ratio = |payload: u32| {
        let g = |n_ht: usize| {
            mean(
                |seed| {
                    let (cfg, ids) = ht_testbed(payload, n_ht, MacFeatures::DCF, seed);
                    Simulator::new(cfg)
                        .run(DUR)
                        .link_goodput_bps(ids.c1, ids.ap1)
                },
                &[1, 2],
            )
        };
        g(1) / g(0)
    };
    let small = ratio(400);
    let large = ratio(2000);
    assert!(
        large < small + 0.02,
        "relative HT survival must not improve with payload: {small:.3} -> {large:.3}"
    );
}

#[test]
fn fig9_role_mixes_order_dcf_goodput() {
    // More hidden terminals in the mix ⇒ less DCF goodput. Compare the
    // all-contender mix (0) against the all-hidden mix (6).
    let g = |index: usize| {
        mean(
            |seed| {
                let (cfg, t) = fig9_topology(index, MacFeatures::DCF, seed * 97 + 13);
                Simulator::new(cfg).run(DUR).link_goodput_bps(t.c1, t.ap1)
            },
            &[1, 2],
        )
    };
    let all_independent = g(9);
    let all_hidden = g(6);
    assert!(
        all_hidden < 0.5 * all_independent,
        "hidden mix {all_hidden:.0} vs independent mix {all_independent:.0}"
    );
}

#[test]
fn validation_cell_matches_model_without_hts() {
    // Fig. 7 ground truth at one point: σ = 0, W = 63, no hidden
    // terminals — simulation within a third of the analytical value.
    use comap::core::model::{DcfModel, ModelInput};
    let (cfg, cell) = validation_cell(5, 0, 63, 1000, 1);
    let report = Simulator::new(cfg).run(SimDuration::from_secs(2));
    let sim: f64 = cell
        .clients
        .iter()
        .map(|&c| report.link_goodput_bps(c, cell.ap))
        .sum::<f64>()
        / cell.clients.len() as f64;
    let model = DcfModel::per_node_goodput(&ModelInput {
        phy: comap::mac::PhyTiming::dsss(),
        rate: comap::radio::rates::Rate::Mbps11,
        cw: 63,
        contenders: 4,
        hidden: 0,
        payload_bytes: 1000,
        hidden_profile: None,
    });
    let err = (sim - model).abs() / model;
    assert!(
        err < 0.34,
        "model {model:.0} vs sim {sim:.0} ({err:.2} rel err)"
    );
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = || {
        let (cfg, _t) = fig9_topology(4, MacFeatures::COMAP, 11);
        Simulator::new(cfg).run(DUR)
    };
    let a = run();
    let b = run();
    assert_eq!(a.links, b.links);
    assert_eq!(a.events, b.events);
}
