//! Offline no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything at runtime (reports are rendered by hand in
//! `comap-experiments`), and the build environment has no crates.io
//! access. This crate keeps the derive annotations compiling: the traits
//! are blanket-implemented markers and the derive macros expand to
//! nothing. If real serialization is ever needed, swap this path
//! dependency back to upstream `serde` — the annotations are already in
//! place.

/// Marker standing in for `serde::Serialize`; blanket-implemented so any
/// `T: Serialize` bound is satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize<'de>`; blanket-implemented
/// so any `T: Deserialize<'de>` bound is satisfiable.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    //! Deserialization marker traits.
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization marker traits.
    pub use super::Serialize;
}
