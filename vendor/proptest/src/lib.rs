//! Offline mini-proptest.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the subset of the `proptest` 1.x surface the workspace's property
//! tests actually use: numeric range strategies, tuples, `any::<bool>()`,
//! `prop_map`, `collection::{vec, btree_set}`, `sample::select`, the
//! `proptest!` macro and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   panic message of the `prop_assert*` macros) but is not minimized.
//! * **Deterministic seeding** — each test's RNG is seeded from the
//!   test's name, so failures reproduce exactly across runs. Set
//!   `PROPTEST_CASES` to change the case count (default 32, a balance
//!   between coverage and the debug-profile cost of the heavier
//!   model-based properties).

use rand::rngs::StdRng;
use rand::Rng as _;

/// The per-test RNG handed to strategies.
pub type TestRng = StdRng;

/// How a `proptest!` test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.gen_range(0u8..=u8::MAX)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen::<u64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// A strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                0
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Sets of `element` values with a size in `size`. If the element
    /// strategy keeps producing duplicates the set may come out smaller
    /// than the drawn target (upstream retries harder; the tests here
    /// only rely on set semantics).
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = if self.size.is_empty() {
                0
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target.saturating_mul(8) + 8 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Sampling from explicit candidate lists.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (on generation) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(
                !self.options.is_empty(),
                "select() needs at least one option"
            );
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Seeds a test's RNG from its name (FNV-1a), so each test has a fixed,
/// independent stream.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    <TestRng as rand::SeedableRng>::seed_from_u64(h)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property; panics (failing the test case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality of a property's two sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality of a property's two sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

pub mod prelude {
    //! The everything-you-need import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };

    /// Alias letting `prop::collection::vec(...)` etc. resolve as they
    /// do under upstream's prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn named_rng_is_deterministic() {
        use crate::Strategy;
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        assert_eq!((0u32..100).generate(&mut a), (0u32..100).generate(&mut b));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0..2.0f64) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len = {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn sets_are_sets(s in prop::collection::btree_set(0u32..50, 0..20)) {
            prop_assert!(s.len() < 20);
        }

        #[test]
        fn select_picks_an_option(v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!([1, 2, 3].contains(&v));
        }

        #[test]
        fn prop_map_applies(n in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        fn explicit_config_is_used(pair in (0u8..4, any::<bool>())) {
            let (a, _b) = pair;
            prop_assert!(a < 4);
        }
    }
}
