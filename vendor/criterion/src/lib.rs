//! Offline mini-criterion.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the small slice of the Criterion 0.5 API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the `criterion_group!`/`criterion_main!` macros. It measures real
//! wall-clock time (warm-up, then `sample_size` samples of adaptively
//! sized batches) and prints mean ± spread per benchmark. There are no
//! HTML reports, no statistics beyond min/mean/max, and no saved
//! baselines — for before/after comparisons, capture the printed output.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported from the standard library.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: holds the measurement configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark (minimum 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
        };
        f(&mut b);
        let iters_per_sec = match b.mode {
            Mode::WarmUp { .. } => {
                // The closure never called iter(): nothing to measure.
                println!("{id:<40} (no iterations)");
                return self;
            }
            Mode::Calibrated { iters_per_sec } => iters_per_sec.max(1.0),
            Mode::Measure { .. } => unreachable!("warm-up never yields a measuring bencher"),
        };

        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((iters_per_sec * per_sample).round() as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                mode: Mode::Measure {
                    iters: batch,
                    elapsed: Duration::ZERO,
                },
            };
            f(&mut b);
            if let Mode::Measure { elapsed, .. } = b.mode {
                samples.push(elapsed.as_secs_f64() / batch as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<40} time: [{} {} {}]  ({batch} iters/sample, {} samples)",
            format_time(min),
            format_time(mean),
            format_time(max),
            samples.len(),
        );
        self
    }
}

enum Mode {
    WarmUp { until: Instant },
    Calibrated { iters_per_sec: f64 },
    Measure { iters: u64, elapsed: Duration },
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to time.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times `routine`. During warm-up it runs until the warm-up budget
    /// is spent (calibrating the batch size); during measurement it runs
    /// the configured batch and records the elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match &mut self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                let until = *until;
                let mut count: u64 = 0;
                loop {
                    black_box(routine());
                    count += 1;
                    if Instant::now() >= until {
                        break;
                    }
                }
                let secs = start.elapsed().as_secs_f64().max(1e-9);
                self.mode = Mode::Calibrated {
                    iters_per_sec: count as f64 / secs,
                };
            }
            Mode::Calibrated { .. } => {}
            Mode::Measure { iters, elapsed } => {
                let n = *iters;
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                *elapsed += start.elapsed();
            }
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a group of benchmarks, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0, "the routine must actually run");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with(" s"));
    }
}
