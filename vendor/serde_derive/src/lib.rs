//! Inert derive macros for the offline `serde` stand-in.
//!
//! The sibling `serde` crate blanket-implements its marker traits, so the
//! derives have nothing to generate — they accept the input (including
//! `#[serde(...)]` attributes) and expand to an empty token stream.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
