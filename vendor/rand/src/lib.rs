//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range` and `gen_bool`. The generator is **xoshiro256++** seeded
//! through SplitMix64 — statistically strong and deterministic across
//! platforms, which is all the simulator requires (it never promised
//! stream compatibility with upstream `StdRng`, only that equal seeds
//! give equal runs).

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

/// Uniform integer in `[0, span)` by widening multiply (span ≤ 2⁶⁴).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= 1 << 64);
    if span == 1 << 64 {
        return rng.next_u64();
    }
    // Lemire's multiply-shift with one rejection round for exactness.
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return ((v as u128 * span as u128) >> 64) as u64;
        }
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling helpers, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// One sample of a [`Standard`]-distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic for a given seed on every platform. Not a
    /// cryptographic generator — this is a simulation workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn int_ranges_cover_inclusively() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0u32..=7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..=7 appear");
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..6);
            assert!((3..6).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-30.0..150.0);
            assert!((-30.0..150.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }
}
