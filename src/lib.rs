//! # CO-MAP — location-aided multiple access for mobile WLANs
//!
//! This is the umbrella crate of a full reproduction of *"Harnessing Mobile
//! Multiple Access Efficiency with Location Input"* (IEEE ICDCS 2013), the
//! CO-MAP system. It re-exports the workspace crates:
//!
//! * [`radio`] — propagation, interference and packet-reception math,
//! * [`mac`] — IEEE 802.11 timing, frames and backoff primitives,
//! * [`core`] — the CO-MAP protocol itself (co-occurrence map, hidden
//!   terminal census, analytical model, packet-size adaptation),
//! * [`sim`] — a discrete-event wireless network simulator,
//! * [`experiments`] — topologies and runners reproducing every figure and
//!   table of the paper's evaluation.
//!
//! # Quickstart
//!
//! Build the co-occurrence map of the paper's Fig. 3 example network:
//!
//! ```rust
//! use comap::core::{NeighborTable, ProtocolConfig};
//! use comap::radio::Position;
//!
//! # fn main() {
//! let cfg = ProtocolConfig::testbed();
//! let mut table = NeighborTable::new(cfg.mobility);
//! table.update("C2", Position::new(4.0, -10.0));
//! table.update("AP0", Position::new(4.0, 8.0));
//! assert_eq!(table.len(), 2);
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for the complete pipeline (neighbor table →
//! PRR table → co-occurrence map) and the `comap-experiments` binaries for
//! the paper's evaluation scenarios.

pub use comap_core as core;
pub use comap_experiments as experiments;
pub use comap_mac as mac;
pub use comap_radio as radio;
pub use comap_sim as sim;
