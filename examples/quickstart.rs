//! Quickstart: the paper's Fig. 3 → Fig. 5 pipeline.
//!
//! Builds node C11's view of the example WLAN — neighbor table, pairwise
//! PRR table, co-occurrence map — and prints each stage, reproducing the
//! tables of the paper's Fig. 5.
//!
//! Run with `cargo run --release --example quickstart`.

use comap::core::{Protocol, ProtocolConfig};
use comap::radio::Position;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Fig. 3 network, scaled to the testbed channel: two cells, C11
    // in the right-hand cell wanting to talk to AP1.
    let cfg = ProtocolConfig::testbed();
    let mut c11 = Protocol::new("C11", cfg);
    c11.set_own_position(Position::new(6.0, 0.0));

    let neighbors = [
        ("C0", Position::new(-36.0, 4.0)),
        ("C1", Position::new(-33.0, 2.0)),
        ("C2", Position::new(-30.0, 0.0)),
        ("C10", Position::new(9.0, 3.0)),
        ("C12", Position::new(11.0, -2.0)),
        ("AP0", Position::new(-34.0, 0.0)),
        ("AP1", Position::new(10.0, 0.0)),
    ];
    for (name, pos) in neighbors {
        c11.on_position_report(name, pos);
    }

    println!("Neighbor table of C11 (paper Fig. 3):");
    println!("{:>6} {:>8} {:>8}", "node", "X (m)", "Y (m)");
    for (addr, entry) in c11.neighbors().iter() {
        println!(
            "{addr:>6} {:>8.1} {:>8.1}",
            entry.position.x, entry.position.y
        );
    }

    // The PRR table (paper Fig. 5): for each left-cell client sending to
    // AP0, the PRR of their link and of C11's own link to AP1 if both
    // transmit at once.
    println!("\nPRR table of C11 vs. link C11→AP1 (paper Fig. 5):");
    println!(
        "{:>6} {:>16} {:>16}",
        "node", "PRR of neighbor", "PRR of C11"
    );
    for peer in ["C0", "C1", "C2"] {
        let d = c11.concurrency_decision((peer, "AP0"), "AP1")?;
        println!(
            "{peer:>6} {:>15.1}% {:>15.1}%",
            d.prr_ongoing * 100.0,
            d.prr_mine * 100.0
        );
    }

    // Populate the co-occurrence map by consulting it, as the MAC would
    // on each discovery header.
    for peer in ["C0", "C1", "C2"] {
        let _ = c11.concurrency_allowed((peer, "AP0"), "AP1")?;
    }

    println!("\nCo-occurrence map of C11:");
    for (link, receivers) in c11.cooccurrence().iter() {
        println!(
            "  while {} → {} is on the air: may transmit to {receivers:?}",
            link.0, link.1
        );
    }
    let (hits, misses) = c11.cooccurrence().stats();
    println!("  cache: {hits} hits, {misses} misses");

    // And the hidden-terminal side: transmission settings for C11→AP1.
    let census = c11.ht_census("AP1")?;
    let setting = c11.tx_setting("AP1")?;
    println!(
        "\nCensus of link C11→AP1: {} hidden, {} contending, {} independent",
        census.n_ht(),
        census.n_contenders(),
        census.independent.len()
    );
    println!(
        "Installed setting: CW = {}, payload = {} B (model predicts {:.2} Mbps)",
        setting.cw,
        setting.payload_bytes,
        setting.predicted_goodput / 1e6
    );
    Ok(())
}
