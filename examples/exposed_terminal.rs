//! Exposed-terminal scenario: the paper's Fig. 8 testbed at one C2
//! position, run under basic DCF and under CO-MAP, with the protocol
//! counters that explain the difference.
//!
//! Run with `cargo run --release --example exposed_terminal`.

use comap::experiments::topology::et_testbed;
use comap::mac::SimDuration;
use comap::sim::config::MacFeatures;
use comap::sim::Simulator;

fn main() {
    let c2_position = 26.0; // meters from AP1: inside the exposed region
    let duration = SimDuration::from_secs(2);

    println!("ET testbed, C2 at {c2_position} m from AP1, {duration} of air time\n");
    for (name, features) in [
        ("basic DCF", MacFeatures::DCF),
        ("CO-MAP", MacFeatures::COMAP),
    ] {
        let (cfg, ids) = et_testbed(c2_position, features, 1);
        let report = Simulator::new(cfg).run(duration);
        let g1 = report.link_goodput_bps(ids.c1, ids.ap1);
        let g2 = report.link_goodput_bps(ids.c2, ids.ap2);
        println!("{name}:");
        println!("  C1 → AP1: {:>6.2} Mbps", g1 / 1e6);
        println!("  C2 → AP2: {:>6.2} Mbps", g2 / 1e6);
        if let Some(stats) = report.nodes.get(&ids.c1) {
            if features.et_concurrency {
                println!(
                    "  C1 heard {} discovery headers, transmitted concurrently {} times, \
                     abandoned {} opportunities",
                    stats.headers_heard, stats.concurrent_tx, stats.et_abandons
                );
            }
        }
        println!();
    }
    println!(
        "CO-MAP validates C2's ongoing transmissions against its co-occurrence map\n\
         and rides alongside them instead of deferring — both links gain."
    );
}
