//! Hidden-terminal scenario: the paper's Fig. 2 testbed with the census
//! and packet-size adaptation machinery made visible.
//!
//! Run with `cargo run --release --example hidden_terminal`.

use comap::core::{Protocol, ProtocolConfig};
use comap::experiments::topology::ht_testbed;
use comap::mac::SimDuration;
use comap::radio::Position;
use comap::sim::config::MacFeatures;
use comap::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // What does C1's protocol instance conclude about its link?
    let mut proto = Protocol::new("C1", ProtocolConfig::testbed());
    proto.set_own_position(Position::new(0.0, 0.0));
    proto.on_position_report("AP1", Position::new(15.0, 0.0));
    proto.on_position_report("C2", Position::new(37.0, 0.0));
    proto.on_position_report("AP2", Position::new(49.0, 0.0));

    let census = proto.ht_census("AP1")?;
    println!(
        "Census of C1 → AP1: hidden = {:?}, contenders = {:?}",
        census.hidden, census.contenders
    );
    let setting = proto.tx_setting("AP1")?;
    println!(
        "CO-MAP installs CW = {}, payload = {} B for this census\n",
        setting.cw, setting.payload_bytes
    );

    // Measure the link with and without the hidden terminal, DCF vs
    // CO-MAP.
    let duration = SimDuration::from_secs(2);
    for n_ht in [0usize, 1, 3] {
        for (name, features) in [("DCF   ", MacFeatures::DCF), ("CO-MAP", MacFeatures::COMAP)] {
            let (cfg, ids) = ht_testbed(1000, n_ht, features, 7);
            let report = Simulator::new(cfg).run(duration);
            let g = report.link_goodput_bps(ids.c1, ids.ap1);
            let stats = report.links[&(ids.c1, ids.ap1)];
            println!(
                "{n_ht} hidden | {name}: {:>5.2} Mbps ({} tx, {} ACK timeouts)",
                g / 1e6,
                stats.data_tx,
                stats.ack_timeouts
            );
        }
    }
    Ok(())
}
