//! Mobility: the paper's Section V update rule in action. A contender
//! walks out of the cell mid-run; the location service broadcasts one
//! position report (movement above the threshold), CO-MAP's caches are
//! invalidated, and the measured link speeds up.
//!
//! Run with `cargo run --release --example mobility`.

use comap::mac::SimDuration;
use comap::radio::Position;
use comap::sim::config::{MacFeatures, NodeSpec, Traffic};
use comap::sim::{SimConfig, Simulator};

fn main() {
    let windows = [
        (
            "0–400 ms (contender at 10 m)",
            SimDuration::from_millis(395),
        ),
        (
            "0–1200 ms (leaves at 400 ms)",
            SimDuration::from_millis(1200),
        ),
    ];
    println!("C1 and C2 share AP1; C2 walks 300 m away at t = 400 ms\n");
    for features in [MacFeatures::DCF, MacFeatures::COMAP] {
        let label = if features.any() { "CO-MAP" } else { "DCF" };
        for (window, duration) in windows {
            let mut cfg = SimConfig::testbed(9);
            cfg.default_features = features;
            let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
            let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(8.0, 0.0)));
            let c2 = cfg.add_node(
                NodeSpec::client("C2", Position::new(10.0, 0.0))
                    .with_move(SimDuration::from_millis(400), Position::new(300.0, 0.0)),
            );
            cfg.add_flow(c1, ap1, Traffic::Saturated);
            cfg.add_flow(c2, ap1, Traffic::Saturated);
            let report = Simulator::new(cfg).run(duration);
            println!(
                "{label:>7} | {window}: C1→AP1 {:.2} Mbps, {} position report(s)",
                report.link_goodput_bps(c1, ap1) / 1e6,
                report.position_reports
            );
        }
    }
    println!(
        "\nThe single report is the whole protocol overhead of the move —\n\
         the mobility threshold (half the tolerated inaccuracy) absorbs jitter."
    );
}
