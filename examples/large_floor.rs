//! Large-scale floor with position errors — a miniature of the paper's
//! Fig. 10 study: three co-channel APs, nine random clients, two-way CBR,
//! CO-MAP fed increasingly wrong coordinates.
//!
//! Run with `cargo run --release --example large_floor`.

use comap::experiments::runner::{empirical_cdf, run_many};
use comap::experiments::topology::large_scale;
use comap::mac::SimDuration;
use comap::sim::config::MacFeatures;

fn main() {
    let duration = SimDuration::from_secs(1);
    let seeds = [1u64, 2];
    println!("Three co-channel APs, nine CBR clients, {duration} per run\n");
    println!(
        "{:>18} {:>12} {:>12} {:>12}",
        "variant", "p25 (Mbps)", "median", "aggregate"
    );

    for (label, features, error) in [
        ("basic DCF", MacFeatures::DCF, 0.0),
        ("CO-MAP (exact)", MacFeatures::COMAP, 0.0),
        ("CO-MAP (5 m err)", MacFeatures::COMAP, 5.0),
        ("CO-MAP (10 m err)", MacFeatures::COMAP, 10.0),
    ] {
        let mut per_link = Vec::new();
        let mut aggregate = 0.0;
        for topo in 0..3u64 {
            let reports = run_many(
                |seed| large_scale(topo, seed, features, error).0,
                &seeds,
                duration,
            );
            let (cfg, _) = large_scale(topo, 0, features, error);
            for flow in &cfg.flows {
                let g = reports
                    .iter()
                    .map(|r| r.link_goodput_bps(flow.src, flow.dst))
                    .sum::<f64>()
                    / reports.len() as f64;
                per_link.push(g);
            }
            aggregate += reports
                .iter()
                .map(|r| r.aggregate_goodput_bps())
                .sum::<f64>()
                / reports.len() as f64;
        }
        let cdf = empirical_cdf(per_link);
        println!(
            "{label:>18} {:>12.2} {:>12.2} {:>12.2}",
            cdf.quantile(0.25) / 1e6,
            cdf.quantile(0.5) / 1e6,
            aggregate / 3.0 / 1e6
        );
    }
    println!("\nPositions only steer CO-MAP's decisions — the radio truth is unchanged,");
    println!("so position errors degrade the protocol's choices, not the physics.");
}
