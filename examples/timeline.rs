//! Timeline of the enhanced multi-ET scheduler — the paper's Fig. 6.
//!
//! Attaches a [`TimelineSink`] to a short run of the ET testbed with
//! CO-MAP enabled and prints the MAC-level events: discovery headers,
//! exposed-terminal opportunities, concurrent transmissions, watchdog
//! abandons.
//!
//! Run with `cargo run --release --example timeline`.

use comap::experiments::topology::et_testbed;
use comap::mac::SimDuration;
use comap::sim::config::MacFeatures;
use comap::sim::observe::kind_label;
use comap::sim::{SimEvent, Simulator, TimelineSink};

fn main() {
    let (cfg, ids) = et_testbed(26.0, MacFeatures::COMAP, 3);
    let names = ["AP1", "C1", "AP2", "C2"];

    let (sink, handle) = TimelineSink::new();
    let mut sim = Simulator::new(cfg);
    sim.attach_sink(Box::new(sink));
    let report = sim.run(SimDuration::from_millis(30));

    println!("First 30 ms of the CO-MAP ET testbed (C2 at 26 m):\n");
    for (t, event) in handle.events() {
        let line = match event {
            SimEvent::TxBegin { src, dst, kind, .. } => {
                format!(
                    "{} ── {} ──▶ {}",
                    names[src.0],
                    kind_label(kind),
                    names[dst.0]
                )
            }
            SimEvent::TxEnd { src, .. } => format!("{} tx end", names[src.0]),
            SimEvent::Defer { node } => format!("{} defers (channel busy)", names[node.0]),
            SimEvent::EtOpportunity { node, .. } => {
                format!("{} ENTERS exposed-terminal opportunity", names[node.0])
            }
            SimEvent::EtAbandon { node } => {
                format!("{} abandons opportunity (RSSI watchdog)", names[node.0])
            }
            SimEvent::Delivered { node, from, .. } => {
                format!("{} delivered data from {}", names[node.0], names[from.0])
            }
            _ => continue,
        };
        println!("{:>10.3} ms  {line}", t.as_secs_f64() * 1e3);
    }

    println!(
        "\nGoodputs in this window: C1→AP1 {:.2} Mbps, C2→AP2 {:.2} Mbps",
        report.link_goodput_bps(ids.c1, ids.ap1) / 1e6,
        report.link_goodput_bps(ids.c2, ids.ap2) / 1e6
    );
}
