//! Property tests of the spatial-culling layer (vendored proptest):
//!
//! 1. **Coverage** — the grid-neighbour gather (∪ overflow list) is a
//!    superset of the brute-force set of receivers above the relevance
//!    floor, for random topologies and after arbitrary movement.
//! 2. **Exactness** — the culled and exhaustive backends stay
//!    bit-identical (`sensed()` and every notification) under arbitrary
//!    interleavings of `begin` / `end` / `set_position`.
//! 3. **Overflow hygiene** — after arbitrary movement, every node's
//!    overflow list equals a from-scratch recomputation of its
//!    membership predicate: moving a node out of overflow range leaves
//!    no stale up-fade entry behind in anyone's list.

use comap_mac::time::{SimDuration, SimTime};
use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::units::Dbm;
use comap_radio::Position;
use comap_sim::frame::{Frame, FrameBody, NodeId};
use comap_sim::medium::{Medium, MediumBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn at(micros: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(micros)
}

fn data(src: usize, dst: usize) -> Frame {
    Frame {
        src: NodeId(src),
        dst: NodeId(dst),
        body: FrameBody::Data {
            seq: 0,
            payload_bytes: 500,
            retry: false,
        },
        rate: comap_radio::rates::Rate::Mbps11,
    }
}

/// Random positions in a field large enough that the testbed channel
/// (relevance range ≈ 570 m) genuinely culls some links.
fn positions(seed: u64, n: usize, side: f64) -> Vec<Position> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE11);
    (0..n)
        .map(|_| Position::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect()
}

fn pair(seed: u64, n: usize, side: f64) -> (Medium, Medium) {
    let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
    let pos = positions(seed, n, side);
    let ex = Medium::with_backend(
        chan,
        pos.clone(),
        true,
        StdRng::seed_from_u64(seed),
        MediumBackend::Exhaustive,
    );
    let cu = Medium::with_backend(
        chan,
        pos,
        true,
        StdRng::seed_from_u64(seed),
        MediumBackend::Culled,
    );
    (ex, cu)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Candidate set ⊇ relevant set, initially and after every move.
    #[test]
    fn grid_candidates_cover_the_relevant_set(
        seed in 0u64..10_000,
        moves in prop::collection::vec(
            (0usize..10, 0.0f64..2400.0, 0.0f64..2400.0), 0..16),
    ) {
        let n = 6 + (seed % 5) as usize;
        let (_, mut m) = pair(seed, n, 2000.0);
        for (step, (node, x, y)) in moves.into_iter().enumerate() {
            for src in 0..n {
                let cand = m.candidate_receivers(NodeId(src));
                for r in m.relevant_receivers(NodeId(src)) {
                    prop_assert!(
                        cand.contains(&r),
                        "step {}: node {} relevant receiver {} missing from candidates {:?}",
                        step, src, r, cand
                    );
                }
            }
            m.set_position(NodeId(node % n), Position::new(x, y));
        }
    }

    /// Overflow lists stay exact under movement: each list equals the
    /// brute-force set of beyond-range-but-relevant peers, so a mover
    /// that leaves overflow range is purged from every other node's
    /// list (the satellite bug: only the mover's own list was cleared).
    #[test]
    fn overflow_lists_have_no_stale_entries_after_moves(
        seed in 0u64..10_000,
        moves in prop::collection::vec(
            // Spread targets over several relevance ranges so nodes
            // genuinely enter and leave overflow reach of each other.
            (0usize..10, 0.0f64..4200.0, 0.0f64..4200.0), 1..14),
    ) {
        let n = 6 + (seed % 5) as usize;
        let (_, mut m) = pair(seed, n, 3600.0);
        let range = m.relevance_range().value();
        for (step, (node, x, y)) in moves.into_iter().enumerate() {
            m.set_position(NodeId(node % n), Position::new(x, y));
            for a in 0..n {
                let expected: Vec<NodeId> = (0..n)
                    .filter(|&b| {
                        b != a
                            && m.position(NodeId(a))
                                .distance_to(m.position(NodeId(b)))
                                .value()
                                > range
                            && m.relevant_receivers(NodeId(a)).contains(&NodeId(b))
                    })
                    .map(NodeId)
                    .collect();
                prop_assert_eq!(
                    m.overflow_peers(NodeId(a)),
                    expected,
                    "step {}: node {} overflow list diverged from brute force",
                    step, a
                );
            }
        }
    }

    /// Backends agree bit for bit on sensed power and every notification
    /// under arbitrary begin/end/set_position interleavings.
    #[test]
    fn backends_are_bit_identical_under_interleavings(
        seed in 0u64..10_000,
        ops in prop::collection::vec(
            (0u8..3, 0usize..16, 0.0f64..1500.0, 0.0f64..1500.0), 1..40),
    ) {
        let n = 5 + (seed % 6) as usize;
        let (mut ex, mut cu) = pair(seed, n, 1200.0);
        let mut t: u64 = 0;
        // (exhaustive id, culled id, scheduled end in µs)
        let mut active: Vec<(comap_sim::frame::TxId, comap_sim::frame::TxId, u64)> = Vec::new();
        for (op, idx, x, y) in ops {
            match op {
                0 => {
                    let src = idx % n;
                    if !ex.is_transmitting(NodeId(src)) {
                        let dst = (src + 1) % n;
                        let dur = 40 + (idx as u64 % 5) * 37;
                        let (txe, ne) = ex.begin(data(src, dst), at(t), at(t + dur));
                        let (txc, nc) = cu.begin(data(src, dst), at(t), at(t + dur));
                        prop_assert_eq!(ne, nc, "begin notes diverged");
                        active.push((txe, txc, t + dur));
                    }
                }
                1 => {
                    // End the earliest-scheduled active transmission.
                    if let Some(i) = active
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, a)| a.2)
                        .map(|(i, _)| i)
                    {
                        let (txe, txc, end_t) = active.swap_remove(i);
                        t = t.max(end_t);
                        let ne = ex.end(txe, at(end_t));
                        let nc = cu.end(txc, at(end_t));
                        prop_assert_eq!(ne, nc, "end notes diverged");
                    }
                }
                _ => {
                    let node = NodeId(idx % n);
                    ex.set_position(node, Position::new(x, y));
                    cu.set_position(node, Position::new(x, y));
                }
            }
            t += 13;
            for k in 0..n {
                prop_assert_eq!(
                    ex.sensed(NodeId(k)).value().to_bits(),
                    cu.sensed(NodeId(k)).value().to_bits(),
                    "sensed({}) diverged", k
                );
            }
        }
        // Drain the air so every lock resolves through both backends.
        active.sort_by_key(|a| a.2);
        for (txe, txc, end_t) in active {
            let ne = ex.end(txe, at(end_t));
            let nc = cu.end(txc, at(end_t));
            prop_assert_eq!(ne, nc, "drain notes diverged");
        }
        prop_assert_eq!(ex.stats(), cu.stats());
    }
}
