//! Property tests of the counter-keyed draw discipline (vendored
//! proptest) — the statistical half of the PR that retired the
//! sequential RNG (DESIGN.md §11):
//!
//! 1. **Collision freedom** — `keyed_state` is injective over random
//!    `(seed, tx, rx, counter)` grids: no two distinct keys share a
//!    stream state, so no two draws can silently alias.
//! 2. **Order independence** — permuting the receiver sweep, or
//!    pre-warming the link cache before `begin()`, changes no per-link
//!    value: every draw is a pure function of its key.
//! 3. **Statistical sanity** — `normal_from_state` has standard-normal
//!    mean/σ within tolerance at 10⁵ draws with clamped ±6σ tails
//!    counted, `uniform_from_state` is uniform on `[0, 1)`, and
//!    `CounterRng` backoff slots are uniform over the window.

use comap_mac::time::{SimDuration, SimTime};
use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::stream::{
    keyed_state, link_key, normal_from_state, uniform_from_state, CounterRng, NORMAL_CLAMP_SIGMA,
};
use comap_radio::units::Dbm;
use comap_radio::Position;
use comap_sim::frame::{Frame, FrameBody, NodeId};
use comap_sim::medium::{Medium, MediumBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn at(micros: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(micros)
}

fn data(src: usize, dst: usize) -> Frame {
    Frame {
        src: NodeId(src),
        dst: NodeId(dst),
        body: FrameBody::Data {
            seq: 0,
            payload_bytes: 500,
            retry: false,
        },
        rate: comap_radio::rates::Rate::Mbps11,
    }
}

/// Fisher–Yates permutation of `0..n` derived from `seed` — proptest
/// picks the seed, the permutation itself is deterministic.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x005E_ED0F_5EED);
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No two distinct `(tx, rx, counter)` keys under the same seed —
    /// nor the same key under two different seeds — share a stream
    /// state. A collision would make two supposedly independent draws
    /// byte-identical forever.
    #[test]
    fn keyed_states_are_collision_free_over_grids(
        seed in 0u64..1_000_000,
        txs in 1u32..9,
        rxs in 1u32..9,
        ctrs in 1u64..40,
    ) {
        let mut states = Vec::new();
        for s in [seed, seed ^ 1] {
            for tx in 0..txs {
                for rx in 0..rxs {
                    for c in 0..ctrs {
                        states.push(keyed_state(s, link_key(tx, rx), c));
                    }
                }
            }
        }
        let total = states.len();
        states.sort_unstable();
        states.dedup();
        prop_assert_eq!(states.len(), total, "keyed_state collided on a grid");
    }

    /// Visiting the receiver set in any permutation reads the same
    /// per-link fade and hazard values: the draws depend only on the
    /// key, never on visitation order.
    #[test]
    fn draws_are_independent_of_sweep_order(
        seed in 0u64..1_000_000,
        perm_seed in 0u64..1_000_000,
        n in 4usize..24,
        frame_ctr in 0u64..10_000,
    ) {
        let tx = 0u32;
        let ascending: Vec<(f64, f64)> = (0..n)
            .map(|rx| {
                let ident = link_key(tx, rx as u32);
                (
                    normal_from_state(keyed_state(seed, ident, frame_ctr)),
                    uniform_from_state(keyed_state(seed ^ 0xDEAD, ident, frame_ctr)),
                )
            })
            .collect();
        let mut permuted = vec![(0.0, 0.0); n];
        for rx in permutation(perm_seed, n) {
            let ident = link_key(tx, rx as u32);
            permuted[rx] = (
                normal_from_state(keyed_state(seed, ident, frame_ctr)),
                uniform_from_state(keyed_state(seed ^ 0xDEAD, ident, frame_ctr)),
            );
        }
        prop_assert_eq!(ascending, permuted);
    }

    /// Backend-level order independence: pre-warming the link cache
    /// (eager fills, in permuted node order) before `begin()` leaves
    /// every receiver's sensed power bit-identical to the lazy run.
    #[test]
    fn warmed_and_lazy_fills_sense_identically(
        seed in 0u64..10_000,
        perm_seed in 0u64..10_000,
        src in 0usize..8,
    ) {
        let n = 8;
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let mut pos_rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE22);
        let positions: Vec<Position> = (0..n)
            .map(|_| Position::new(pos_rng.gen_range(0.0..400.0), pos_rng.gen_range(0.0..400.0)))
            .collect();
        let mut lazy = Medium::with_backend(
            chan,
            positions.clone(),
            true,
            StdRng::seed_from_u64(seed),
            MediumBackend::Culled,
        );
        let mut warm = Medium::with_backend(
            chan,
            positions,
            true,
            StdRng::seed_from_u64(seed),
            MediumBackend::Culled,
        );
        for node in permutation(perm_seed, n) {
            warm.warm_links(NodeId(node));
        }
        let dst = (src + 1) % n;
        let (_, _) = lazy.begin(data(src, dst), at(0), at(100));
        let (_, _) = warm.begin(data(src, dst), at(0), at(100));
        for node in 0..n {
            prop_assert_eq!(
                lazy.sensed(NodeId(node)),
                warm.sensed(NodeId(node)),
                "node {} sensed different powers under warmed fills",
                node
            );
        }
    }
}

/// Box–Muller moments at 10⁵ draws: mean within 0.01, σ within 0.01,
/// and the ±6σ clamp practically never fires (one-sided mass ≈ 1e-9;
/// even one clamped tail in 10⁵ draws would be a 10⁴× excess, so the
/// count is pinned to zero here and the clamp itself is pinned by a
/// direct probe below).
#[test]
fn normal_stream_is_statistically_sane_at_1e5_draws() {
    let n = 100_000u32;
    let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
    let mut clamped = 0u32;
    for i in 0..n {
        let ident = link_key(i % 97, i % 31);
        let z = normal_from_state(keyed_state(0xA11C_E5ED, ident, u64::from(i)));
        assert!(z.abs() <= NORMAL_CLAMP_SIGMA);
        if z.abs() >= NORMAL_CLAMP_SIGMA {
            clamped += 1;
        }
        sum += z;
        sumsq += z * z;
    }
    let mean = sum / f64::from(n);
    let sigma = (sumsq / f64::from(n) - mean * mean).sqrt();
    assert!(mean.abs() < 0.01, "mean = {mean}");
    assert!((sigma - 1.0).abs() < 0.01, "sigma = {sigma}");
    assert_eq!(clamped, 0, "±6σ tails should not fire in 1e5 draws");
}

/// The clamp is real: a state engineered to produce an extreme
/// Box–Muller radius still lands inside ±6σ.
#[test]
fn normal_draws_never_escape_the_clamp() {
    let mut extreme: f64 = 0.0;
    for c in 0..2_000_000u64 {
        let z = normal_from_state(keyed_state(7, 7, c));
        extreme = extreme.max(z.abs());
        assert!(z.abs() <= NORMAL_CLAMP_SIGMA);
    }
    // 2e6 draws reach past 4σ somewhere; the bound itself held above.
    assert!(extreme > 4.0, "draw spread implausibly narrow: {extreme}");
}

/// `CounterRng` backoff slots are uniform over the contention window:
/// per-slot frequencies of `gen_range(0..=cw)` stay within 10% of the
/// expectation at 10⁵ draws (fresh key per draw, as the MAC uses it).
#[test]
fn counter_rng_backoff_slots_are_uniform() {
    let cw = 31u32;
    let n = 100_000u32;
    let mut histogram = vec![0u32; cw as usize + 1];
    for i in 0..n {
        let mut rng = CounterRng::from_key(0xBAC0FF, 3, u64::from(i));
        histogram[rng.gen_range(0..=cw) as usize] += 1;
    }
    let expected = f64::from(n) / f64::from(cw + 1);
    for (slot, &count) in histogram.iter().enumerate() {
        let deviation = (f64::from(count) - expected).abs() / expected;
        assert!(
            deviation < 0.10,
            "slot {slot}: {count} draws vs expected {expected:.0}"
        );
    }
}
