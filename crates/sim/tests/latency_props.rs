//! Property tests of the log-bucketed latency histogram (vendored
//! proptest):
//!
//! 1. **Quantile accuracy** — for arbitrary sample sets, every
//!    `quantile(p)` stays within the advertised relative-error bound
//!    of the exact order statistic a sorted vector yields.
//! 2. **Merge linearity** — merging histograms recorded separately is
//!    indistinguishable from recording every sample into one
//!    histogram, for any split of the samples.

use comap_sim::latency::LatencyHistogram;
use proptest::prelude::*;

/// Exact order statistic with the same rank convention as
/// [`LatencyHistogram::quantile`]: the smallest value with at least
/// `ceil(p * n)` samples at or below it.
fn oracle(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((p * n as f64).ceil() as u64).clamp(1, n) - 1;
    sorted[rank as usize]
}

/// Arbitrary nanosecond samples spanning the interesting octaves:
/// sub-bucket-exact small values through multi-minute outliers. Each
/// draw picks a magnitude class first so every octave band stays
/// represented regardless of how uniform draws would skew.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        (0u64..4, 0.0f64..1.0).prop_map(|(class, frac)| {
            let (lo, hi): (u64, u64) = match class {
                0 => (0, 64),                             // exact buckets
                1 => (1_000, 1_000_000),                  // µs range
                2 => (1_000_000, 10_000_000_000),         // ms..10 s
                _ => (10_000_000_000, 3_600_000_000_000), // up to an hour
            };
            lo + (frac * (hi - lo) as f64) as u64
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `quantile(p)` is within `MAX_RELATIVE_ERROR` of the exact
    /// order statistic, for every p.
    #[test]
    fn quantiles_track_the_sorted_oracle(
        values in samples(),
        p in 0.0f64..=1.0,
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut values = values;
        values.sort_unstable();

        let exact = oracle(&values, p);
        let approx = h.quantile(p).expect("non-empty histogram");
        let bound = (exact as f64 * LatencyHistogram::MAX_RELATIVE_ERROR).ceil() + 1.0;
        let err = (approx as f64 - exact as f64).abs();
        prop_assert!(
            err <= bound,
            "quantile({p}) = {approx}, exact {exact}, err {err} > bound {bound}"
        );
        // And the histogram never invents values outside the observed
        // range.
        prop_assert!(approx >= values[0] && approx <= values[values.len() - 1]);
    }

    /// Recording a+b into one histogram equals recording a and b into
    /// two histograms and merging, wherever the split falls.
    #[test]
    fn merge_equals_concatenated_recording(
        values in samples(),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);

        let mut together = LatencyHistogram::new();
        for &v in &values {
            together.record(v);
        }
        let mut a = LatencyHistogram::new();
        for &v in left {
            a.record(v);
        }
        let mut b = LatencyHistogram::new();
        for &v in right {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(&a, &together);

        // Merge is symmetric, too.
        let mut c = LatencyHistogram::new();
        for &v in right {
            c.record(v);
        }
        let mut d = LatencyHistogram::new();
        for &v in left {
            d.record(v);
        }
        c.merge(&d);
        prop_assert_eq!(&c, &together);
    }
}
