//! Shared scenario generator for the differential and property tests.
//!
//! Scenarios are derived deterministically from a small seed so the
//! differential harness and the property tests agree on what "the same
//! scenario" means: everything — topology, traffic, features, movement
//! — is a pure function of `(class, seed)`.

// Each integration-test binary compiles this module separately and uses
// a different slice of it.
#![allow(dead_code)]

use comap_mac::time::SimDuration;
use comap_radio::units::Meters;
use comap_radio::Position;
use comap_sim::config::{MacFeatures, NodeSpec, SimConfig, Traffic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three coverage classes the differential harness must span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioClass {
    /// Nodes never move; sparse field, mixed DCF/CO-MAP.
    Static,
    /// Random-waypoint-style step movement during the run.
    Mobile,
    /// Many nodes packed within mutual carrier-sense range.
    Dense,
}

impl ScenarioClass {
    pub fn label(self) -> &'static str {
        match self {
            ScenarioClass::Static => "static",
            ScenarioClass::Mobile => "mobile",
            ScenarioClass::Dense => "dense",
        }
    }
}

/// One generated scenario: a config plus how long to run it.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    pub cfg: SimConfig,
    pub duration: SimDuration,
}

/// Builds the scenario `(class, seed)`. The generator RNG is separate
/// from the simulation seed so topology diversity does not correlate
/// with the simulation's own streams.
pub fn scenario(class: ScenarioClass, seed: u64) -> Scenario {
    let mut gen = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x2545_F491);
    let (n, side) = match class {
        // Sparse: several relevance ranges (testbed ≈ 573 m) across, so
        // the grid has multiple cells and culling has something to bite
        // on.
        ScenarioClass::Static => (gen.gen_range(5usize..9), 3600.0),
        ScenarioClass::Mobile => (gen.gen_range(5usize..9), 2400.0),
        // Dense: everyone within everyone's CS range.
        ScenarioClass::Dense => (gen.gen_range(12usize..16), 120.0),
    };

    let mut cfg = SimConfig::testbed(seed);
    // Exercise the CO-MAP machinery (position reports, announcements)
    // on half the scenarios, plain DCF on the rest.
    if seed.is_multiple_of(2) {
        cfg.default_features = MacFeatures::COMAP;
        cfg.inband_header = seed.is_multiple_of(4);
    }
    if seed.is_multiple_of(3) {
        cfg.position_error = Meters::new(3.0);
    }

    let mut positions = Vec::with_capacity(n);
    for i in 0..n {
        let p = Position::new(gen.gen_range(0.0..side), gen.gen_range(0.0..side));
        positions.push(p);
        let mut spec = if i == 0 {
            NodeSpec::ap("AP0", p)
        } else {
            NodeSpec::client(format!("C{i}"), p)
        };
        if class == ScenarioClass::Mobile && i % 2 == 1 {
            // 1–3 waypoint jumps inside the field during the run.
            for _ in 0..gen.gen_range(1u32..4) {
                spec = spec.with_move(
                    SimDuration::from_micros(gen.gen_range(20_000u64..180_000)),
                    Position::new(gen.gen_range(0.0..side), gen.gen_range(0.0..side)),
                );
            }
        }
        cfg.add_node(spec);
    }

    // Every node participates in at least one flow: clients talk to the
    // AP-side hub or to a random peer, mixing saturated and CBR load.
    for i in 1..n {
        let dst = if gen.gen_bool(0.6) {
            0
        } else {
            let mut d = gen.gen_range(0..n - 1);
            if d >= i {
                d += 1;
            }
            d
        };
        let traffic = if gen.gen_bool(0.5) {
            Traffic::Saturated
        } else {
            Traffic::Cbr {
                bps: gen.gen_range(2e5..1.5e6),
            }
        };
        cfg.add_flow(comap_sim::NodeId(i), comap_sim::NodeId(dst), traffic);
    }

    let duration = SimDuration::from_millis(match class {
        ScenarioClass::Static => 150,
        ScenarioClass::Mobile => 200,
        ScenarioClass::Dense => 100,
    });

    Scenario {
        name: format!("{}-{seed:02}", class.label()),
        cfg,
        duration,
    }
}

/// The full differential corpus: ≥ 20 seeded scenarios covering all
/// three classes.
pub fn all_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for seed in 0..7 {
        out.push(scenario(ScenarioClass::Static, seed));
    }
    for seed in 0..7 {
        out.push(scenario(ScenarioClass::Mobile, seed));
    }
    for seed in 0..7 {
        out.push(scenario(ScenarioClass::Dense, seed));
    }
    out
}
