//! The differential harness: the culled backend is only allowed to be
//! *faster* than the exhaustive one, never *different*.
//!
//! Every scenario from the shared corpus (static, mobile and dense
//! topologies — see `common/mod.rs`) runs through both
//! [`MediumBackend`]s with a timeline and a metrics sink attached, and
//! the results must match **bit for bit**:
//!
//! * the full `SimReport` JSON (per-link stats, per-node stats, medium
//!   counters, metrics section) compared as raw bytes,
//! * the complete timestamped event stream,
//! * and, on a sparse scenario, the profiler must show the culled
//!   backend actually skipping receivers — so the corpus cannot
//!   silently degenerate into one where the equivalence is vacuous.
//!
//! Per-scenario wall-clock timings are written as JSON to the path in
//! `DIFFERENTIAL_TIMING_JSON` (set by CI, uploaded as a BENCH
//! artifact).

mod common;

use std::time::Instant;

use comap_mac::time::{SimDuration, SimTime};
use comap_sim::config::SimConfig;
use comap_sim::{MediumBackend, MetricsSink, SimEvent, Simulator, TimelineSink};

use common::{all_scenarios, scenario, ScenarioClass};

/// Runs one scenario under `backend`; returns the report JSON, the
/// event stream and the wall-clock nanoseconds of the run.
fn run(
    mut cfg: SimConfig,
    duration: SimDuration,
    backend: MediumBackend,
) -> (String, Vec<(SimTime, SimEvent)>, u64) {
    cfg.backend = backend;
    let mut sim = Simulator::new(cfg);
    let (sink, handle) = TimelineSink::new();
    sim.attach_sink(Box::new(sink));
    sim.attach_sink(Box::new(MetricsSink::new()));
    // simlint: allow(determinism) — wall clock only times the run for the BENCH artifact
    let started = Instant::now();
    let report = sim.run(duration);
    let nanos = started.elapsed().as_nanos() as u64;
    (report.to_json().to_string_compact(), handle.events(), nanos)
}

/// Compares two event streams, pointing at the first divergence instead
/// of dumping both streams.
fn assert_streams_equal(name: &str, ex: &[(SimTime, SimEvent)], cu: &[(SimTime, SimEvent)]) {
    for (i, (e, c)) in ex.iter().zip(cu.iter()).enumerate() {
        assert_eq!(
            e,
            c,
            "{name}: event streams diverge at index {i} (of {} / {})",
            ex.len(),
            cu.len()
        );
    }
    assert_eq!(
        ex.len(),
        cu.len(),
        "{name}: one stream is a strict prefix of the other"
    );
}

#[test]
fn culled_and_exhaustive_are_bit_identical_on_the_corpus() {
    let scenarios = all_scenarios();
    assert!(
        scenarios.len() >= 20,
        "the corpus must cover at least 20 scenarios"
    );
    let mut timings = Vec::new();
    for s in scenarios {
        let (report_ex, events_ex, nanos_ex) =
            run(s.cfg.clone(), s.duration, MediumBackend::Exhaustive);
        let (report_cu, events_cu, nanos_cu) = run(s.cfg, s.duration, MediumBackend::Culled);
        assert!(
            report_ex == report_cu,
            "{}: SimReport JSON diverged\nexhaustive: {report_ex}\nculled:     {report_cu}",
            s.name
        );
        assert_streams_equal(&s.name, &events_ex, &events_cu);
        timings.push((s.name, nanos_ex, nanos_cu));
    }

    // CI uploads the timing table as a BENCH artifact; locally the env
    // var is unset and nothing is written.
    if let Ok(path) = std::env::var("DIFFERENTIAL_TIMING_JSON") {
        let rows: Vec<String> = timings
            .iter()
            .map(|(name, ex, cu)| {
                format!(
                    "{{\"scenario\":\"{name}\",\"exhaustive_nanos\":{ex},\"culled_nanos\":{cu}}}"
                )
            })
            .collect();
        let body = format!("{{\"differential_timing\":[{}]}}\n", rows.join(","));
        std::fs::write(&path, body).expect("write differential timing artifact");
    }
}

/// The equivalence must not be vacuous: on a sparse static scenario the
/// culled backend has to *actually* enumerate fewer candidates than the
/// exhaustive backend while producing the identical report.
#[test]
fn sparse_scenarios_really_cull() {
    let s = scenario(ScenarioClass::Static, 2);
    let mut cfg = s.cfg.clone();
    cfg.backend = MediumBackend::Culled;
    let (report_cu, profile_cu) = Simulator::new(cfg).run_profiled(s.duration);
    let mut cfg = s.cfg;
    cfg.backend = MediumBackend::Exhaustive;
    let (report_ex, profile_ex) = Simulator::new(cfg).run_profiled(s.duration);

    let cu = profile_cu.medium_counters;
    let ex = profile_ex.medium_counters;
    // Same relevant set (that is the exactness contract) ...
    assert_eq!(cu.cull_relevant, ex.cull_relevant);
    assert_eq!(cu.cache_lookups, ex.cache_lookups);
    // ... but the culled backend pre-filters spatially.
    assert!(
        cu.cull_candidates < ex.cull_candidates,
        "culled candidates {} must be below exhaustive {}",
        cu.cull_candidates,
        ex.cull_candidates
    );
    // And some links of this sparse field are genuinely sub-floor.
    assert!(
        ex.cull_relevant < ex.cull_candidates,
        "corpus regression: no sub-floor links in the sparse scenario"
    );
    assert_eq!(
        report_ex.to_json().to_string_compact(),
        report_cu.to_json().to_string_compact()
    );
}

/// Like [`run`], but optionally pre-warms the whole link cache before
/// the run — the opposite fill order to the lazy default, exercising
/// the counter-keyed draw discipline end to end.
fn run_filled(
    mut cfg: SimConfig,
    duration: SimDuration,
    backend: MediumBackend,
    warm: bool,
) -> (String, Vec<(SimTime, SimEvent)>) {
    cfg.backend = backend;
    let mut sim = Simulator::new(cfg);
    if warm {
        sim.warm_link_cache();
    }
    let (sink, handle) = TimelineSink::new();
    sim.attach_sink(Box::new(sink));
    sim.attach_sink(Box::new(MetricsSink::new()));
    let report = sim.run(duration);
    (report.to_json().to_string_compact(), handle.events())
}

/// The stream-discipline corpus: after the counter-keyed RNG migration
/// no draw may depend on evaluation order, so every scenario class must
/// produce byte-identical SimReport JSON and event streams across
/// backend × fill-order (lazy vs pre-warmed cache) × quick/full
/// durations. The guard clauses at the bottom keep the corpus
/// non-vacuous: it must actually contend (non-zero backoff slots),
/// resolve receptions under interference (hazard survival draws) and
/// move nodes (localization-noise draws) somewhere along the way.
#[test]
fn stream_discipline_holds_across_backend_fill_order_and_duration() {
    let mut saw_contended_backoff = false;
    let mut saw_survival_resolution = false;
    for class in [
        ScenarioClass::Static,
        ScenarioClass::Mobile,
        ScenarioClass::Dense,
    ] {
        for seed in [31, 32] {
            let s = scenario(class, seed);
            let quick = SimDuration::from_micros(s.duration.as_micros_round() / 2);
            for duration in [quick, s.duration] {
                let mut baseline: Option<(String, Vec<(SimTime, SimEvent)>)> = None;
                for backend in [MediumBackend::Exhaustive, MediumBackend::Culled] {
                    for warm in [false, true] {
                        let (report, events) = run_filled(s.cfg.clone(), duration, backend, warm);
                        for (_, e) in &events {
                            if let SimEvent::BackoffDraw { slots, .. } = e {
                                if *slots > 0 {
                                    saw_contended_backoff = true;
                                }
                            }
                            if let SimEvent::RxResolved { .. } = e {
                                saw_survival_resolution = true;
                            }
                            if let SimEvent::HazardDrop { .. } = e {
                                saw_survival_resolution = true;
                            }
                        }
                        match &baseline {
                            None => baseline = Some((report, events)),
                            Some((base_report, base_events)) => {
                                assert!(
                                    &report == base_report,
                                    "{} @ {duration}: report diverged under \
                                     backend {backend:?}, warm {warm}",
                                    s.name
                                );
                                assert_streams_equal(&s.name, base_events, &events);
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(
        saw_contended_backoff,
        "corpus regression: no contended backoff draw anywhere"
    );
    assert!(
        saw_survival_resolution,
        "corpus regression: no lock ever resolved through a survival draw"
    );

    // The mobile class must actually move (localization-noise draws);
    // seed 32 runs with CO-MAP features, so accepted fixes surface as
    // position reports too.
    let s = scenario(ScenarioClass::Mobile, 32);
    let (report, profile) = Simulator::new(s.cfg).run_profiled(s.duration);
    assert!(
        profile.medium_counters.moves_applied > 0,
        "corpus regression: the mobile scenario never moved a node"
    );
    assert!(
        report.position_reports > 0,
        "corpus regression: no localization fix was ever reported"
    );
}

/// Moving nodes re-file in the grid: a mobile scenario keeps the
/// backends in lockstep through every `set_position`.
#[test]
fn mobile_scenarios_stay_identical_through_movement() {
    for seed in [11, 12] {
        let s = scenario(ScenarioClass::Mobile, seed);
        let (report_ex, events_ex, _) = run(s.cfg.clone(), s.duration, MediumBackend::Exhaustive);
        let (report_cu, events_cu, _) = run(s.cfg, s.duration, MediumBackend::Culled);
        assert!(report_ex == report_cu, "{}: report diverged", s.name);
        assert_streams_equal(&s.name, &events_ex, &events_cu);
    }
}
