//! The observability layer's two contracts, end to end:
//!
//! 1. **Non-perturbation** — attaching any combination of sinks to a
//!    run must leave the `SimReport` bit-identical to a run without
//!    sinks (and to a profiled run): emission never touches an RNG
//!    stream and sinks have no channel back into the simulation.
//! 2. **Fidelity** — everything a sink records survives serialization:
//!    the JSONL event stream parses back to the exact events the
//!    in-memory timeline saw, and a `SimReport` with a metrics section
//!    round-trips through JSON losslessly.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use comap_mac::time::SimDuration;
use comap_radio::Position;
use comap_sim::config::{MacFeatures, NodeSpec, SimConfig, Traffic};
use comap_sim::observe::parse_jsonl_line;
use comap_sim::{
    Json, JsonlSink, LatencySink, MetricsSink, NoopSink, SimReport, Simulator, TimelineSink,
};

/// A CO-MAP four-node topology that exercises every event source:
/// captures, hazard drops, discovery headers, ET opportunities,
/// retries and adaptation.
fn busy_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::testbed(seed);
    cfg.default_features = MacFeatures::COMAP;
    let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(0.0, 0.0)));
    let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(-8.0, 0.0)));
    let ap2 = cfg.add_node(NodeSpec::ap("AP2", Position::new(36.0, 0.0)));
    let c2 = cfg.add_node(NodeSpec::client("C2", Position::new(26.0, 0.0)));
    cfg.add_flow(c1, ap1, Traffic::Saturated);
    cfg.add_flow(c2, ap2, Traffic::Saturated);
    cfg
}

const DURATION: SimDuration = SimDuration::from_millis(120);

/// An `io::Write` that appends into a shared buffer, so a test can read
/// back what a consumed [`JsonlSink`] wrote.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn sinks_do_not_perturb_the_report() {
    let bare = Simulator::new(busy_cfg(7)).run(DURATION);

    let buf = SharedBuf::default();
    let (timeline, _handle) = TimelineSink::new();
    let mut sim = Simulator::new(busy_cfg(7));
    sim.attach_sink(Box::new(NoopSink));
    sim.attach_sink(Box::new(JsonlSink::new(buf.clone())));
    sim.attach_sink(Box::new(MetricsSink::new()));
    sim.attach_sink(Box::new(LatencySink::new()));
    sim.attach_sink(Box::new(timeline));
    let mut observed = sim.run(DURATION);

    // The metrics section is the one *intentional* addition a sink
    // makes; everything else must match exactly.
    assert!(observed.metrics.is_some(), "MetricsSink fills the section");
    observed.metrics = None;
    assert_eq!(observed, bare, "sinks changed the simulation");
    assert!(!buf.0.borrow().is_empty(), "the run produced events");
}

#[test]
fn profiling_does_not_perturb_the_report() {
    let bare = Simulator::new(busy_cfg(11)).run(DURATION);
    let (profiled, profile) = Simulator::new(busy_cfg(11)).run_profiled(DURATION);
    assert_eq!(profiled, bare);

    // Profile sanity: every processed event is accounted for, with a
    // real wall-clock rate and a queue that was non-trivial at peak.
    assert!(profile.events > 0);
    assert!(profile.events_per_sec() > 0.0);
    assert!(profile.queue_peak > 0);
    assert_eq!(profile.sim_nanos, DURATION.as_nanos());
    let by_type: u64 = profile.by_type.iter().map(|t| t.count).sum();
    assert_eq!(by_type, profile.events);

    // And the profile itself round-trips through its JSON form.
    let text = profile.to_json().to_string_compact();
    let back = comap_sim::RunProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn jsonl_stream_matches_the_timeline() {
    let buf = SharedBuf::default();
    let (timeline, handle) = TimelineSink::new();
    let mut sim = Simulator::new(busy_cfg(3));
    sim.attach_sink(Box::new(JsonlSink::new(buf.clone())));
    sim.attach_sink(Box::new(timeline));
    sim.run(DURATION);

    let text = String::from_utf8(buf.0.borrow().clone()).expect("UTF-8 JSONL");
    let parsed: Vec<_> = text
        .lines()
        .map(|line| parse_jsonl_line(line).expect("every line parses"))
        .collect();
    let recorded = handle.events();
    assert!(!recorded.is_empty());
    assert_eq!(parsed, recorded, "JSONL stream diverged from the timeline");

    // The human-readable rendering covers the same events.
    assert_eq!(handle.render().lines().count(), recorded.len());
}

#[test]
fn latency_sink_perturbs_neither_report_nor_event_stream() {
    // Reference: a traced run with no latency sink.
    let ref_buf = SharedBuf::default();
    let mut sim = Simulator::new(busy_cfg(7));
    sim.attach_sink(Box::new(JsonlSink::new(ref_buf.clone())));
    let bare = sim.run(DURATION);

    // Same run with the latency sink attached on top.
    let buf = SharedBuf::default();
    let mut sim = Simulator::new(busy_cfg(7));
    sim.attach_sink(Box::new(JsonlSink::new(buf.clone())));
    sim.attach_sink(Box::new(LatencySink::new()));
    let mut observed = sim.run(DURATION);

    // The latency section is the sink's one intentional addition;
    // everything else — including the byte-exact JSONL event stream —
    // must be identical.
    assert!(
        observed
            .metrics
            .as_ref()
            .is_some_and(|m| m.latency.is_some()),
        "LatencySink fills the latency section"
    );
    observed.metrics = None;
    assert_eq!(observed, bare, "the latency sink changed the simulation");
    assert_eq!(
        *buf.0.borrow(),
        *ref_buf.0.borrow(),
        "the latency sink changed the event stream"
    );
}

#[test]
fn latency_section_is_populated_and_coherent() {
    let mut sim = Simulator::new(busy_cfg(9));
    sim.attach_sink(Box::new(LatencySink::new()));
    let report = sim.run(DURATION);
    let latency = report
        .metrics
        .as_ref()
        .and_then(|m| m.latency.as_ref())
        .expect("latency section present");

    // A saturated four-node run delivers plenty of frames: the
    // aggregate must be non-degenerate, with ordered percentiles.
    assert!(!latency.nodes.is_empty());
    let agg = latency.aggregate();
    assert!(agg.delivered > 0, "frames were delivered");
    assert!(agg.tx_attempts >= agg.delivered);
    assert_eq!(agg.e2e.count(), agg.delivered + agg.dropped);
    let (p50, p95, p99) = (
        agg.e2e.quantile(0.50).expect("p50"),
        agg.e2e.quantile(0.95).expect("p95"),
        agg.e2e.quantile(0.99).expect("p99"),
    );
    assert!(p50 > 0, "e2e latency is positive");
    assert!(p50 <= p95 && p95 <= p99, "percentiles are ordered");

    // Queueing + access + service decompose e2e for delivered frames:
    // each span histogram carries the same population.
    for l in latency.nodes.values() {
        assert_eq!(l.queueing.count(), l.access.count());
        assert_eq!(l.access.count(), l.service.count());
    }
}

#[test]
fn latency_and_metrics_sections_merge_in_either_order() {
    let run = |first_latency: bool| {
        let mut sim = Simulator::new(busy_cfg(13));
        if first_latency {
            sim.attach_sink(Box::new(LatencySink::new()));
            sim.attach_sink(Box::new(MetricsSink::new()));
        } else {
            sim.attach_sink(Box::new(MetricsSink::new()));
            sim.attach_sink(Box::new(LatencySink::new()));
        }
        sim.run(DURATION)
    };
    let a = run(true);
    let b = run(false);
    let m_a = a.metrics.as_ref().expect("section present");
    let m_b = b.metrics.as_ref().expect("section present");
    assert!(m_a.latency.is_some(), "latency survives the merge");
    assert!(!m_a.nodes.is_empty(), "node metrics survive the merge");
    assert_eq!(m_a, m_b, "attach order changed the merged section");
}

#[test]
fn report_with_latency_round_trips_through_json() {
    let mut sim = Simulator::new(busy_cfg(5));
    sim.attach_sink(Box::new(MetricsSink::new()));
    sim.attach_sink(Box::new(LatencySink::new()));
    let report = sim.run(DURATION);
    assert!(report.metrics.as_ref().is_some_and(|m| m.latency.is_some()));

    let text = report.to_json().to_string_compact();
    let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("valid report JSON");
    assert_eq!(back, report);
}

#[test]
fn unstamped_report_json_is_rejected() {
    let report = Simulator::new(busy_cfg(5)).run(DURATION);
    let text = report.to_json().to_string_compact();
    let legacy = text.replacen("\"schema_version\":2,", "", 1);
    let err = SimReport::from_json(&Json::parse(&legacy).unwrap()).unwrap_err();
    assert!(err.to_string().contains("schema_version"), "{err}");
}

#[test]
fn report_with_metrics_round_trips_through_json() {
    let mut sim = Simulator::new(busy_cfg(5));
    sim.attach_sink(Box::new(MetricsSink::new()));
    let report = sim.run(DURATION);
    assert!(report.metrics.is_some());

    let text = report.to_json().to_string_compact();
    let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("valid report JSON");
    assert_eq!(back, report);

    // A report without the section round-trips too (the field is null).
    let bare = Simulator::new(busy_cfg(5)).run(DURATION);
    let text = bare.to_json().to_string_compact();
    let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("valid report JSON");
    assert_eq!(back, bare);
}
