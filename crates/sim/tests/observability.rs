//! The observability layer's two contracts, end to end:
//!
//! 1. **Non-perturbation** — attaching any combination of sinks to a
//!    run must leave the `SimReport` bit-identical to a run without
//!    sinks (and to a profiled run): emission never touches an RNG
//!    stream and sinks have no channel back into the simulation.
//! 2. **Fidelity** — everything a sink records survives serialization:
//!    the JSONL event stream parses back to the exact events the
//!    in-memory timeline saw, and a `SimReport` with a metrics section
//!    round-trips through JSON losslessly.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use comap_mac::time::SimDuration;
use comap_radio::Position;
use comap_sim::config::{MacFeatures, NodeSpec, SimConfig, Traffic};
use comap_sim::observe::parse_jsonl_line;
use comap_sim::{Json, JsonlSink, MetricsSink, NoopSink, SimReport, Simulator, TimelineSink};

/// A CO-MAP four-node topology that exercises every event source:
/// captures, hazard drops, discovery headers, ET opportunities,
/// retries and adaptation.
fn busy_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::testbed(seed);
    cfg.default_features = MacFeatures::COMAP;
    let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(0.0, 0.0)));
    let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(-8.0, 0.0)));
    let ap2 = cfg.add_node(NodeSpec::ap("AP2", Position::new(36.0, 0.0)));
    let c2 = cfg.add_node(NodeSpec::client("C2", Position::new(26.0, 0.0)));
    cfg.add_flow(c1, ap1, Traffic::Saturated);
    cfg.add_flow(c2, ap2, Traffic::Saturated);
    cfg
}

const DURATION: SimDuration = SimDuration::from_millis(120);

/// An `io::Write` that appends into a shared buffer, so a test can read
/// back what a consumed [`JsonlSink`] wrote.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn sinks_do_not_perturb_the_report() {
    let bare = Simulator::new(busy_cfg(7)).run(DURATION);

    let buf = SharedBuf::default();
    let (timeline, _handle) = TimelineSink::new();
    let mut sim = Simulator::new(busy_cfg(7));
    sim.attach_sink(Box::new(NoopSink));
    sim.attach_sink(Box::new(JsonlSink::new(buf.clone())));
    sim.attach_sink(Box::new(MetricsSink::new()));
    sim.attach_sink(Box::new(timeline));
    let mut observed = sim.run(DURATION);

    // The metrics section is the one *intentional* addition a sink
    // makes; everything else must match exactly.
    assert!(observed.metrics.is_some(), "MetricsSink fills the section");
    observed.metrics = None;
    assert_eq!(observed, bare, "sinks changed the simulation");
    assert!(!buf.0.borrow().is_empty(), "the run produced events");
}

#[test]
fn profiling_does_not_perturb_the_report() {
    let bare = Simulator::new(busy_cfg(11)).run(DURATION);
    let (profiled, profile) = Simulator::new(busy_cfg(11)).run_profiled(DURATION);
    assert_eq!(profiled, bare);

    // Profile sanity: every processed event is accounted for, with a
    // real wall-clock rate and a queue that was non-trivial at peak.
    assert!(profile.events > 0);
    assert!(profile.events_per_sec() > 0.0);
    assert!(profile.queue_peak > 0);
    assert_eq!(profile.sim_nanos, DURATION.as_nanos());
    let by_type: u64 = profile.by_type.iter().map(|t| t.count).sum();
    assert_eq!(by_type, profile.events);

    // And the profile itself round-trips through its JSON form.
    let text = profile.to_json().to_string_compact();
    let back = comap_sim::RunProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, profile);
}

#[test]
fn jsonl_stream_matches_the_timeline() {
    let buf = SharedBuf::default();
    let (timeline, handle) = TimelineSink::new();
    let mut sim = Simulator::new(busy_cfg(3));
    sim.attach_sink(Box::new(JsonlSink::new(buf.clone())));
    sim.attach_sink(Box::new(timeline));
    sim.run(DURATION);

    let text = String::from_utf8(buf.0.borrow().clone()).expect("UTF-8 JSONL");
    let parsed: Vec<_> = text
        .lines()
        .map(|line| parse_jsonl_line(line).expect("every line parses"))
        .collect();
    let recorded = handle.events();
    assert!(!recorded.is_empty());
    assert_eq!(parsed, recorded, "JSONL stream diverged from the timeline");

    // The human-readable rendering covers the same events.
    assert_eq!(handle.render().lines().count(), recorded.len());
}

#[test]
fn report_with_metrics_round_trips_through_json() {
    let mut sim = Simulator::new(busy_cfg(5));
    sim.attach_sink(Box::new(MetricsSink::new()));
    let report = sim.run(DURATION);
    assert!(report.metrics.is_some());

    let text = report.to_json().to_string_compact();
    let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("valid report JSON");
    assert_eq!(back, report);

    // A report without the section round-trips too (the field is null).
    let bare = Simulator::new(busy_cfg(5)).run(DURATION);
    let text = bare.to_json().to_string_compact();
    let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("valid report JSON");
    assert_eq!(back, bare);
}
