//! Long-run drift test for the medium's power ledger.
//!
//! The ledger invariant (see `medium.rs`): the ambient power a node
//! senses is a pure function of the set of transmissions currently on
//! the air. A floating-point running sum violates this after enough
//! add/remove churn — residue accumulates and `sensed()` starts to
//! depend on history. The quantized ledger must stay bit-identical to a
//! from-scratch recomputation over *millions* of begin/end cycles.

use comap_mac::time::{SimDuration, SimTime};
use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::rates::Rate;
use comap_radio::units::Dbm;
use comap_radio::Position;
use comap_sim::frame::{Frame, FrameBody, NodeId};
use comap_sim::medium::Medium;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn at(us: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(us)
}

fn data(src: usize, dst: usize) -> Frame {
    Frame {
        src: NodeId(src),
        dst: NodeId(dst),
        body: FrameBody::Data {
            seq: 0,
            payload_bytes: 1000,
            retry: false,
        },
        rate: Rate::Mbps11,
    }
}

/// ≥ 10⁶ begin/end cycles on a 10-node shadowed medium, with up to five
/// transmissions overlapping at any instant so powers of very different
/// magnitudes are continually added and removed. The ledger must match a
/// from-scratch recomputation exactly — zero grains of divergence, not
/// merely a small tolerance — the whole way through and at the end.
#[test]
fn a_million_begin_end_cycles_leave_zero_ledger_drift() {
    const CYCLES: u64 = 1_000_000;
    const DEPTH: u64 = 5; // concurrent transmissions
    const STEP: u64 = 10; // µs between rounds

    // Shadowed channel (testbed σ = 4 dB): every frame draws fresh fast
    // fading, so the ledger sees varied magnitudes, the worst case for a
    // float accumulator.
    let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
    let positions: Vec<Position> = (0..10)
        .map(|i| Position::new(7.5 * i as f64, 11.0 * ((i * i) % 7) as f64))
        .collect();
    let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(42));

    let mut pending = std::collections::VecDeque::new();
    for round in 0..CYCLES {
        let now = round * STEP;
        if round >= DEPTH {
            let (tx, end) = pending.pop_front().expect("depth reached");
            assert_eq!(end, now, "test bookkeeping");
            m.end(tx, at(end));
        }
        // Sources cycle mod 10 with only DEPTH = 5 in flight, so a node
        // never begins while still transmitting.
        let src = (round % 10) as usize;
        let dst = ((round + 3) % 10) as usize;
        let end = now + DEPTH * STEP;
        let (tx, _) = m.begin(data(src, dst), at(now), at(end));
        pending.push_back((tx, end));

        // Spot-check the invariant along the way (every op is already
        // checked in debug builds; this keeps the test meaningful under
        // --release too).
        if round % 100_000 == 0 {
            assert_eq!(
                m.ledger_divergence_grains(),
                0,
                "ledger drifted from the active set at round {round}"
            );
        }
    }
    // Drain the in-flight tail and verify the final state exactly.
    while let Some((tx, end)) = pending.pop_front() {
        m.end(tx, at(end));
    }
    assert_eq!(m.active_count(), 0);
    assert_eq!(
        m.ledger_divergence_grains(),
        0,
        "ledger drifted after {CYCLES} cycles"
    );
    // With nothing on the air, every node senses exactly the noise floor
    // — bit-identical, which is precisely what a drifted float ledger
    // fails to restore.
    for n in 0..10 {
        assert_eq!(
            m.sensed(NodeId(n)),
            comap_radio::NOISE_FLOOR.to_milliwatts()
        );
    }
}
