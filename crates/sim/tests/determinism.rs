//! Simulator-level invariants: determinism, conservation, and
//! feature-independent sanity over randomized topologies.

use comap_mac::time::SimDuration;
use comap_radio::rates::Rate;
use comap_radio::Position;
use comap_sim::config::{MacFeatures, NodeSpec, SimConfig, Traffic};

use comap_sim::rate::RateController;
use comap_sim::sim::Simulator;
use proptest::prelude::*;

/// A random small network: one AP per cluster, clients scattered nearby.
fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        1u64..1000,
        2usize..6,
        prop::collection::vec(((-60.0..60.0f64), (-60.0..60.0f64)), 1..5),
        any::<bool>(),
    )
        .prop_map(|(seed, _n, client_offsets, comap)| {
            let mut cfg = SimConfig::testbed(seed);
            cfg.rate_controller = RateController::Fixed(Rate::Mbps11);
            cfg.default_features = if comap {
                MacFeatures::COMAP
            } else {
                MacFeatures::DCF
            };
            let ap = cfg.add_node(NodeSpec::ap("AP", Position::new(0.0, 0.0)));
            for (i, (x, y)) in client_offsets.into_iter().enumerate() {
                let c = cfg.add_node(NodeSpec::client(format!("C{i}"), Position::new(x, y)));
                cfg.add_flow(c, ap, Traffic::Saturated);
            }
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same configuration ⇒ bit-identical outcome.
    #[test]
    fn identical_runs_are_identical(cfg in arb_config()) {
        let d = SimDuration::from_millis(80);
        let a = Simulator::new(cfg.clone()).run(d);
        let b = Simulator::new(cfg).run(d);
        prop_assert_eq!(a.links, b.links);
        prop_assert_eq!(a.nodes, b.nodes);
        prop_assert_eq!(a.events, b.events);
    }

    /// Conservation: a link never delivers more frames than it attempted,
    /// and goodput never exceeds the PHY rate.
    #[test]
    fn deliveries_are_conserved(cfg in arb_config()) {
        let report = Simulator::new(cfg).run(SimDuration::from_millis(120));
        for (&(src, dst), stats) in &report.links {
            prop_assert!(
                stats.delivered_frames <= stats.data_tx,
                "{src}->{dst}: {stats:?}"
            );
            let g = report.link_goodput_bps(src, dst);
            prop_assert!(g <= Rate::Mbps11.bits_per_second());
        }
    }

    /// Airtime accounting never exceeds wall time (half-duplex radios).
    #[test]
    fn airtime_is_bounded(cfg in arb_config()) {
        let d = SimDuration::from_millis(120);
        let report = Simulator::new(cfg).run(d);
        for (node, stats) in &report.nodes {
            prop_assert!(
                stats.airtime <= d,
                "{node} transmitted {} of {d}",
                stats.airtime
            );
        }
    }
}

#[test]
fn minstrel_converges_in_simulation() {
    // A marginal 30 m link: 11 Mbps fails persistently, lower rates work.
    // Minstrel must end up delivering at a mid rate instead of starving.
    //
    // The premise ("lower rates work") depends on the seed's static
    // shadow draw: the mean SNR at 30 m is ≈ 12 dB against per-rate
    // thresholds of 4/7/9/10 dB, so a ~2σ-bad draw (σ_slow ≈ 3.7 dB)
    // leaves only 1 Mbps above threshold and ~0.8 Mbps is then the
    // correct outcome, not a convergence failure. Seed 4 draws a median
    // shadow where the premise actually holds; Minstrel lands at a mid
    // rate well above 1 Mbps and well below the clean-link ~4 Mbps.
    let mut cfg = SimConfig::testbed(4);
    cfg.rate_controller = RateController::Minstrel;
    let c = cfg.add_node(NodeSpec::client("C", Position::new(0.0, 0.0)));
    let ap = cfg.add_node(NodeSpec::ap("AP", Position::new(30.0, 0.0)));
    cfg.add_flow(c, ap, Traffic::Saturated);
    let report = Simulator::new(cfg).run(SimDuration::from_secs(1));
    let goodput = report.link_goodput_bps(c, ap);
    assert!(
        goodput > 1.0e6,
        "Minstrel should find a working rate, got {goodput}"
    );
    assert!(
        goodput < 3.5e6,
        "the 30 m link should stay marginal, got {goodput}"
    );

    // And on a strong 5 m link it must reach near-top-rate goodput.
    let mut cfg = SimConfig::testbed(4);
    cfg.rate_controller = RateController::Minstrel;
    let c = cfg.add_node(NodeSpec::client("C", Position::new(0.0, 0.0)));
    let ap = cfg.add_node(NodeSpec::ap("AP", Position::new(5.0, 0.0)));
    cfg.add_flow(c, ap, Traffic::Saturated);
    let report = Simulator::new(cfg).run(SimDuration::from_secs(1));
    let strong = report.link_goodput_bps(c, ap);
    assert!(strong > 4.0e6, "Minstrel on a clean link got {strong}");
}

#[test]
fn mobility_redraws_geometry_and_reports() {
    // C2 starts right next to AP1 (a genuine contender) and walks far
    // away mid-run: the C1→AP1 link must speed up afterwards, and the
    // move must produce exactly one position report under CO-MAP.
    let build = |features: MacFeatures| {
        let mut cfg = SimConfig::testbed(9);
        cfg.rate_controller = RateController::Fixed(Rate::Mbps11);
        cfg.default_features = features;
        let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
        let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(8.0, 0.0)));
        // A second client of the same AP: a full contender until it
        // walks out of the cell mid-run.
        let c2 = cfg.add_node(
            NodeSpec::client("C2", Position::new(10.0, 0.0))
                .with_move(SimDuration::from_millis(400), Position::new(300.0, 0.0)),
        );
        cfg.add_flow(c1, ap1, Traffic::Saturated);
        cfg.add_flow(c2, ap1, Traffic::Saturated);
        (cfg, c1, ap1)
    };

    // Split the run around the move to compare before/after.
    let (cfg, c1, ap1) = build(MacFeatures::DCF);
    let before = Simulator::new(cfg).run(SimDuration::from_millis(390));
    let (cfg, _, _) = build(MacFeatures::DCF);
    let whole = Simulator::new(cfg).run(SimDuration::from_millis(1200));
    let g_before = before.link_goodput_bps(c1, ap1);
    let g_whole = whole.link_goodput_bps(c1, ap1);
    assert!(
        g_whole > 1.3 * g_before,
        "the link must speed up once the contender leaves: {g_before} -> {g_whole}"
    );

    // CO-MAP: exactly one report for one long move.
    let (cfg, _, _) = build(MacFeatures::COMAP);
    let report = Simulator::new(cfg).run(SimDuration::from_millis(1200));
    assert_eq!(report.position_reports, 1);

    // A sub-threshold wiggle produces none.
    let mut cfg = SimConfig::testbed(9);
    cfg.default_features = MacFeatures::COMAP;
    let a = cfg.add_node(
        NodeSpec::client("A", Position::new(0.0, 0.0))
            .with_move(SimDuration::from_millis(100), Position::new(1.0, 0.0)),
    );
    let b = cfg.add_node(NodeSpec::ap("B", Position::new(8.0, 0.0)));
    cfg.add_flow(a, b, Traffic::Saturated);
    let report = Simulator::new(cfg).run(SimDuration::from_millis(300));
    assert_eq!(
        report.position_reports, 0,
        "1 m wiggle is below the 5 m threshold"
    );
}
