//! On-air frames and node identities.

use std::fmt;

use serde::{Deserialize, Serialize};

use comap_mac::arq::Ack;
use comap_mac::frames::FrameKind;
use comap_mac::time::SimDuration;
use comap_radio::rates::Rate;

/// Index of a node within a simulation (dense, assigned by
/// [`crate::SimConfig::add_node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unique identifier of one transmission on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

/// Frame-kind-specific payload of an on-air frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameBody {
    /// CO-MAP discovery header announcing the data frame that follows
    /// back-to-back.
    Discovery {
        /// Airtime of the upcoming data frame.
        data_duration: SimDuration,
    },
    /// A data MPDU.
    Data {
        /// Link-layer sequence number.
        seq: u64,
        /// Payload bytes carried.
        payload_bytes: u32,
        /// `true` for DCF retransmissions of the same sequence number.
        retry: bool,
    },
    /// An acknowledgment. Plain DCF acks have `sr: None`; CO-MAP acks
    /// carry the selective-repeat state.
    Ack {
        /// Sequence number being acknowledged (DCF semantics).
        seq: u64,
        /// Selective-repeat cumulative + bitmap, when ARQ is enabled.
        sr: Option<Ack>,
    },
    /// Request-to-send (the optional RTS/CTS baseline the paper
    /// disables). `nav` covers CTS + data + ACK.
    Rts {
        /// Network-allocation-vector duration announced to overhearers.
        nav: SimDuration,
    },
    /// Clear-to-send. `nav` covers data + ACK.
    Cts {
        /// Network-allocation-vector duration announced to overhearers.
        nav: SimDuration,
    },
}

/// A frame as it exists on the air.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Intended receiver.
    pub dst: NodeId,
    /// Kind-specific contents.
    pub body: FrameBody,
    /// Modulation rate.
    pub rate: Rate,
}

impl Frame {
    /// The frame kind on the air.
    pub fn kind(&self) -> FrameKind {
        match self.body {
            FrameBody::Discovery { .. } => FrameKind::DiscoveryHeader,
            FrameBody::Data { .. } => FrameKind::Data,
            FrameBody::Ack { .. } => FrameKind::Ack,
            FrameBody::Rts { .. } => FrameKind::Rts,
            FrameBody::Cts { .. } => FrameKind::Cts,
        }
    }

    /// On-air MPDU size in bytes.
    pub fn on_air_bytes(&self) -> u32 {
        let payload = match self.body {
            FrameBody::Data { payload_bytes, .. } => payload_bytes,
            _ => 0,
        };
        self.kind().on_air_bytes(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_bodies() {
        let d = Frame {
            src: NodeId(0),
            dst: NodeId(1),
            body: FrameBody::Data {
                seq: 3,
                payload_bytes: 700,
                retry: false,
            },
            rate: Rate::Mbps11,
        };
        assert_eq!(d.kind(), FrameKind::Data);
        assert_eq!(d.on_air_bytes(), 728);

        let h = Frame {
            body: FrameBody::Discovery {
                data_duration: SimDuration::from_micros(900),
            },
            ..d
        };
        assert_eq!(h.kind(), FrameKind::DiscoveryHeader);
        assert_eq!(h.on_air_bytes(), comap_mac::frames::DISCOVERY_HEADER_BYTES);

        let a = Frame {
            body: FrameBody::Ack { seq: 3, sr: None },
            ..d
        };
        assert_eq!(a.kind(), FrameKind::Ack);
        assert_eq!(a.on_air_bytes(), comap_mac::frames::ACK_BYTES);
    }

    #[test]
    fn node_id_displays_compactly() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }
}
