//! Event-loop profiling: wall-clock throughput, per-event-type cost,
//! queue pressure, and ledger-check overhead for a single run.
//!
//! Profiling is orthogonal to the observer layer — it times the event
//! loop itself rather than listening to simulation events, and it never
//! touches simulation state, so a profiled run produces the same
//! [`SimReport`](crate::stats::SimReport) as an unprofiled one. Use
//! [`Simulator::run_profiled`](crate::Simulator::run_profiled) to get a
//! [`RunProfile`] next to the report.

use std::time::Instant;

use comap_mac::time::SimDuration;

use crate::event::{Event, EventQueue};
use crate::json::{check_schema_version, Json, SchemaError, SCHEMA_VERSION};
use crate::medium::MediumCounters;

/// Count and cumulative wall-clock cost of one event type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTypeProfile {
    /// Event type name (see [`Event::KIND_NAMES`]).
    pub name: String,
    /// Events of this type processed.
    pub count: u64,
    /// Total wall-clock nanoseconds spent dispatching them.
    pub nanos: u64,
}

/// Wall-clock profile of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    /// Total events processed.
    pub events: u64,
    /// Wall-clock duration of the run, in nanoseconds.
    pub wall_nanos: u64,
    /// Simulated duration, in nanoseconds.
    pub sim_nanos: u64,
    /// Peak event-queue depth observed.
    pub queue_peak: u64,
    /// Per-event-type counts and dispatch cost.
    pub by_type: Vec<EventTypeProfile>,
    /// Number of ledger verifications performed (debug builds only).
    pub ledger_checks: u64,
    /// Wall-clock nanoseconds spent in ledger verification.
    pub ledger_check_nanos: u64,
    /// Link-cache and spatial-culling counters of the medium. Exposed
    /// here (and only here): they depend on the backend, so they must
    /// never reach a [`SimReport`](crate::stats::SimReport).
    pub medium_counters: MediumCounters,
}

impl RunProfile {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Serializes the profile as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Uint(SCHEMA_VERSION)),
            ("events", Json::Uint(self.events)),
            ("wall_nanos", Json::Uint(self.wall_nanos)),
            ("sim_nanos", Json::Uint(self.sim_nanos)),
            ("events_per_sec", Json::Num(self.events_per_sec())),
            ("queue_peak", Json::Uint(self.queue_peak)),
            (
                "by_type",
                Json::Arr(
                    self.by_type
                        .iter()
                        .map(|t| {
                            Json::obj(vec![
                                ("name", Json::str(t.name.clone())),
                                ("count", Json::Uint(t.count)),
                                ("nanos", Json::Uint(t.nanos)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("ledger_checks", Json::Uint(self.ledger_checks)),
            ("ledger_check_nanos", Json::Uint(self.ledger_check_nanos)),
            (
                "medium_counters",
                Json::obj(vec![
                    (
                        "cache_recomputes",
                        Json::Uint(self.medium_counters.cache_recomputes),
                    ),
                    (
                        "cache_lookups",
                        Json::Uint(self.medium_counters.cache_lookups),
                    ),
                    (
                        "cull_candidates",
                        Json::Uint(self.medium_counters.cull_candidates),
                    ),
                    (
                        "cull_relevant",
                        Json::Uint(self.medium_counters.cull_relevant),
                    ),
                    (
                        "moves_applied",
                        Json::Uint(self.medium_counters.moves_applied),
                    ),
                    (
                        "moves_coalesced",
                        Json::Uint(self.medium_counters.moves_coalesced),
                    ),
                ]),
            ),
        ])
    }

    /// Parses a profile from its [`RunProfile::to_json`] form.
    ///
    /// The derived `events_per_sec` field is ignored on input — it is
    /// recomputed from `events` and `wall_nanos`.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] when the `schema_version` stamp is
    /// missing or mismatched, or when a required field is absent or
    /// malformed.
    pub fn from_json(v: &Json) -> Result<RunProfile, SchemaError> {
        check_schema_version(v, "bench profile")?;
        let malformed = || SchemaError::new("bench profile: missing or malformed field");
        let field = |obj: &Json, key: &str| -> Result<u64, SchemaError> {
            obj.get(key).and_then(Json::as_u64).ok_or_else(malformed)
        };
        let mut by_type = Vec::new();
        for entry in v
            .get("by_type")
            .and_then(Json::as_arr)
            .ok_or_else(malformed)?
        {
            by_type.push(EventTypeProfile {
                name: entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(malformed)?
                    .to_string(),
                count: field(entry, "count")?,
                nanos: field(entry, "nanos")?,
            });
        }
        Ok(RunProfile {
            events: field(v, "events")?,
            wall_nanos: field(v, "wall_nanos")?,
            sim_nanos: field(v, "sim_nanos")?,
            queue_peak: field(v, "queue_peak")?,
            by_type,
            ledger_checks: field(v, "ledger_checks")?,
            ledger_check_nanos: field(v, "ledger_check_nanos")?,
            // Absent in profiles from before the culling layer: default
            // to zeros so older artifacts still parse.
            medium_counters: v
                .get("medium_counters")
                .map(|c| MediumCounters {
                    cache_recomputes: c
                        .get("cache_recomputes")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    cache_lookups: c.get("cache_lookups").and_then(Json::as_u64).unwrap_or(0),
                    cull_candidates: c.get("cull_candidates").and_then(Json::as_u64).unwrap_or(0),
                    cull_relevant: c.get("cull_relevant").and_then(Json::as_u64).unwrap_or(0),
                    moves_applied: c.get("moves_applied").and_then(Json::as_u64).unwrap_or(0),
                    moves_coalesced: c.get("moves_coalesced").and_then(Json::as_u64).unwrap_or(0),
                })
                .unwrap_or_default(),
        })
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: {} events in {:.1} ms wall ({:.0} events/s), queue peak {}",
            self.events,
            self.wall_nanos as f64 / 1e6,
            self.events_per_sec(),
            self.queue_peak
        );
        for t in &self.by_type {
            if t.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>9} events  {:>8.2} ms  ({:.0} ns/event)",
                t.name,
                t.count,
                t.nanos as f64 / 1e6,
                t.nanos as f64 / t.count as f64
            );
        }
        if self.ledger_checks > 0 {
            let _ = writeln!(
                out,
                "  ledger checks  {:>9}         {:>8.2} ms",
                self.ledger_checks,
                self.ledger_check_nanos as f64 / 1e6
            );
        }
        let mc = self.medium_counters;
        if mc.cull_candidates > 0 {
            let culled = mc.cull_candidates - mc.cull_relevant;
            let _ = writeln!(
                out,
                "  medium: {} receiver visits ({} culled, {:.1}%), \
                 link cache {} lookups / {} recomputes",
                mc.cull_relevant,
                culled,
                100.0 * culled as f64 / mc.cull_candidates as f64,
                mc.cache_lookups,
                mc.cache_recomputes
            );
        }
        if mc.moves_applied + mc.moves_coalesced > 0 {
            let _ = writeln!(
                out,
                "  mobility: {} moves applied, {} coalesced by quantization",
                mc.moves_applied, mc.moves_coalesced
            );
        }
        out
    }
}

/// Live profiling state threaded through the event loop.
pub(crate) struct Profiler {
    start: Instant,
    counts: [u64; Event::KIND_COUNT],
    nanos: [u64; Event::KIND_COUNT],
    queue_peak: usize,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        Profiler {
            // simlint: allow(determinism) — profiling measures wall time; results never feed sim state
            start: Instant::now(),
            counts: [0; Event::KIND_COUNT],
            nanos: [0; Event::KIND_COUNT],
            queue_peak: 0,
        }
    }

    /// Called before each pop to track peak queue pressure.
    pub(crate) fn observe_queue(&mut self, queue: &EventQueue) {
        self.queue_peak = self.queue_peak.max(queue.len());
    }

    /// Starts timing one event dispatch.
    pub(crate) fn dispatch_start(&self) -> Instant {
        // simlint: allow(determinism) — profiling measures wall time; results never feed sim state
        Instant::now()
    }

    /// Finishes timing one event dispatch.
    pub(crate) fn dispatch_end(&mut self, kind: usize, started: Instant) {
        self.counts[kind] += 1;
        self.nanos[kind] += started.elapsed().as_nanos() as u64;
    }

    pub(crate) fn finish(
        self,
        sim_duration: SimDuration,
        ledger_checks: u64,
        ledger_check_nanos: u64,
        medium_counters: MediumCounters,
    ) -> RunProfile {
        let wall_nanos = self.start.elapsed().as_nanos() as u64;
        let by_type = Event::KIND_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| EventTypeProfile {
                name: (*name).to_string(),
                count: self.counts[i],
                nanos: self.nanos[i],
            })
            .collect();
        RunProfile {
            events: self.counts.iter().sum(),
            wall_nanos,
            sim_nanos: sim_duration.as_nanos(),
            queue_peak: self.queue_peak as u64,
            by_type,
            ledger_checks,
            ledger_check_nanos,
            medium_counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunProfile {
        RunProfile {
            events: 1_000,
            wall_nanos: 2_000_000,
            sim_nanos: 400_000_000,
            queue_peak: 7,
            by_type: vec![
                EventTypeProfile {
                    name: "tx_end".to_string(),
                    count: 600,
                    nanos: 1_500_000,
                },
                EventTypeProfile {
                    name: "flow_timer".to_string(),
                    count: 400,
                    nanos: 500_000,
                },
            ],
            ledger_checks: 1_200,
            ledger_check_nanos: 90_000,
            medium_counters: MediumCounters {
                cache_recomputes: 30,
                cache_lookups: 4_400,
                cull_candidates: 5_000,
                cull_relevant: 4_400,
                moves_applied: 12,
                moves_coalesced: 3,
            },
        }
    }

    #[test]
    fn events_per_sec_is_events_over_wall_time() {
        let p = sample();
        assert!((p.events_per_sec() - 500_000.0).abs() < 1e-6);
        let idle = RunProfile {
            wall_nanos: 0,
            ..sample()
        };
        assert_eq!(idle.events_per_sec(), 0.0);
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = sample();
        let text = p.to_json().to_string_compact();
        let back = RunProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn profiles_without_medium_counters_still_parse() {
        let mut p = sample();
        p.medium_counters = MediumCounters::default();
        let text = p.to_json().to_string_compact();
        // A profile written before the culling layer existed has no
        // medium_counters object; it must parse with zeroed counters.
        let idx = text.find(",\"medium_counters\"").expect("field present");
        let legacy = format!("{}}}", &text[..idx]);
        let back = RunProfile::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn zero_wall_time_round_trips_without_dividing() {
        // A degenerate (instantaneous) run: events_per_sec must guard
        // the division, and the serialized 0 must survive the trip.
        let p = RunProfile {
            wall_nanos: 0,
            ..sample()
        };
        let text = p.to_json().to_string_compact();
        let back = RunProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.events_per_sec(), 0.0);
    }

    #[test]
    fn empty_by_type_round_trips() {
        let p = RunProfile {
            events: 0,
            by_type: Vec::new(),
            ..sample()
        };
        let text = p.to_json().to_string_compact();
        let back = RunProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        assert!(back.by_type.is_empty());
    }

    #[test]
    fn profiles_without_move_counters_parse_with_zeros() {
        // A medium_counters object from before the mobility rework has
        // no move counters: they default to zero, everything else holds.
        let legacy = r#"{"schema_version":2,"events":10,"wall_nanos":5,"sim_nanos":9,
            "queue_peak":1,"by_type":[],
            "ledger_checks":0,"ledger_check_nanos":0,
            "medium_counters":{"cache_recomputes":2,"cache_lookups":8,
            "cull_candidates":9,"cull_relevant":8}}"#;
        let back = RunProfile::from_json(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(back.medium_counters.cache_recomputes, 2);
        assert_eq!(back.medium_counters.cache_lookups, 8);
        assert_eq!(back.medium_counters.moves_applied, 0);
        assert_eq!(back.medium_counters.moves_coalesced, 0);
    }

    #[test]
    fn unstamped_or_mismatched_profiles_are_rejected_with_a_reason() {
        // An artifact from before the schema stamp existed: rejected,
        // and the error says what to do about it.
        let unstamped = r#"{"events":10,"wall_nanos":5,"sim_nanos":9,
            "queue_peak":1,"by_type":[],
            "ledger_checks":0,"ledger_check_nanos":0}"#;
        let err = RunProfile::from_json(&Json::parse(unstamped).unwrap()).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "{err}");
        assert!(err.to_string().contains("bench profile"), "{err}");

        let future = r#"{"schema_version":99,"events":10,"wall_nanos":5,"sim_nanos":9,
            "queue_peak":1,"by_type":[],
            "ledger_checks":0,"ledger_check_nanos":0}"#;
        let err = RunProfile::from_json(&Json::parse(future).unwrap()).unwrap_err();
        assert!(err.to_string().contains("99"), "{err}");
        assert!(err.to_string().contains("regenerate"), "{err}");
    }

    #[test]
    fn summary_mentions_throughput_and_types() {
        let s = sample().summary();
        assert!(s.contains("events/s"));
        assert!(s.contains("tx_end"));
        assert!(s.contains("ledger checks"));
    }
}
