//! The unified instrumentation layer: typed simulation events and the
//! observer (sink) contract.
//!
//! The medium, the MAC and the CO-MAP protocol logic emit [`SimEvent`]s
//! describing everything the paper *watches*: transmissions on the air,
//! capture and collision outcomes, carrier-sense transitions, queue and
//! backoff dynamics, and every CO-MAP decision. Events flow to whatever
//! [`Observer`]s are attached to the [`crate::Simulator`]; with none
//! attached, no event is ever constructed — every emission site is gated
//! on a single bool, so an unobserved run pays one predictable branch.
//!
//! Sinks are strictly one-way: they see events and may fold summaries
//! into the final [`SimReport`](crate::stats::SimReport), but nothing
//! they do feeds back into the simulation, and no emission touches an
//! RNG stream. A run with every sink attached is therefore bit-identical
//! to the same seed with none (enforced by `tests/observability.rs`).
//!
//! Three sinks ship with the crate: [`JsonlSink`] (one JSON object per
//! event, for offline analysis), [`TimelineSink`] (human-readable
//! timeline, replacing the old ad-hoc `TraceLog`), and
//! [`MetricsSink`](crate::metrics::MetricsSink) (per-node time series
//! and histograms surfaced through the report).

use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use comap_mac::frames::FrameKind;
use comap_mac::time::SimTime;
use comap_radio::rates::Rate;

use crate::frame::NodeId;
use crate::json::Json;
use crate::stats::SimReport;

/// One typed, timestamped instrumentation event.
///
/// Timestamps are not part of the event — the simulator passes the
/// current [`SimTime`] alongside each event to [`Observer::on_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    // --- Medium (physical layer) -------------------------------------
    /// A frame went on the air.
    TxBegin {
        /// Transmitting node.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
        /// Frame kind on the air.
        kind: FrameKind,
        /// Modulation rate.
        rate: Rate,
    },
    /// A frame left the air (receptions resolve at this instant).
    TxEnd {
        /// The node whose transmission ended.
        src: NodeId,
        /// Frame kind that was on the air.
        kind: FrameKind,
    },
    /// A receiver's lock was stolen by a stronger late frame.
    Capture {
        /// The capturing receiver.
        node: NodeId,
        /// Source of the frame that stole the lock.
        src: NodeId,
    },
    /// A frame was held to the end of its lock but killed by the accrued
    /// bit-error hazard (collision / interference loss).
    HazardDrop {
        /// The receiver that lost the frame.
        node: NodeId,
        /// Source of the lost frame.
        src: NodeId,
    },
    /// A frame was decoded successfully at a receiver.
    RxResolved {
        /// The successful receiver.
        node: NodeId,
        /// Source of the decoded frame.
        src: NodeId,
        /// Received signal strength, in dBm.
        rssi_dbm: f64,
        /// SINR over the final exposure span, in dB.
        sinr_db: f64,
    },
    /// A node's sensed power crossed the CCA threshold upward.
    CsBusy {
        /// The node whose channel went busy.
        node: NodeId,
    },
    /// A node's sensed power crossed the CCA threshold downward.
    CsIdle {
        /// The node whose channel went idle.
        node: NodeId,
    },

    // --- MAC ----------------------------------------------------------
    /// A frame entered the transmit queue (the ARQ window under
    /// selective repeat, the single service slot otherwise).
    Enqueue {
        /// The queueing node.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// Queue depth after the operation.
        depth: u32,
    },
    /// A frame left the transmit queue (acknowledged or abandoned).
    Dequeue {
        /// The dequeueing node.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// Queue depth after the operation.
        depth: u32,
    },
    /// A fresh backoff was drawn.
    BackoffDraw {
        /// The drawing node.
        node: NodeId,
        /// Escalation stage (0 = initial window).
        stage: u32,
        /// Slots drawn.
        slots: u32,
    },
    /// A counting-down node froze its backoff because the channel went
    /// busy.
    Defer {
        /// The deferring node.
        node: NodeId,
    },
    /// A node resumed counting down its (frozen) backoff.
    Resume {
        /// The resuming node.
        node: NodeId,
    },
    /// An ACK timeout expired.
    AckTimeout {
        /// The waiting sender.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
    },
    /// A frame is being retransmitted.
    Retry {
        /// The retransmitting node.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// Attempt number (1 = first retransmission).
        attempt: u32,
    },
    /// A frame was abandoned after the retry limit.
    Drop {
        /// The dropping node.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
    },
    /// Unique payload bytes were delivered.
    Delivered {
        /// The receiving node.
        node: NodeId,
        /// The originating node.
        from: NodeId,
        /// Payload bytes of the frame.
        bytes: u32,
    },

    // --- Frame lifecycle (latency spans) ------------------------------
    /// A specific frame (identified by sequence number) was admitted to
    /// the sender's transmit queue — the start of its end-to-end span.
    FrameQueued {
        /// The queueing sender.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// ARQ sequence number of the frame.
        seq: u64,
    },
    /// A transmission attempt for a specific frame started (the DATA
    /// frame went on the air; `attempt` 0 is the first try).
    FrameTx {
        /// The transmitting sender.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// ARQ sequence number of the frame.
        seq: u64,
        /// Attempt number (0 = first transmission).
        attempt: u32,
    },
    /// A specific frame was acknowledged — the successful end of its
    /// end-to-end span.
    FrameAcked {
        /// The sender whose frame was acknowledged.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// ARQ sequence number of the frame.
        seq: u64,
    },
    /// A specific frame was abandoned at the retry limit — the failed
    /// end of its end-to-end span.
    FrameDropped {
        /// The sender that gave up.
        node: NodeId,
        /// Flow destination.
        dst: NodeId,
        /// ARQ sequence number of the frame.
        seq: u64,
    },

    // --- CO-MAP -------------------------------------------------------
    /// A discovery header (or in-band announcement) was decoded.
    HeaderHeard {
        /// The overhearing node.
        node: NodeId,
        /// Sender of the announced link.
        src: NodeId,
        /// Receiver of the announced link.
        dst: NodeId,
    },
    /// A node entered the exposed-terminal opportunity window against
    /// the announced link.
    EtOpportunity {
        /// The exposed terminal.
        node: NodeId,
        /// Sender of the ongoing link.
        src: NodeId,
        /// Receiver of the ongoing link.
        dst: NodeId,
    },
    /// A node abandoned its opportunity (RSSI watchdog).
    EtAbandon {
        /// The abandoning node.
        node: NodeId,
    },
    /// A concurrent (exposed-terminal) transmission started alongside
    /// the ongoing link.
    ConcurrentTx {
        /// The concurrently transmitting node.
        node: NodeId,
        /// Sender of the ongoing link.
        src: NodeId,
        /// Receiver of the ongoing link.
        dst: NodeId,
    },
    /// The hidden-terminal census installed an adapted transmit setting.
    Adapt {
        /// The adapting node.
        node: NodeId,
        /// Flow destination the setting applies to.
        dst: NodeId,
        /// Installed (constant) contention window.
        cw: u32,
        /// Installed payload size in bytes.
        payload_bytes: u32,
    },
}

/// Short on-air label of a frame kind ("HDR", "DATA", ...).
pub fn kind_label(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::DiscoveryHeader => "HDR",
        FrameKind::Data => "DATA",
        FrameKind::Ack => "ACK",
        FrameKind::Rts => "RTS",
        FrameKind::Cts => "CTS",
    }
}

fn kind_from_label(label: &str) -> Option<FrameKind> {
    Some(match label {
        "HDR" => FrameKind::DiscoveryHeader,
        "DATA" => FrameKind::Data,
        "ACK" => FrameKind::Ack,
        "RTS" => FrameKind::Rts,
        "CTS" => FrameKind::Cts,
        _ => return None,
    })
}

/// Compact label of a modulation rate ("5.5", "11", ...).
pub fn rate_label(rate: Rate) -> &'static str {
    match rate {
        Rate::Mbps1 => "1",
        Rate::Mbps2 => "2",
        Rate::Mbps5_5 => "5.5",
        Rate::Mbps11 => "11",
        Rate::Mbps6 => "6",
        Rate::Mbps9 => "9",
        Rate::Mbps12 => "12",
        Rate::Mbps18 => "18",
        Rate::Mbps24 => "24",
        Rate::Mbps36 => "36",
        Rate::Mbps48 => "48",
        Rate::Mbps54 => "54",
    }
}

fn rate_from_label(label: &str) -> Option<Rate> {
    Some(match label {
        "1" => Rate::Mbps1,
        "2" => Rate::Mbps2,
        "5.5" => Rate::Mbps5_5,
        "11" => Rate::Mbps11,
        "6" => Rate::Mbps6,
        "9" => Rate::Mbps9,
        "12" => Rate::Mbps12,
        "18" => Rate::Mbps18,
        "24" => Rate::Mbps24,
        "36" => Rate::Mbps36,
        "48" => Rate::Mbps48,
        "54" => Rate::Mbps54,
        _ => return None,
    })
}

impl SimEvent {
    /// Stable snake_case name of the variant — the JSONL `type` field.
    pub fn type_name(&self) -> &'static str {
        match self {
            SimEvent::TxBegin { .. } => "tx_begin",
            SimEvent::TxEnd { .. } => "tx_end",
            SimEvent::Capture { .. } => "capture",
            SimEvent::HazardDrop { .. } => "hazard_drop",
            SimEvent::RxResolved { .. } => "rx_resolved",
            SimEvent::CsBusy { .. } => "cs_busy",
            SimEvent::CsIdle { .. } => "cs_idle",
            SimEvent::Enqueue { .. } => "enqueue",
            SimEvent::Dequeue { .. } => "dequeue",
            SimEvent::BackoffDraw { .. } => "backoff_draw",
            SimEvent::Defer { .. } => "defer",
            SimEvent::Resume { .. } => "resume",
            SimEvent::AckTimeout { .. } => "ack_timeout",
            SimEvent::Retry { .. } => "retry",
            SimEvent::Drop { .. } => "drop",
            SimEvent::Delivered { .. } => "delivered",
            SimEvent::FrameQueued { .. } => "frame_queued",
            SimEvent::FrameTx { .. } => "frame_tx",
            SimEvent::FrameAcked { .. } => "frame_acked",
            SimEvent::FrameDropped { .. } => "frame_dropped",
            SimEvent::HeaderHeard { .. } => "header_heard",
            SimEvent::EtOpportunity { .. } => "et_opportunity",
            SimEvent::EtAbandon { .. } => "et_abandon",
            SimEvent::ConcurrentTx { .. } => "concurrent_tx",
            SimEvent::Adapt { .. } => "adapt",
        }
    }

    /// Serializes the event as a JSON object (`type` plus fields).
    pub fn to_json(&self) -> Json {
        let node = |n: NodeId| Json::Uint(n.0 as u64);
        let mut fields: Vec<(&str, Json)> = vec![("type", Json::str(self.type_name()))];
        match *self {
            SimEvent::TxBegin {
                src,
                dst,
                kind,
                rate,
            } => {
                fields.push(("src", node(src)));
                fields.push(("dst", node(dst)));
                fields.push(("kind", Json::str(kind_label(kind))));
                fields.push(("rate", Json::str(rate_label(rate))));
            }
            SimEvent::TxEnd { src, kind } => {
                fields.push(("src", node(src)));
                fields.push(("kind", Json::str(kind_label(kind))));
            }
            SimEvent::Capture { node: n, src } | SimEvent::HazardDrop { node: n, src } => {
                fields.push(("node", node(n)));
                fields.push(("src", node(src)));
            }
            SimEvent::RxResolved {
                node: n,
                src,
                rssi_dbm,
                sinr_db,
            } => {
                fields.push(("node", node(n)));
                fields.push(("src", node(src)));
                fields.push(("rssi_dbm", Json::Num(rssi_dbm)));
                fields.push(("sinr_db", Json::Num(sinr_db)));
            }
            SimEvent::CsBusy { node: n }
            | SimEvent::CsIdle { node: n }
            | SimEvent::Defer { node: n }
            | SimEvent::Resume { node: n }
            | SimEvent::EtAbandon { node: n } => {
                fields.push(("node", node(n)));
            }
            SimEvent::Enqueue {
                node: n,
                dst,
                depth,
            }
            | SimEvent::Dequeue {
                node: n,
                dst,
                depth,
            } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
                fields.push(("depth", Json::Uint(u64::from(depth))));
            }
            SimEvent::BackoffDraw {
                node: n,
                stage,
                slots,
            } => {
                fields.push(("node", node(n)));
                fields.push(("stage", Json::Uint(u64::from(stage))));
                fields.push(("slots", Json::Uint(u64::from(slots))));
            }
            SimEvent::AckTimeout { node: n, dst } | SimEvent::Drop { node: n, dst } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
            }
            SimEvent::Retry {
                node: n,
                dst,
                attempt,
            } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
                fields.push(("attempt", Json::Uint(u64::from(attempt))));
            }
            SimEvent::Delivered {
                node: n,
                from,
                bytes,
            } => {
                fields.push(("node", node(n)));
                fields.push(("from", node(from)));
                fields.push(("bytes", Json::Uint(u64::from(bytes))));
            }
            SimEvent::FrameQueued { node: n, dst, seq }
            | SimEvent::FrameAcked { node: n, dst, seq }
            | SimEvent::FrameDropped { node: n, dst, seq } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
                fields.push(("seq", Json::Uint(seq)));
            }
            SimEvent::FrameTx {
                node: n,
                dst,
                seq,
                attempt,
            } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
                fields.push(("seq", Json::Uint(seq)));
                fields.push(("attempt", Json::Uint(u64::from(attempt))));
            }
            SimEvent::HeaderHeard { node: n, src, dst }
            | SimEvent::EtOpportunity { node: n, src, dst }
            | SimEvent::ConcurrentTx { node: n, src, dst } => {
                fields.push(("node", node(n)));
                fields.push(("src", node(src)));
                fields.push(("dst", node(dst)));
            }
            SimEvent::Adapt {
                node: n,
                dst,
                cw,
                payload_bytes,
            } => {
                fields.push(("node", node(n)));
                fields.push(("dst", node(dst)));
                fields.push(("cw", Json::Uint(u64::from(cw))));
                fields.push(("payload_bytes", Json::Uint(u64::from(payload_bytes))));
            }
        }
        Json::obj(fields)
    }

    /// Parses an event from its [`SimEvent::to_json`] object form.
    ///
    /// Returns `None` when the `type` is unknown or a field is missing —
    /// the schema guard the round-trip test leans on.
    pub fn from_json(value: &Json) -> Option<SimEvent> {
        let node =
            |key: &str| -> Option<NodeId> { value.get(key)?.as_u64().map(|u| NodeId(u as usize)) };
        let uint = |key: &str| -> Option<u32> {
            value.get(key)?.as_u64().and_then(|u| u32::try_from(u).ok())
        };
        let num = |key: &str| -> Option<f64> { value.get(key)?.as_f64() };
        Some(match value.get("type")?.as_str()? {
            "tx_begin" => SimEvent::TxBegin {
                src: node("src")?,
                dst: node("dst")?,
                kind: kind_from_label(value.get("kind")?.as_str()?)?,
                rate: rate_from_label(value.get("rate")?.as_str()?)?,
            },
            "tx_end" => SimEvent::TxEnd {
                src: node("src")?,
                kind: kind_from_label(value.get("kind")?.as_str()?)?,
            },
            "capture" => SimEvent::Capture {
                node: node("node")?,
                src: node("src")?,
            },
            "hazard_drop" => SimEvent::HazardDrop {
                node: node("node")?,
                src: node("src")?,
            },
            "rx_resolved" => SimEvent::RxResolved {
                node: node("node")?,
                src: node("src")?,
                rssi_dbm: num("rssi_dbm")?,
                sinr_db: num("sinr_db")?,
            },
            "cs_busy" => SimEvent::CsBusy {
                node: node("node")?,
            },
            "cs_idle" => SimEvent::CsIdle {
                node: node("node")?,
            },
            "enqueue" => SimEvent::Enqueue {
                node: node("node")?,
                dst: node("dst")?,
                depth: uint("depth")?,
            },
            "dequeue" => SimEvent::Dequeue {
                node: node("node")?,
                dst: node("dst")?,
                depth: uint("depth")?,
            },
            "backoff_draw" => SimEvent::BackoffDraw {
                node: node("node")?,
                stage: uint("stage")?,
                slots: uint("slots")?,
            },
            "defer" => SimEvent::Defer {
                node: node("node")?,
            },
            "resume" => SimEvent::Resume {
                node: node("node")?,
            },
            "ack_timeout" => SimEvent::AckTimeout {
                node: node("node")?,
                dst: node("dst")?,
            },
            "retry" => SimEvent::Retry {
                node: node("node")?,
                dst: node("dst")?,
                attempt: uint("attempt")?,
            },
            "drop" => SimEvent::Drop {
                node: node("node")?,
                dst: node("dst")?,
            },
            "delivered" => SimEvent::Delivered {
                node: node("node")?,
                from: node("from")?,
                bytes: uint("bytes")?,
            },
            "frame_queued" => SimEvent::FrameQueued {
                node: node("node")?,
                dst: node("dst")?,
                seq: value.get("seq")?.as_u64()?,
            },
            "frame_tx" => SimEvent::FrameTx {
                node: node("node")?,
                dst: node("dst")?,
                seq: value.get("seq")?.as_u64()?,
                attempt: uint("attempt")?,
            },
            "frame_acked" => SimEvent::FrameAcked {
                node: node("node")?,
                dst: node("dst")?,
                seq: value.get("seq")?.as_u64()?,
            },
            "frame_dropped" => SimEvent::FrameDropped {
                node: node("node")?,
                dst: node("dst")?,
                seq: value.get("seq")?.as_u64()?,
            },
            "header_heard" => SimEvent::HeaderHeard {
                node: node("node")?,
                src: node("src")?,
                dst: node("dst")?,
            },
            "et_opportunity" => SimEvent::EtOpportunity {
                node: node("node")?,
                src: node("src")?,
                dst: node("dst")?,
            },
            "et_abandon" => SimEvent::EtAbandon {
                node: node("node")?,
            },
            "concurrent_tx" => SimEvent::ConcurrentTx {
                node: node("node")?,
                src: node("src")?,
                dst: node("dst")?,
            },
            "adapt" => SimEvent::Adapt {
                node: node("node")?,
                dst: node("dst")?,
                cw: uint("cw")?,
                payload_bytes: uint("payload_bytes")?,
            },
            _ => return None,
        })
    }
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimEvent::TxBegin {
                src,
                dst,
                kind,
                rate,
            } => write!(
                f,
                "{src} ── {} ──▶ {dst} @ {} Mbps",
                kind_label(kind),
                rate_label(rate)
            ),
            SimEvent::TxEnd { src, kind } => write!(f, "{src} {} tx end", kind_label(kind)),
            SimEvent::Capture { node, src } => {
                write!(f, "{node} captures onto {src}'s stronger frame")
            }
            SimEvent::HazardDrop { node, src } => {
                write!(f, "{node} loses {src}'s frame to interference")
            }
            SimEvent::RxResolved {
                node,
                src,
                rssi_dbm,
                sinr_db,
            } => write!(
                f,
                "{node} decodes {src}'s frame ({rssi_dbm:.1} dBm, SINR {sinr_db:.1} dB)"
            ),
            SimEvent::CsBusy { node } => write!(f, "{node} channel busy"),
            SimEvent::CsIdle { node } => write!(f, "{node} channel idle"),
            SimEvent::Enqueue { node, dst, depth } => {
                write!(f, "{node} enqueues toward {dst} (depth {depth})")
            }
            SimEvent::Dequeue { node, dst, depth } => {
                write!(f, "{node} dequeues toward {dst} (depth {depth})")
            }
            SimEvent::BackoffDraw { node, stage, slots } => {
                write!(f, "{node} draws backoff of {slots} slots (stage {stage})")
            }
            SimEvent::Defer { node } => write!(f, "{node} defers (channel busy)"),
            SimEvent::Resume { node } => write!(f, "{node} resumes backoff"),
            SimEvent::AckTimeout { node, dst } => write!(f, "{node} ACK timeout toward {dst}"),
            SimEvent::Retry { node, dst, attempt } => {
                write!(f, "{node} retry #{attempt} toward {dst}")
            }
            SimEvent::Drop { node, dst } => {
                write!(f, "{node} drops frame toward {dst} (retry limit)")
            }
            SimEvent::Delivered { node, from, bytes } => {
                write!(f, "{node} delivered {bytes} B from {from}")
            }
            SimEvent::FrameQueued { node, dst, seq } => {
                write!(f, "{node} queues frame #{seq} toward {dst}")
            }
            SimEvent::FrameTx {
                node,
                dst,
                seq,
                attempt,
            } => write!(
                f,
                "{node} sends frame #{seq} toward {dst} (attempt {attempt})"
            ),
            SimEvent::FrameAcked { node, dst, seq } => {
                write!(f, "{node} frame #{seq} toward {dst} ACKed")
            }
            SimEvent::FrameDropped { node, dst, seq } => {
                write!(f, "{node} frame #{seq} toward {dst} dropped (retry limit)")
            }
            SimEvent::HeaderHeard { node, src, dst } => {
                write!(f, "{node} hears header announcing {src} → {dst}")
            }
            SimEvent::EtOpportunity { node, src, dst } => write!(
                f,
                "{node} ENTERS exposed-terminal opportunity beside {src} → {dst}"
            ),
            SimEvent::EtAbandon { node } => {
                write!(f, "{node} abandons opportunity (RSSI watchdog)")
            }
            SimEvent::ConcurrentTx { node, src, dst } => {
                write!(f, "{node} transmits concurrently beside {src} → {dst}")
            }
            SimEvent::Adapt {
                node,
                dst,
                cw,
                payload_bytes,
            } => write!(
                f,
                "{node} adapts toward {dst}: CW {cw}, payload {payload_bytes} B"
            ),
        }
    }
}

/// A sink for instrumentation events.
///
/// The contract: `on_event` is called for every event in simulation
/// order; `finish` is called once, after the run, with the final report
/// (a sink may fold aggregates into it — e.g. the metrics section). A
/// sink must never influence the simulation; it has no channel back.
pub trait Observer {
    /// Receives one event at simulation time `now`.
    fn on_event(&mut self, now: SimTime, event: &SimEvent);

    /// Called once after the run; sinks may install summaries into the
    /// report. The default does nothing.
    fn finish(&mut self, report: &mut SimReport) {
        let _ = report;
    }
}

/// A sink that discards everything — measures the pure event-dispatch
/// overhead in benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl Observer for NoopSink {
    fn on_event(&mut self, _now: SimTime, _event: &SimEvent) {}
}

/// Writes one JSON object per event (JSON Lines) to any writer.
///
/// Schema per line: `{"t_ns": <u64>, "type": "<variant>", ...fields}`.
/// I/O errors are recorded, writing stops, and the simulation continues
/// — observability must never abort a run.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl JsonlSink<io::BufWriter<File>> {
    /// Creates a sink writing to a buffered file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the error of [`File::create`].
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(io::BufWriter::new(File::create(path)?)))
    }
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            written: 0,
            error: None,
        }
    }

    /// Number of lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl<W: io::Write> Observer for JsonlSink<W> {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let mut fields = vec![("t_ns".to_string(), Json::Uint(now.as_nanos()))];
        if let Json::Obj(event_fields) = event.to_json() {
            fields.extend(event_fields);
        }
        let line = Json::Obj(fields).to_string_compact();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        } else {
            self.written += 1;
        }
    }

    fn finish(&mut self, _report: &mut SimReport) {
        let _ = self.out.flush();
    }
}

/// Parses one JSONL line back into `(time, event)` — the inverse of
/// [`JsonlSink`]'s writer, used by round-trip tests and offline tools.
pub fn parse_jsonl_line(line: &str) -> Option<(SimTime, SimEvent)> {
    let value = Json::parse(line).ok()?;
    let t = SimTime::from_nanos(value.get("t_ns")?.as_u64()?);
    Some((t, SimEvent::from_json(&value)?))
}

// `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`: the sink must stay
// `Send` so the sharded engine (ROADMAP item 1) can hand observers to
// worker shards — the shard-safety lint forbids the single-thread pair.
type SharedEvents = Arc<Mutex<Vec<(SimTime, SimEvent)>>>;

/// Locks a shared-event buffer, recovering the data from a poisoned
/// mutex (a panicking observer must not wedge the read side).
fn lock_events(events: &SharedEvents) -> MutexGuard<'_, Vec<(SimTime, SimEvent)>> {
    events
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records events in memory for human-readable timelines.
///
/// Because [`crate::Simulator::run`] consumes the simulator (and the
/// boxed sinks with it), construction returns a [`TimelineHandle`]
/// sharing the same buffer, through which the recording is read after
/// the run.
#[derive(Debug)]
pub struct TimelineSink {
    events: SharedEvents,
}

impl TimelineSink {
    /// Creates a sink and the handle that outlives it.
    pub fn new() -> (TimelineSink, TimelineHandle) {
        let events: SharedEvents = Arc::new(Mutex::new(Vec::new()));
        (
            TimelineSink {
                events: Arc::clone(&events),
            },
            TimelineHandle { events },
        )
    }
}

impl Observer for TimelineSink {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        lock_events(&self.events).push((now, *event));
    }
}

/// Read side of a [`TimelineSink`].
#[derive(Debug, Clone)]
pub struct TimelineHandle {
    events: SharedEvents,
}

impl TimelineHandle {
    /// All recorded events in simulation order.
    pub fn events(&self) -> Vec<(SimTime, SimEvent)> {
        lock_events(&self.events).clone()
    }

    /// Renders the timeline, one `"<ms>  <event>"` line per event using
    /// each variant's [`Display`](fmt::Display) form.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, e) in lock_events(&self.events).iter() {
            let _ = writeln!(out, "{:>10.3} ms  {e}", t.as_secs_f64() * 1e3);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<SimEvent> {
        vec![
            SimEvent::TxBegin {
                src: NodeId(0),
                dst: NodeId(1),
                kind: FrameKind::Data,
                rate: Rate::Mbps5_5,
            },
            SimEvent::TxEnd {
                src: NodeId(0),
                kind: FrameKind::Ack,
            },
            SimEvent::Capture {
                node: NodeId(1),
                src: NodeId(2),
            },
            SimEvent::HazardDrop {
                node: NodeId(1),
                src: NodeId(2),
            },
            SimEvent::RxResolved {
                node: NodeId(1),
                src: NodeId(0),
                rssi_dbm: -63.25,
                sinr_db: 31.5,
            },
            SimEvent::CsBusy { node: NodeId(3) },
            SimEvent::CsIdle { node: NodeId(3) },
            SimEvent::Enqueue {
                node: NodeId(0),
                dst: NodeId(1),
                depth: 4,
            },
            SimEvent::Dequeue {
                node: NodeId(0),
                dst: NodeId(1),
                depth: 3,
            },
            SimEvent::BackoffDraw {
                node: NodeId(0),
                stage: 2,
                slots: 17,
            },
            SimEvent::Defer { node: NodeId(0) },
            SimEvent::Resume { node: NodeId(0) },
            SimEvent::AckTimeout {
                node: NodeId(0),
                dst: NodeId(1),
            },
            SimEvent::Retry {
                node: NodeId(0),
                dst: NodeId(1),
                attempt: 3,
            },
            SimEvent::Drop {
                node: NodeId(0),
                dst: NodeId(1),
            },
            SimEvent::Delivered {
                node: NodeId(1),
                from: NodeId(0),
                bytes: 1000,
            },
            SimEvent::FrameQueued {
                node: NodeId(0),
                dst: NodeId(1),
                seq: 42,
            },
            SimEvent::FrameTx {
                node: NodeId(0),
                dst: NodeId(1),
                seq: 42,
                attempt: 2,
            },
            SimEvent::FrameAcked {
                node: NodeId(0),
                dst: NodeId(1),
                seq: 42,
            },
            SimEvent::FrameDropped {
                node: NodeId(0),
                dst: NodeId(1),
                seq: 43,
            },
            SimEvent::HeaderHeard {
                node: NodeId(3),
                src: NodeId(0),
                dst: NodeId(1),
            },
            SimEvent::EtOpportunity {
                node: NodeId(3),
                src: NodeId(0),
                dst: NodeId(1),
            },
            SimEvent::EtAbandon { node: NodeId(3) },
            SimEvent::ConcurrentTx {
                node: NodeId(3),
                src: NodeId(0),
                dst: NodeId(1),
            },
            SimEvent::Adapt {
                node: NodeId(0),
                dst: NodeId(1),
                cw: 255,
                payload_bytes: 700,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for e in samples() {
            let back = SimEvent::from_json(&e.to_json());
            assert_eq!(back, Some(e), "round trip of {}", e.type_name());
        }
    }

    #[test]
    fn every_variant_has_a_readable_display() {
        for e in samples() {
            let s = e.to_string();
            assert!(!s.contains('{'), "no debug formatting leaks: {s}");
            assert!(s.starts_with('n'), "starts with a node name: {s}");
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for (i, e) in samples().into_iter().enumerate() {
            sink.on_event(SimTime::from_nanos(i as u64 * 10), &e);
        }
        assert_eq!(sink.written(), 25);
        assert!(sink.error().is_none());
        let text = String::from_utf8(sink.out.clone()).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| parse_jsonl_line(l).expect("line parses"))
            .collect();
        assert_eq!(parsed.len(), 25);
        assert_eq!(parsed[0].0, SimTime::ZERO);
        assert_eq!(parsed[5].0, SimTime::from_nanos(50));
        assert_eq!(parsed, {
            let evs = samples();
            evs.into_iter()
                .enumerate()
                .map(|(i, e)| (SimTime::from_nanos(i as u64 * 10), e))
                .collect::<Vec<_>>()
        });
    }

    #[test]
    fn timeline_handle_outlives_the_sink() {
        let (mut sink, handle) = TimelineSink::new();
        sink.on_event(
            SimTime::from_nanos(1_500_000),
            &SimEvent::Defer { node: NodeId(2) },
        );
        drop(sink);
        let events = handle.events();
        assert_eq!(events.len(), 1);
        assert!(handle.render().contains("n2 defers"));
        assert!(handle.render().contains("1.500 ms"));
    }

    #[test]
    fn unknown_type_is_rejected() {
        let v = Json::parse("{\"type\":\"warp_drive\",\"node\":0}").unwrap();
        assert_eq!(SimEvent::from_json(&v), None);
        let truncated = Json::parse("{\"type\":\"defer\"}").unwrap();
        assert_eq!(SimEvent::from_json(&truncated), None);
    }
}
