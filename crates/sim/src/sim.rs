//! The simulation engine: event loop, wiring and reporting.

use std::collections::VecDeque;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use comap_core::protocol::Protocol;
use comap_mac::time::{SimDuration, SimTime};
use comap_radio::stream::CounterRng;
use comap_radio::Position;

use crate::config::SimConfig;
use crate::event::{Event, EventQueue};
use crate::frame::NodeId;
use crate::mac::{Mac, MacAction, MacConfig, MacCtx, MacEvent, StatEvent};
use crate::medium::{Medium, PhyNote};
use crate::observe::{Observer, SimEvent};
use crate::profile::{Profiler, RunProfile};
use crate::stats::SimReport;

/// A configured, runnable simulation.
pub struct Simulator {
    cfg: SimConfig,
    medium: Medium,
    queue: EventQueue,
    now: SimTime,
    macs: Vec<Mac>,
    flow_gen: Vec<u64>,
    resp_gen: Vec<u64>,
    report: SimReport,
    /// Attached observers; events fan out to each in order.
    sinks: Vec<Box<dyn Observer>>,
    /// `true` once any sink is attached — the single gate every
    /// emission site checks.
    observing: bool,
    /// Seed of the counter-keyed localization-noise streams.
    move_seed: u64,
    /// Per-node move-epoch counters: the counter half of the
    /// localization-noise key, bumped once per applied move.
    move_epoch: Vec<u64>,
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("events", &self.report.events)
            .field("sinks", &self.sinks.len())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds the simulation: medium, protocols (fed with *reported*
    /// positions — true positions plus the configured error), MACs and
    /// the initial traffic kicks.
    pub fn new(cfg: SimConfig) -> Self {
        let n = cfg.nodes.len();
        assert!(n > 0, "a simulation needs at least one node");
        let true_positions: Vec<Position> = cfg.nodes.iter().map(|s| s.position).collect();

        // Independent, seed-derived RNG streams.
        let medium_rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut error_rng = StdRng::seed_from_u64(cfg.seed ^ 0x6A09_E667_F3BC_C909);

        let reported: Vec<Position> = true_positions
            .iter()
            .map(|p| p.with_error(cfg.position_error, &mut error_rng))
            .collect();

        let mut medium = Medium::with_quantization(
            cfg.protocol.channel,
            true_positions.clone(),
            cfg.capture,
            medium_rng,
            cfg.backend,
            cfg.position_quantum,
        );
        medium.set_inband_announce(cfg.inband_header);

        let mut macs = Vec::with_capacity(n);
        for i in 0..n {
            let id = NodeId(i);
            let features = cfg.features_of(id);
            let proto = if features.any() {
                let mut p = Protocol::new(id, cfg.protocol);
                p.set_own_position(reported[i]);
                for (j, &pos) in reported.iter().enumerate() {
                    if j != i {
                        p.on_position_report(NodeId(j), pos);
                    }
                }
                Some(p)
            } else {
                None
            };
            let mac_cfg = MacConfig {
                id,
                features,
                phy: cfg.protocol.phy,
                rate_ctl: cfg.rate_controller,
                channel: cfg.protocol.channel,
                true_positions: true_positions.clone(),
                t_cs: cfg.protocol.t_cs,
                backoff: cfg.backoff,
                payload_bytes: cfg.nodes[i].payload.unwrap_or(cfg.payload_bytes),
                retry_limit: cfg.retry_limit,
                arq_window: cfg.protocol.arq_window,
                preamble_cs: cfg.preamble_cs,
            };
            // Every MAC shares one backoff seed: per-node streams are
            // separated by the identity half of the key (the node id),
            // not by per-node seed arithmetic.
            let mut mac = Mac::new(mac_cfg, proto, cfg.seed ^ 0x243F_6A88_85A3_08D3);
            for flow in cfg.flows_from(id) {
                mac.add_flow(flow.dst, flow.traffic);
            }
            macs.push(mac);
        }

        let mut queue = EventQueue::new();
        for i in 0..n {
            queue.schedule(SimTime::ZERO, Event::TrafficWakeup { node: NodeId(i) });
            for (step, mv) in cfg.nodes[i].moves.iter().enumerate() {
                queue.schedule(
                    SimTime::ZERO + mv.at,
                    Event::Mobility {
                        node: NodeId(i),
                        step,
                    },
                );
            }
        }

        let move_seed = cfg.seed ^ 0xBB67_AE85_84CA_A73B;
        Simulator {
            cfg,
            medium,
            queue,
            now: SimTime::ZERO,
            macs,
            flow_gen: vec![0; n],
            resp_gen: vec![0; n],
            report: SimReport::default(),
            sinks: Vec::new(),
            observing: false,
            move_seed,
            move_epoch: vec![0; n],
        }
    }

    /// Attaches an observer. Events start flowing to it from the next
    /// `run`; attaching any sink enables event emission in the medium
    /// and every MAC, but never changes simulation results (sinks have
    /// no channel back, and no emission touches an RNG stream).
    pub fn attach_sink(&mut self, sink: Box<dyn Observer>) {
        self.observing = true;
        self.medium.enable_observation(self.cfg.protocol.t_cs);
        self.sinks.push(sink);
    }

    /// Pre-warms every node's outgoing link-cache row before the run
    /// (see [`Medium::warm_links`]). Purely an evaluation-order change:
    /// cache fills are deterministic functions of the position epochs,
    /// so a warmed run is bit-identical to a lazy one — the
    /// differential harness drives both fill orders through this hook.
    pub fn warm_link_cache(&mut self) {
        for i in 0..self.macs.len() {
            self.medium.warm_links(NodeId(i));
        }
    }

    /// Runs the simulation for `duration` of simulated time and returns
    /// the report.
    pub fn run(self, duration: SimDuration) -> SimReport {
        self.run_core(duration, false).0
    }

    /// Runs with the event-loop profiler enabled, returning the report
    /// alongside the wall-clock profile. Profiling only *times* the
    /// loop, so the report is identical to an unprofiled run.
    pub fn run_profiled(self, duration: SimDuration) -> (SimReport, RunProfile) {
        let (report, profile) = self.run_core(duration, true);
        // simlint: allow(panic-policy) — run_core(.., true) always builds a profile; a None is a wiring bug
        (report, profile.expect("profiling was enabled"))
    }

    fn run_core(mut self, duration: SimDuration, profile: bool) -> (SimReport, Option<RunProfile>) {
        let end = SimTime::ZERO + duration;
        let mut profiler = profile.then(Profiler::new);
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            if let Some(p) = &mut profiler {
                p.observe_queue(&self.queue);
            }
            let Some((t, event)) = self.queue.pop() else {
                break; // unreachable: peek_time just returned Some
            };
            self.now = t;
            self.report.events += 1;
            let started = profiler.as_ref().map(Profiler::dispatch_start);
            match event {
                Event::TxEnd(tx) => {
                    let notes = self.medium.end(tx, self.now);
                    self.forward_medium_events();
                    self.dispatch_notes(notes);
                }
                Event::FlowTimer { node, gen } => {
                    if self.flow_gen[node.0] == gen {
                        self.dispatch(node, MacEvent::FlowTimer);
                    }
                }
                Event::ResponderTimer { node, gen } => {
                    if self.resp_gen[node.0] == gen {
                        self.dispatch(node, MacEvent::ResponderTimer);
                    }
                }
                Event::TrafficWakeup { node } => {
                    self.dispatch(node, MacEvent::Traffic);
                }
                Event::Mobility { node, step } => self.apply_move(node, step),
            }
            if let (Some(p), Some(s)) = (&mut profiler, started) {
                p.dispatch_end(event.kind_index(), s);
            }
        }
        self.report.duration = duration;
        self.report.medium = self.medium.stats();
        for sink in &mut self.sinks {
            sink.finish(&mut self.report);
        }
        let profile = profiler.map(|p| {
            p.finish(
                duration,
                self.report.medium.ledger_checks,
                self.medium.ledger_check_nanos(),
                self.medium.counters(),
            )
        });
        (self.report, profile)
    }

    /// Fans one event out to every attached sink.
    fn emit(&mut self, event: SimEvent) {
        for sink in &mut self.sinks {
            sink.on_event(self.now, &event);
        }
    }

    /// Drains the medium's pending events into the sinks. Called right
    /// after every `Medium::begin`/`Medium::end` so physical-layer
    /// events precede the MAC reactions they trigger.
    fn forward_medium_events(&mut self) {
        if !self.observing {
            return;
        }
        let events = self.medium.take_events();
        for ev in &events {
            self.emit(*ev);
        }
        self.medium.restore_event_buffer(events);
    }

    /// Human-readable node name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.cfg.nodes[node.0].name
    }

    /// Executes a scheduled movement: physics first, then the location
    /// service decides whether to broadcast; accepted reports reach every
    /// protocol instance (the APs disseminate them, as in the paper).
    fn apply_move(&mut self, node: NodeId, step: usize) {
        let mv = self.cfg.nodes[node.0].moves[step];
        self.medium.set_position(node, mv.to);
        // The mover's localization fix carries the configured error,
        // drawn from a stream keyed `(move_seed, node, move epoch)` —
        // independent of every other node's mobility schedule.
        let truth = mv.to;
        self.move_epoch[node.0] += 1;
        let mut noise =
            CounterRng::from_key(self.move_seed, node.0 as u64, self.move_epoch[node.0]);
        let fix = truth.with_error(self.cfg.position_error, &mut noise);
        let n = self.macs.len();
        for i in 0..n {
            if i != node.0 {
                self.macs[i].on_neighbor_moved(node, mv.to);
            }
        }
        if let Some(report) = self.macs[node.0].on_moved(mv.to, fix) {
            self.report.position_reports += 1;
            for i in 0..n {
                if i != node.0 {
                    self.macs[i].on_position_report(node, report);
                }
            }
        }
        // No Sense dispatch: a move changes no ambient power (active
        // transmissions keep the powers they were drawn with), so no
        // carrier-sense or RSSI-watchdog comparison can flip. Geometry-
        // dependent decisions pick up the new positions at the next
        // event that actually evaluates them. See DESIGN.md §8.
    }

    fn dispatch(&mut self, node: NodeId, event: MacEvent) {
        let mut work: VecDeque<(NodeId, MacEvent)> = VecDeque::new();
        work.push_back((node, event));
        self.drain(work);
    }

    fn dispatch_notes(&mut self, notes: Vec<(NodeId, PhyNote)>) {
        let mut work: VecDeque<(NodeId, MacEvent)> = VecDeque::new();
        for (n, note) in notes {
            match note {
                PhyNote::Sense => work.push_back((n, MacEvent::Sense)),
                PhyNote::Rx { frame, rssi } => work.push_back((n, MacEvent::Rx { frame, rssi })),
                PhyNote::TxDone { frame } => work.push_back((n, MacEvent::TxDone { frame })),
                PhyNote::Announce { link, data_end } => {
                    work.push_back((n, MacEvent::Announce { link, data_end }))
                }
            }
        }
        self.drain(work);
    }

    fn drain(&mut self, mut work: VecDeque<(NodeId, MacEvent)>) {
        while let Some((node, event)) = work.pop_front() {
            let ctx = MacCtx {
                now: self.now,
                sensed: self.medium.sensed(node),
                transmitting: self.medium.is_transmitting(node),
                locked: self.medium.is_locked(node),
                observing: self.observing,
            };
            let actions = self.macs[node.0].handle(event, ctx);
            for action in actions {
                self.apply(node, action, &mut work);
            }
        }
    }

    fn apply(&mut self, node: NodeId, action: MacAction, work: &mut VecDeque<(NodeId, MacEvent)>) {
        match action {
            MacAction::ArmFlowTimer(at) => {
                self.flow_gen[node.0] += 1;
                self.queue.schedule(
                    at,
                    Event::FlowTimer {
                        node,
                        gen: self.flow_gen[node.0],
                    },
                );
            }
            MacAction::CancelFlowTimer => {
                self.flow_gen[node.0] += 1;
            }
            MacAction::ArmResponderTimer(at) => {
                self.resp_gen[node.0] += 1;
                self.queue.schedule(
                    at,
                    Event::ResponderTimer {
                        node,
                        gen: self.resp_gen[node.0],
                    },
                );
            }
            MacAction::ScheduleTraffic(at) => {
                self.queue.schedule(at, Event::TrafficWakeup { node });
            }
            MacAction::Transmit(frame) => {
                let duration = self
                    .cfg
                    .protocol
                    .phy
                    .frame_duration(frame.on_air_bytes(), frame.rate);
                let end = self.now + duration;
                let (tx, notes) = self.medium.begin(frame, self.now, end);
                self.forward_medium_events();
                self.queue.schedule(end, Event::TxEnd(tx));
                self.report.node_mut(node).airtime += duration;
                for (n, note) in notes {
                    match note {
                        PhyNote::Sense => work.push_back((n, MacEvent::Sense)),
                        PhyNote::Announce { link, data_end } => {
                            work.push_back((n, MacEvent::Announce { link, data_end }))
                        }
                        // begin() produces no receptions or completions.
                        PhyNote::Rx { .. } | PhyNote::TxDone { .. } => {}
                    }
                }
            }
            MacAction::Stat(stat) => self.account(node, stat),
            MacAction::Emit(ev) => self.emit(ev),
        }
    }

    fn account(&mut self, node: NodeId, stat: StatEvent) {
        match stat {
            StatEvent::DataTx { dst } => {
                self.report.link_mut(node, dst).data_tx += 1;
            }
            StatEvent::Delivered { src, bytes } => {
                let link = self.report.link_mut(src, node);
                link.delivered_bytes += u64::from(bytes);
                link.delivered_frames += 1;
            }
            StatEvent::AckTimeout { dst } => {
                self.report.link_mut(node, dst).ack_timeouts += 1;
            }
            StatEvent::Drop { dst } => {
                self.report.link_mut(node, dst).drops += 1;
            }
            StatEvent::ConcurrentTx => {
                self.report.node_mut(node).concurrent_tx += 1;
            }
            StatEvent::EtAbandon => {
                self.report.node_mut(node).et_abandons += 1;
            }
            StatEvent::HeaderHeard => {
                self.report.node_mut(node).headers_heard += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MacFeatures, NodeSpec, Traffic};
    use comap_radio::rates::Rate;

    fn two_node_cfg(seed: u64) -> SimConfig {
        let mut cfg = SimConfig::testbed(seed);
        cfg.rate_controller = crate::rate::RateController::Fixed(Rate::Mbps11);
        let a = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
        let b = cfg.add_node(NodeSpec::ap("AP1", Position::new(8.0, 0.0)));
        cfg.add_flow(a, b, Traffic::Saturated);
        cfg
    }

    #[test]
    fn lone_saturated_link_reaches_expected_goodput() {
        let report = Simulator::new(two_node_cfg(1)).run(SimDuration::from_millis(500));
        let goodput = report.link_goodput_bps(NodeId(0), NodeId(1));
        // 1000-byte frames at 11 Mbps, long preamble, CW 31:
        // cycle ≈ 310 + 939.6 + 10 + 304 + 50 µs ≈ 1.61 ms → ≈ 5 Mbps.
        assert!(goodput > 4.0e6 && goodput < 6.5e6, "goodput = {goodput}");
    }

    #[test]
    fn cbr_flow_is_paced() {
        let mut cfg = two_node_cfg(2);
        cfg.flows.clear();
        cfg.add_flow(NodeId(0), NodeId(1), Traffic::Cbr { bps: 1.0e6 });
        let report = Simulator::new(cfg).run(SimDuration::from_secs(1));
        let goodput = report.link_goodput_bps(NodeId(0), NodeId(1));
        assert!(
            (goodput - 1.0e6).abs() < 0.12e6,
            "CBR goodput should track the offered 1 Mbps, got {goodput}"
        );
    }

    #[test]
    fn contenders_share_the_channel() {
        let mut cfg = SimConfig::testbed(3);
        cfg.rate_controller = crate::rate::RateController::Fixed(Rate::Mbps11);
        let a = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
        let b = cfg.add_node(NodeSpec::client("C2", Position::new(2.0, 0.0)));
        let ap = cfg.add_node(NodeSpec::ap("AP", Position::new(5.0, 0.0)));
        cfg.add_flow(a, ap, Traffic::Saturated);
        cfg.add_flow(b, ap, Traffic::Saturated);
        let report = Simulator::new(cfg).run(SimDuration::from_millis(500));
        let ga = report.link_goodput_bps(a, ap);
        let gb = report.link_goodput_bps(b, ap);
        assert!(
            ga > 1.5e6 && gb > 1.5e6,
            "both links must progress: {ga} / {gb}"
        );
        let ratio = ga / gb;
        assert!(
            ratio > 0.6 && ratio < 1.67,
            "roughly fair sharing, ratio = {ratio}"
        );
    }

    #[test]
    fn hidden_terminal_degrades_goodput() {
        // Fig. 2 geometry: C1 at 0, AP1 at 15 m, C2 (hidden) at 37 m
        // transmitting to AP2 at 49 m.
        let mut cfg = SimConfig::testbed(4);
        cfg.rate_controller = crate::rate::RateController::Fixed(Rate::Mbps11);
        let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
        let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(15.0, 0.0)));
        let c2 = cfg.add_node(NodeSpec::client("C2", Position::new(37.0, 0.0)));
        let ap2 = cfg.add_node(NodeSpec::ap("AP2", Position::new(49.0, 0.0)));
        cfg.add_flow(c1, ap1, Traffic::Saturated);
        cfg.add_flow(c2, ap2, Traffic::Saturated);
        let report = Simulator::new(cfg).run(SimDuration::from_millis(500));
        let with_ht = report.link_goodput_bps(c1, ap1);

        let clean = Simulator::new(two_node_cfg(4)).run(SimDuration::from_millis(500));
        let alone = clean.link_goodput_bps(NodeId(0), NodeId(1));
        assert!(
            with_ht < 0.75 * alone,
            "hidden terminal must hurt: {with_ht} vs clean {alone}"
        );
        let stats = report.links[&(c1, ap1)];
        assert!(
            stats.ack_timeouts > 0,
            "collisions must show up as ACK timeouts"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = Simulator::new(two_node_cfg(7)).run(SimDuration::from_millis(300));
        let r2 = Simulator::new(two_node_cfg(7)).run(SimDuration::from_millis(300));
        assert_eq!(r1.links, r2.links);
        assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = Simulator::new(two_node_cfg(8)).run(SimDuration::from_millis(300));
        let r2 = Simulator::new(two_node_cfg(9)).run(SimDuration::from_millis(300));
        assert_ne!(r1.events, r2.events);
    }

    #[test]
    fn comap_features_do_not_break_a_lone_link() {
        let mut cfg = two_node_cfg(10);
        cfg.default_features = MacFeatures::COMAP;
        let report = Simulator::new(cfg).run(SimDuration::from_millis(500));
        let goodput = report.link_goodput_bps(NodeId(0), NodeId(1));
        // Headers cost airtime but the link must still run well.
        assert!(goodput > 2.5e6, "CO-MAP lone-link goodput = {goodput}");
    }

    #[test]
    fn rts_cts_baseline_still_delivers() {
        let mut cfg = two_node_cfg(12);
        cfg.default_features = MacFeatures::DCF_RTS_CTS;
        let report = Simulator::new(cfg).run(SimDuration::from_millis(500));
        let goodput = report.link_goodput_bps(NodeId(0), NodeId(1));
        // The handshake costs two control frames per exchange but the
        // link must still run well.
        assert!(goodput > 2.0e6, "RTS/CTS goodput = {goodput}");
        let plain = Simulator::new(two_node_cfg(12)).run(SimDuration::from_millis(500));
        assert!(
            goodput < plain.link_goodput_bps(NodeId(0), NodeId(1)),
            "the handshake is pure overhead on a lone link"
        );
    }

    #[test]
    fn rts_cts_protects_against_hidden_terminals() {
        // Fig. 2 geometry: the HT hears AP1's CTS even though it cannot
        // hear C1, so collisions drop relative to plain DCF.
        let build = |features: MacFeatures, seed: u64| {
            let mut cfg = SimConfig::testbed(seed);
            cfg.rate_controller = crate::rate::RateController::Fixed(Rate::Mbps11);
            cfg.default_features = features;
            let c1 = cfg.add_node(NodeSpec::client("C1", Position::new(0.0, 0.0)));
            let ap1 = cfg.add_node(NodeSpec::ap("AP1", Position::new(15.0, 0.0)));
            let c2 = cfg.add_node(NodeSpec::client("C2", Position::new(37.0, 0.0)));
            let ap2 = cfg.add_node(NodeSpec::ap("AP2", Position::new(49.0, 0.0)));
            cfg.add_flow(c1, ap1, Traffic::Saturated);
            cfg.add_flow(c2, ap2, Traffic::Saturated);
            cfg
        };
        let mut plain_timeouts = 0;
        let mut rts_timeouts = 0;
        for seed in [21, 22, 23] {
            let plain =
                Simulator::new(build(MacFeatures::DCF, seed)).run(SimDuration::from_millis(800));
            plain_timeouts += plain.links[&(NodeId(0), NodeId(1))].ack_timeouts;
            let rts = Simulator::new(build(MacFeatures::DCF_RTS_CTS, seed))
                .run(SimDuration::from_millis(800));
            rts_timeouts += rts.links[&(NodeId(0), NodeId(1))].ack_timeouts;
        }
        assert!(
            rts_timeouts < plain_timeouts,
            "virtual carrier sense must reduce HT collisions: {rts_timeouts} vs {plain_timeouts}"
        );
    }

    #[test]
    fn node_names_are_preserved() {
        let sim = Simulator::new(two_node_cfg(1));
        assert_eq!(sim.node_name(NodeId(0)), "C1");
        assert_eq!(sim.node_name(NodeId(1)), "AP1");
    }
}
