//! Simulation configuration: nodes, flows, MAC features and presets.

use comap_core::config::ProtocolConfig;
use comap_mac::backoff::BackoffPolicy;
use comap_radio::units::Meters;
use comap_radio::Position;

use crate::frame::NodeId;
use crate::medium::MediumBackend;
use crate::rate::RateController;

/// Which CO-MAP extensions a node's MAC runs. All off = plain DCF.
///
/// Each toggle isolates one contribution for ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacFeatures {
    /// Send a discovery header before every data frame so neighbors learn
    /// about ongoing transmissions (Section V).
    pub discovery_header: bool,
    /// Act on discovered transmissions: validate concurrency through the
    /// co-occurrence map and run the enhanced ET scheduler (Section IV-C).
    pub et_concurrency: bool,
    /// Adapt payload size and contention window to the hidden-terminal
    /// census (Section IV-D).
    pub ht_adaptation: bool,
    /// Replace stop-and-wait ACKs with selective-repeat ARQ
    /// (Section IV-C4).
    pub selective_repeat: bool,
    /// RTS/CTS virtual carrier sense — the optional 802.11 baseline the
    /// paper disables ("overhead, inefficiency of detecting all HTs, and
    /// aggravation of the ET problem"); implemented so those claims can
    /// be measured.
    pub rts_cts: bool,
}

impl MacFeatures {
    /// Plain 802.11 DCF — the paper's baseline.
    pub const DCF: MacFeatures = MacFeatures {
        discovery_header: false,
        et_concurrency: false,
        ht_adaptation: false,
        selective_repeat: false,
        rts_cts: false,
    };

    /// Full CO-MAP.
    pub const COMAP: MacFeatures = MacFeatures {
        discovery_header: true,
        et_concurrency: true,
        ht_adaptation: true,
        selective_repeat: true,
        rts_cts: false,
    };

    /// Plain DCF with RTS/CTS virtual carrier sense.
    pub const DCF_RTS_CTS: MacFeatures = MacFeatures {
        rts_cts: true,
        ..MacFeatures::DCF
    };

    /// `true` if any CO-MAP feature is on (RTS/CTS is a baseline
    /// feature, not a CO-MAP one).
    pub fn any(self) -> bool {
        self.discovery_header || self.et_concurrency || self.ht_adaptation || self.selective_repeat
    }
}

/// Offered traffic of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Traffic {
    /// Always backlogged (the testbed's Iperf behaviour).
    Saturated,
    /// Constant bit rate in payload bits per second (Table I uses 3 Mbps).
    Cbr {
        /// Offered payload rate.
        bps: f64,
    },
}

/// One node to instantiate.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable label used in reports and traces.
    pub name: String,
    /// True position on the floor plan.
    pub position: Position,
    /// Whether this node is an access point (affects nothing physical;
    /// used by reports and the quickstart example).
    pub ap: bool,
    /// Per-node feature override; `None` inherits the simulation default.
    pub features: Option<MacFeatures>,
    /// Per-node payload-size override; `None` inherits
    /// [`SimConfig::payload_bytes`].
    pub payload: Option<u32>,
    /// Scheduled movements (step motion): at each instant the node jumps
    /// to the given position, its location service decides whether to
    /// broadcast a report, and the physics follow the new geometry.
    pub moves: Vec<Move>,
}

/// One scheduled movement of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Move {
    /// When the movement happens (simulation time from start).
    pub at: comap_mac::time::SimDuration,
    /// Where the node ends up.
    pub to: Position,
}

impl NodeSpec {
    /// A client station.
    pub fn client(name: impl Into<String>, position: Position) -> Self {
        NodeSpec {
            name: name.into(),
            position,
            ap: false,
            features: None,
            payload: None,
            moves: Vec::new(),
        }
    }

    /// An access point.
    pub fn ap(name: impl Into<String>, position: Position) -> Self {
        NodeSpec {
            name: name.into(),
            position,
            ap: true,
            features: None,
            payload: None,
            moves: Vec::new(),
        }
    }

    /// Overrides the MAC features of this node.
    pub fn with_features(mut self, features: MacFeatures) -> Self {
        self.features = Some(features);
        self
    }

    /// Overrides the payload size of this node's frames.
    pub fn with_payload(mut self, payload_bytes: u32) -> Self {
        self.payload = Some(payload_bytes);
        self
    }

    /// Schedules a movement.
    pub fn with_move(mut self, at: comap_mac::time::SimDuration, to: Position) -> Self {
        self.moves.push(Move { at, to });
        self
    }
}

/// A unidirectional traffic flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Offered load.
    pub traffic: Traffic,
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; every RNG stream derives from it.
    pub seed: u64,
    /// Protocol/channel parameters (shared by physics and CO-MAP logic).
    pub protocol: ProtocolConfig,
    /// Default MAC features for nodes without an override.
    pub default_features: MacFeatures,
    /// Data-rate selection policy.
    pub rate_controller: RateController,
    /// Backoff policy of non-adapted nodes.
    pub backoff: BackoffPolicy,
    /// Payload size of non-adapted frames, in bytes.
    pub payload_bytes: u32,
    /// Retry limit before a frame is dropped.
    pub retry_limit: u32,
    /// Radius of the synthetic position error added to every *reported*
    /// position (the true position still governs the physics).
    pub position_error: Meters,
    /// Preamble capture: allow a stronger late frame to steal the
    /// receiver lock. On by default (commodity behaviour); off for the
    /// ablation bench.
    pub capture: bool,
    /// Preamble-based carrier sense: the channel also counts as busy
    /// while the receiver is locked onto a decodable frame, mirroring
    /// 802.11 preamble detection (NS-2's wide CS range). Off restores
    /// pure energy detection — the analytical model's world.
    pub preamble_cs: bool,
    /// In-band discovery headers (the paper's Section V method 1): the
    /// link announcement rides inside every data frame's MAC header
    /// instead of a separate header packet, costing 4 bytes instead of
    /// a whole frame. Used by the NS-2-style large-scale experiments.
    pub inband_header: bool,
    /// How the medium enumerates receivers. Both backends are
    /// bit-identical (the differential harness pins it); `Culled` is
    /// only faster, so it is the default.
    pub backend: MediumBackend,
    /// Grid resolution the physics snap *true* positions onto: moves
    /// that stay inside one quantum cell coalesce into no-ops instead of
    /// invalidating the mover's link cache. The default (1 m) sits far
    /// below the shadowing deviation, so the snap is physically
    /// invisible; [`Meters::ZERO`] disables quantization entirely.
    pub position_quantum: Meters,
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// Traffic matrix.
    pub flows: Vec<FlowSpec>,
}

impl SimConfig {
    /// A configuration over the paper's testbed channel (Section VI-A).
    pub fn testbed(seed: u64) -> Self {
        Self::with_protocol(seed, ProtocolConfig::testbed())
    }

    /// A configuration over the paper's large-scale Table I channel.
    pub fn large_scale(seed: u64) -> Self {
        Self::with_protocol(seed, ProtocolConfig::large_scale())
    }

    /// A configuration over an arbitrary protocol preset.
    pub fn with_protocol(seed: u64, protocol: ProtocolConfig) -> Self {
        SimConfig {
            seed,
            protocol,
            default_features: MacFeatures::DCF,
            rate_controller: RateController::Fixed(protocol.model_rate),
            backoff: BackoffPolicy::DSSS_DEFAULT,
            payload_bytes: 1000,
            retry_limit: 7,
            position_error: Meters::ZERO,
            capture: true,
            preamble_cs: true,
            inband_header: false,
            backend: MediumBackend::Culled,
            position_quantum: Meters::new(crate::medium::DEFAULT_POSITION_QUANTUM_M),
            nodes: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(spec);
        id
    }

    /// Adds a unidirectional flow.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or `src == dst`.
    pub fn add_flow(&mut self, src: NodeId, dst: NodeId, traffic: Traffic) {
        assert!(src.0 < self.nodes.len(), "unknown flow source {src}");
        assert!(dst.0 < self.nodes.len(), "unknown flow destination {dst}");
        assert_ne!(src, dst, "flow endpoints must differ");
        self.flows.push(FlowSpec { src, dst, traffic });
    }

    /// The effective features of a node.
    pub fn features_of(&self, node: NodeId) -> MacFeatures {
        self.nodes[node.0].features.unwrap_or(self.default_features)
    }

    /// Flows originating at `node`.
    pub fn flows_from(&self, node: NodeId) -> impl Iterator<Item = &FlowSpec> + '_ {
        self.flows.iter().filter(move |f| f.src == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_flow_registration() {
        let mut cfg = SimConfig::testbed(1);
        let a = cfg.add_node(NodeSpec::client("a", Position::ORIGIN));
        let b = cfg.add_node(NodeSpec::ap("b", Position::new(5.0, 0.0)));
        cfg.add_flow(a, b, Traffic::Saturated);
        assert_eq!(cfg.flows_from(a).count(), 1);
        assert_eq!(cfg.flows_from(b).count(), 0);
        assert_eq!((a, b), (NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn self_flow_panics() {
        let mut cfg = SimConfig::testbed(1);
        let a = cfg.add_node(NodeSpec::client("a", Position::ORIGIN));
        cfg.add_flow(a, a, Traffic::Saturated);
    }

    #[test]
    fn feature_override_wins() {
        let mut cfg = SimConfig::testbed(1);
        cfg.default_features = MacFeatures::COMAP;
        let a =
            cfg.add_node(NodeSpec::client("a", Position::ORIGIN).with_features(MacFeatures::DCF));
        let b = cfg.add_node(NodeSpec::client("b", Position::ORIGIN));
        assert_eq!(cfg.features_of(a), MacFeatures::DCF);
        assert_eq!(cfg.features_of(b), MacFeatures::COMAP);
    }

    #[test]
    fn dcf_has_no_features() {
        assert!(!MacFeatures::DCF.any());
        assert!(MacFeatures::COMAP.any());
    }
}
