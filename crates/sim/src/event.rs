//! The deterministic event queue.
//!
//! A binary heap ordered by `(time, sequence)`: events scheduled at the
//! same instant pop in scheduling order, which keeps runs bit-for-bit
//! reproducible across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use comap_mac::time::SimTime;

use crate::frame::{NodeId, TxId};

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A transmission leaves the air.
    TxEnd(TxId),
    /// A node's MAC-flow timer (DIFS wait / backoff expiry / ACK timeout)
    /// fires; stale generations are discarded.
    FlowTimer {
        /// Owning node.
        node: NodeId,
        /// Generation at scheduling time.
        gen: u64,
    },
    /// A node's responder timer (SIFS before an ACK) fires.
    ResponderTimer {
        /// Owning node.
        node: NodeId,
        /// Generation at scheduling time.
        gen: u64,
    },
    /// A CBR source has accumulated enough bytes for another frame.
    TrafficWakeup {
        /// Owning node.
        node: NodeId,
    },
    /// A node executes its `step`-th scheduled movement.
    Mobility {
        /// The moving node.
        node: NodeId,
        /// Index into its move list.
        step: usize,
    },
}

impl Event {
    /// Number of event kinds (size of the profiler's accounting arrays).
    pub const KIND_COUNT: usize = 5;

    /// Stable names per kind, indexed by [`Event::kind_index`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = [
        "tx_end",
        "flow_timer",
        "responder_timer",
        "traffic_wakeup",
        "mobility",
    ];

    /// Dense index of this event's kind, for profiling counters.
    pub fn kind_index(&self) -> usize {
        match self {
            Event::TxEnd(_) => 0,
            Event::FlowTimer { .. } => 1,
            Event::ResponderTimer { .. } => 2,
            Event::TrafficWakeup { .. } => 3,
            Event::Mobility { .. } => 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

// Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), Event::TrafficWakeup { node: NodeId(3) });
        q.schedule(t(10), Event::TrafficWakeup { node: NodeId(1) });
        q.schedule(t(20), Event::TrafficWakeup { node: NodeId(2) });
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(tm, _)| tm).collect();
        assert_eq!(order, vec![t(10), t(20), t(30)]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), Event::TrafficWakeup { node: NodeId(i) });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TrafficWakeup { node } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(7), Event::TxEnd(TxId(1)));
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        let (time, _) = q.pop().unwrap();
        assert_eq!(time, t(7));
        assert!(q.is_empty());
    }
}
