//! The shared radio medium: propagation, carrier sensing and reception.
//!
//! Every transmission draws one shadowing sample per receiver (paper
//! eq. 1); that same sample governs both carrier sensing and decoding of
//! the frame, so the channel is self-consistent for its duration. Every
//! draw — slow fade, fast fade, hazard survival — comes from a
//! counter-based keyed stream ([`comap_radio::stream`]): the medium
//! holds **no mutable RNG state at all**, so no sweep order, backend or
//! future shard plan can perturb a single sample.
//!
//! Reception follows the SINR-threshold capture model: a receiver locks
//! onto the first frame whose SINR against the current ambient power
//! clears the rate's minimum; the frame survives if its SINR against the
//! *worst* overlapping interference stays above that minimum. With
//! `capture` enabled, a later frame that is decodable *despite* the
//! currently locked signal steals the lock (preamble capture) — without
//! it, two saturated hidden flows annihilate each other completely, which
//! neither commodity hardware nor NS-2 reproduces.
//!
//! # The power ledger invariant
//!
//! The ambient power a node senses is a **pure function of the set of
//! transmissions currently on the air**: per-receiver powers are
//! quantized onto the exact integer grid of
//! [`QuantizedPower`](comap_radio::units::QuantizedPower) when a frame
//! starts, and the same grains are subtracted when it ends, so
//! [`Medium::sensed`] is bit-identical no matter how many frames have
//! come and gone in between. Debug builds verify the ledger against a
//! from-scratch recomputation after every [`Medium::begin`] /
//! [`Medium::end`]; release callers can do the same through
//! [`Medium::ledger_divergence_grains`].
//!
//! # The relevance floor and spatial culling
//!
//! A link whose cached mean received power sits below the *relevance
//! floor* ([`RELEVANCE_MARGIN_DB`] decibels under the thermal noise
//! floor) contributes **exactly zero** to every receiver-side quantity:
//! no fading draw, no ledger grains, no [`PhyNote::Sense`]. That rule is
//! part of the propagation model itself — both backends apply it to the
//! same cached means — which is what makes the two backends bit-identical
//! by construction:
//!
//! * [`MediumBackend::Exhaustive`] scans every node per transmission and
//!   keeps the dense per-node power vector (the reference algorithm).
//! * [`MediumBackend::Culled`] enumerates only the nodes in the 3 × 3
//!   grid-cell neighbourhood of the sender (cell side = the channel's
//!   relevance range) plus a per-node *overflow list* of links whose
//!   static shadowing draw keeps them relevant beyond that range, and
//!   stores powers sparsely.
//!
//! Both enumerations filter by the same relevance predicate in the same
//! ascending node order, so they consume identical RNG streams and move
//! identical grains. See DESIGN.md §7 for the derivation of the radius
//! and the exactness argument.
//!
//! # The mobility hot path
//!
//! Movement never recomputes links eagerly. [`Medium::set_position`]
//! snaps the target onto the position quantum, bumps the mover's
//! *position epoch* and refreshes the overflow lists — nothing else. A
//! link's slow-fade mean is a **pure function** of the endpoints'
//! positions and epochs: the slow-fade draw comes from a counter-based
//! stream keyed by `(seed, min(i, j), max(i, j), epoch sum)`, so the
//! struct-of-arrays link cache can be refilled lazily, on the first
//! lookup that sees a stale epoch tag — in any order, under any
//! backend. See DESIGN.md §8.
//!
//! # Per-frame stream discipline
//!
//! Fast fades are keyed by `(fade seed, tx → rx, frame counter)` and
//! hazard-survival draws by `(hazard seed, tx → rx, frame counter)`,
//! where the frame counter is the transmission's never-reused [`TxId`]
//! generation. [`Medium::begin`] therefore draws the whole
//! relevant-receiver sweep as one branch-light batched pass over the
//! struct-of-arrays link row — there is no sequential-RNG data
//! dependence left to order it. See DESIGN.md §11.

use rand::rngs::StdRng;
use rand::Rng;

use comap_mac::time::SimTime;
use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::stream::{keyed_state, link_key, mix64, normal_from_state, uniform_from_state};
use comap_radio::units::{Db, Dbm, Meters, MilliWatts, QuantizedPower};
use comap_radio::{Position, NOISE_FLOOR};

use crate::frame::{Frame, NodeId, TxId};
use crate::observe::SimEvent;
use crate::stats::MediumStats;

/// A notification the medium hands back to the simulator for a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyNote {
    /// The ambient power at the node changed; the MAC should re-evaluate
    /// carrier sense and any armed RSSI watchdog.
    Sense,
    /// A frame was received successfully (lock held to the end with
    /// sufficient SINR).
    Rx {
        /// The decoded frame.
        frame: Frame,
        /// Received signal strength of the frame.
        rssi: Dbm,
    },
    /// The node's own transmission left the air.
    TxDone {
        /// The transmitted frame.
        frame: Frame,
    },
    /// In-band announcement: the node locked onto a data frame whose
    /// MAC header (the paper's 4-byte-FCS variant) reveals the link and
    /// the remaining airtime.
    Announce {
        /// The announced link.
        link: (NodeId, NodeId),
        /// When the data frame ends.
        data_end: SimTime,
    },
}

/// How the medium enumerates the receivers of a transmission.
///
/// Both backends produce bit-identical results (same reports, same event
/// streams, same RNG consumption) — the culled backend is only allowed
/// to be *faster*. The differential harness in
/// `crates/sim/tests/differential.rs` pins that equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumBackend {
    /// Dense reference algorithm: every transmission visits all `n`
    /// nodes and carries an `n`-entry power vector.
    Exhaustive,
    /// Spatial culling: only grid-neighbour nodes (plus the overflow
    /// list) are visited, and powers are stored sparsely.
    Culled,
}

#[derive(Debug, Clone, Copy)]
struct RxLock {
    tx: TxId,
    signal: MilliWatts,
    /// Interference power during the current exposure span.
    interference: MilliWatts,
    /// Accumulated expected bit errors (`Σ BER(SINR) · bitrate · dt`).
    hazard: f64,
    /// Start of the current exposure span.
    since: SimTime,
    /// Bit rate of the locked frame (for the hazard integral).
    rate: comap_radio::rates::Rate,
}

/// Bit-error rate at `delta_db` decibels below the rate\'s minimum SINR:
/// `1e-5` at the threshold, doubling per dB below it, vanishing above.
/// The 8 000-bit scale of a data frame turns this into a sharp-but-
/// duration-sensitive corruption model.
fn bit_error_rate(delta_db: f64) -> f64 {
    (1e-5 * 2f64.powf(delta_db)).min(0.5)
}

impl RxLock {
    /// Accrues hazard for the span ending `now`, then resets the span.
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.since).as_secs_f64();
        if dt > 0.0 {
            let sinr_db = 10.0 * (self.signal.value() / self.interference.value()).log10();
            let delta = self.rate.min_sinr().value() - sinr_db;
            self.hazard += bit_error_rate(delta) * self.rate.bits_per_second() * dt;
        }
        self.since = now;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhyState {
    transmitting: Option<TxId>,
    /// Exact ledger of the ambient power arriving from every active
    /// transmission (own transmissions excluded).
    incoming: QuantizedPower,
    lock: Option<RxLock>,
}

/// Per-receiver powers of one active transmission. Dense under the
/// exhaustive backend (own and culled entries zero), sparse under the
/// culled backend (relevant receivers only, ascending by node). Both
/// describe the same function `node → grains`, so begin/end move
/// identical grains either way.
#[derive(Debug, Clone)]
enum PowerMap {
    /// Received power of this transmission at every node (own entry 0),
    /// pre-quantized so begin/end move identical grains.
    Dense(Vec<QuantizedPower>),
    /// `(node, power)` of every relevant receiver, ascending by node.
    Sparse(Vec<(u32, QuantizedPower)>),
}

impl PowerMap {
    /// Power delivered to `node` (zero when culled or the sender).
    fn at(&self, node: usize) -> QuantizedPower {
        match self {
            PowerMap::Dense(v) => v[node],
            PowerMap::Sparse(v) => v
                .binary_search_by_key(&(node as u32), |&(n, _)| n)
                .map(|i| v[i].1)
                .unwrap_or(QuantizedPower::ZERO),
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveTx {
    id: TxId,
    frame: Frame,
    end: SimTime,
    powers: PowerMap,
}

/// Per-frame fading deviation: for *static* nodes most of the shadowing
/// (obstructions, walls) does not change between frames; only a small
/// fast-fading component does. The per-link remainder comes from the
/// counter-based slow-fade stream, keeping the total variance at the
/// channel\'s σ².
const FAST_SIGMA_DB: f64 = 1.5;

/// Margin below the thermal noise floor at which a link stops being
/// *relevant*: its mean received power can no longer flip a carrier-sense
/// comparison or perturb a SINR entry beyond the noise the comparison
/// already tolerates (a single sub-floor contribution shifts the ambient
/// sum by < 0.02 dB), so the model treats it as exactly zero. 25 dB puts
/// the floor at −120 dBm for the −95 dBm noise floor.
pub const RELEVANCE_MARGIN_DB: f64 = 25.0;

/// Slow-fade draws are clamped to this many standard deviations — the
/// shared clamp of every keyed normal stream
/// ([`comap_radio::stream::NORMAL_CLAMP_SIGMA`]). The clip is a
/// modeling choice (one-sided mass beyond 6σ is ≈ 1e-9, far below
/// anything the simulator can resolve) that buys a hard geometric
/// bound: beyond [`Medium::overflow_skip`] no draw can lift a link over
/// the relevance floor, so the per-move overflow scan rejects far nodes
/// on a squared-distance comparison alone.
const SLOW_CLAMP_SIGMA: f64 = comap_radio::stream::NORMAL_CLAMP_SIGMA;

/// Default position quantum in meters (see
/// [`Medium::with_quantization`]): micro-moves inside a 1 m cell change
/// the mean path loss by well under a dB even at the 1 m near-field
/// clamp — far below the testbed's 4 dB shadowing deviation — so they
/// are coalesced instead of invalidating the mover's links.
pub const DEFAULT_POSITION_QUANTUM_M: f64 = 1.0;

/// Largest number of grid cells per axis. Beyond this the cells simply
/// grow past the relevance range, which only ever *over*-includes
/// candidates — correctness never depends on the cap.
const MAX_CELLS_PER_AXIS: usize = 64;

/// Epoch tag of a link-cache entry that has never been filled. Real tags
/// are sums of two `u32` epochs, so they can never reach it.
const STALE: u64 = u64::MAX;

/// Bits of a [`TxId`] used for the slab slot; the rest hold a
/// never-reused generation count, so a stale id can never alias a live
/// transmission occupying the same slot.
const SLOT_BITS: u32 = 32;

impl TxId {
    fn slot(self) -> usize {
        (self.0 & ((1 << SLOT_BITS) - 1)) as usize
    }
}

/// One standard-normal slow-fade draw for the unordered link `{lo, hi}`
/// at position-epoch sum `esum` — a counter-based stream, so the draw
/// is a pure function of its key: lazy cache refills can happen in any
/// order, under any backend. The result is clamped to
/// ±[`SLOW_CLAMP_SIGMA`].
///
/// The key fold is the original mobility-rework one (no seed pre-mix),
/// kept verbatim so every slow-fade realization shipped since then
/// stays bit-identical. The pre-mix that [`keyed_state`] adds guards
/// structured *cross-seed* aliases; the slow-fade stream has exactly
/// one seed, drawn at random, so the legacy fold is sound here — and
/// only here. New streams must use [`keyed_state`].
fn link_slow_normal(seed: u64, lo: u32, hi: u32, esum: u64) -> f64 {
    let h = mix64((seed ^ 0x5851_F42D_4C95_7F2D) ^ link_key(lo, hi));
    normal_from_state(mix64(h ^ esum))
}

/// Deterministic counters of the link cache and the culling layer.
/// Backend-dependent by design (the exhaustive backend enumerates more
/// candidates), so they are surfaced by side accessor and the run
/// profiler only — never through a [`SimReport`](crate::stats::SimReport).
///
/// Both cache counters are in **directed-link units**: a lookup is one
/// directed cache read serving a power sample, a recompute is one
/// directed read that missed (stale epoch tag) and refilled the entry —
/// the reciprocal mirror is refreshed by the same fill without being
/// counted, since no second path-loss evaluation happens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediumCounters {
    /// Directed link-cache entries recomputed through the path-loss
    /// path because a read found a stale epoch tag.
    pub cache_recomputes: u64,
    /// Directed link-cache reads serving a received-power sample (one
    /// per relevant receiver per transmission).
    pub cache_lookups: u64,
    /// Candidate receivers enumerated across all `begin` calls, before
    /// the relevance filter.
    pub cull_candidates: u64,
    /// Receivers that passed the relevance filter (and therefore drew
    /// fading and entered the ledger).
    pub cull_relevant: u64,
    /// Moves that changed the quantized position (epoch bump, grid
    /// re-file, overflow refresh).
    pub moves_applied: u64,
    /// Moves coalesced away because the target stayed inside the same
    /// position-quantum cell: no epoch bump, no invalidation.
    pub moves_coalesced: u64,
}

/// Uniform grid over node positions. Cell sides are at least the
/// relevance range, so any pair of nodes within that range lands in the
/// same or adjacent cells: the cell coordinate map is a composition of a
/// 1-Lipschitz clamp and a floor-divide by the cell side, which cannot
/// separate two coordinates closer than one cell side by more than one
/// cell. Out-of-bounds positions clamp onto the border cells — that only
/// ever over-includes candidates.
#[derive(Debug, Clone)]
struct Grid {
    min_x: f64,
    min_y: f64,
    /// Cell sides in meters (≥ the relevance range whenever the axis has
    /// more than one cell).
    cell_w: f64,
    cell_h: f64,
    nx: usize,
    ny: usize,
    /// Node ids per cell (unordered — candidates are sorted on gather).
    cells: Vec<Vec<u32>>,
    /// Flattened cell index of each node.
    cell_of: Vec<u32>,
}

impl Grid {
    fn new(positions: &[Position], range: Meters) -> Self {
        let r = range.value().max(1.0);
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let axis = |min: f64, max: f64| {
            let width = (max - min).max(0.0);
            let n = ((width / r).floor() as usize).clamp(1, MAX_CELLS_PER_AXIS);
            // n = ⌊width / r⌋ (≥ 1 cell) keeps the side ≥ r: width / n ≥ r.
            (n, (width / n as f64).max(r))
        };
        let (nx, cell_w) = axis(min_x, max_x);
        let (ny, cell_h) = axis(min_y, max_y);
        let mut grid = Grid {
            min_x,
            min_y,
            cell_w,
            cell_h,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            cell_of: vec![0; positions.len()],
        };
        for (i, p) in positions.iter().enumerate() {
            let c = grid.cell_index(*p);
            grid.cells[c].push(i as u32);
            grid.cell_of[i] = c as u32;
        }
        grid
    }

    fn cell_index(&self, p: Position) -> usize {
        let clamp = |v: f64, cell: f64, n: usize| -> usize {
            let c = (v / cell).floor();
            // Negative coordinates clamp onto the first cell.
            (c.max(0.0) as usize).min(n - 1)
        };
        let cx = clamp(p.x - self.min_x, self.cell_w, self.nx);
        let cy = clamp(p.y - self.min_y, self.cell_h, self.ny);
        cy * self.nx + cx
    }

    /// Re-files a node under its new position's cell.
    fn move_node(&mut self, node: usize, to: Position) {
        let old = self.cell_of[node] as usize;
        let new = self.cell_index(to);
        if new == old {
            return;
        }
        let cell = &mut self.cells[old];
        if let Some(i) = cell.iter().position(|&v| v as usize == node) {
            cell.swap_remove(i);
        }
        self.cells[new].push(node as u32);
        self.cell_of[node] = new as u32;
    }

    /// Appends every node in the 3 × 3 cell neighbourhood of `node`
    /// (including `node` itself) to `out`.
    fn gather_neighbors(&self, node: usize, out: &mut Vec<u32>) {
        let c = self.cell_of[node] as usize;
        let (cx, cy) = (c % self.nx, c / self.nx);
        for y in cy.saturating_sub(1)..=(cy + 1).min(self.ny - 1) {
            for x in cx.saturating_sub(1)..=(cx + 1).min(self.nx - 1) {
                out.extend_from_slice(&self.cells[y * self.nx + x]);
            }
        }
    }
}

/// The medium over a set of node positions.
#[derive(Debug)]
pub struct Medium {
    channel: LogNormalShadowing,
    /// Node positions, snapped onto the position quantum.
    positions: Vec<Position>,
    capture: bool,
    backend: MediumBackend,
    /// Emit [`PhyNote::Announce`] when a node locks onto a data frame
    /// (the paper\'s in-band header implementation, Section V method 1).
    inband_announce: bool,
    states: Vec<PhyState>,
    /// Active transmissions, slab-addressed by the slot encoded in their
    /// [`TxId`] — O(1) lookup instead of a linear scan.
    slots: Vec<Option<ActiveTx>>,
    /// Vacated slab slots available for reuse.
    free_slots: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
    /// Generation counter feeding new [`TxId`]s.
    next_gen: u64,
    /// Seed of the counter-based per-link slow-fade streams, drawn once
    /// from the construction stream. The medium holds no mutable RNG —
    /// every draw after construction is a pure function of one of these
    /// three seeds and a stable key.
    link_seed: u64,
    /// Seed of the per-frame fast-fade streams, keyed
    /// `(fade_seed, tx → rx, frame counter)`.
    fade_seed: u64,
    /// Seed of the hazard-survival streams, keyed
    /// `(hazard_seed, tx → rx, frame counter)`. Distinct from
    /// [`Medium::fade_seed`] so the two draws of the same frame and
    /// link are statistically unrelated.
    hazard_seed: u64,
    /// Position epoch per node, bumped by every applied (non-coalesced)
    /// move. A link is fresh iff its stored tag equals the sum of its
    /// endpoints' epochs — the sum strictly increases on any move, so a
    /// stale entry can never alias a fresh one.
    node_epoch: Vec<u32>,
    /// Struct-of-arrays link cache over ordered links (`src * n + dst`),
    /// filled lazily on first read with a stale tag. `link_tag` holds
    /// the epoch sum the entry was computed at ([`STALE`] = never);
    /// `link_dbm` the mean received power (mean path loss at the current
    /// distance plus the slow-fade draw); `link_quant` its exact ledger
    /// quantization (only when relevant — the `powf` is skipped for
    /// sub-floor links); `link_relevant` the floor predicate.
    link_tag: Vec<u64>,
    link_dbm: Vec<f64>,
    link_quant: Vec<QuantizedPower>,
    link_relevant: Vec<bool>,
    /// Static (slow) shadowing deviation in dB: the channel sigma minus
    /// the fast-fading component, in quadrature.
    slow_sigma: f64,
    fast_sigma: Db,
    /// Mean power below which a link is treated as exactly zero.
    relevance_floor: Dbm,
    /// Distance at which the channel's *mean* power reaches the floor —
    /// the grid cell side. Links pushed past it by a favourable static
    /// draw live in the overflow lists instead.
    relevance_range: Meters,
    /// Hard overflow-scan radius in meters: beyond it even a +6σ slow
    /// draw cannot lift the mean over the relevance floor (the draws are
    /// clamped — see [`SLOW_CLAMP_SIGMA`]), so the per-move scan rejects
    /// such nodes on a squared-distance comparison.
    overflow_skip: f64,
    /// Position quantum in meters; 0 disables quantization (every move
    /// is applied verbatim).
    quantum: f64,
    /// Quantum cell index per node (empty when quantization is off).
    qx: Vec<i64>,
    qy: Vec<i64>,
    grid: Grid,
    /// Per-node sorted lists of nodes that stay relevant beyond the grid
    /// reach (`dist > relevance_range` yet `mean ≥ floor`): the static
    /// shadowing draw can up-fade a link, so distance alone cannot bound
    /// the mean. Symmetric, typically empty, refreshed against the
    /// movers' *current* epochs on every applied move.
    overflow: Vec<Vec<u32>>,
    /// Reusable candidate buffer for the culled gather path.
    scratch: Vec<u32>,
    stats: MediumStats,
    counters: MediumCounters,
    /// Instrumentation enabled — gates every event construction below,
    /// so an unobserved medium pays one predictable branch per site.
    observe: bool,
    /// CCA threshold for carrier-sense transition events.
    cs_threshold: MilliWatts,
    /// Last carrier-sense state emitted per node.
    cs_busy: Vec<bool>,
    /// Events accumulated since the last [`Medium::take_events`].
    events: Vec<SimEvent>,
    /// Wall-clock nanoseconds spent verifying the ledger. Kept outside
    /// [`MediumStats`] so wall-clock time never enters a [`SimReport`].
    ledger_check_nanos: u64,
}

impl Medium {
    /// Creates a medium with the [`MediumBackend::Culled`] backend — see
    /// [`Medium::with_backend`].
    pub fn new(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        rng: StdRng,
    ) -> Self {
        Self::with_backend(channel, positions, capture, rng, MediumBackend::Culled)
    }

    /// Creates a medium with the default position quantum — see
    /// [`Medium::with_quantization`].
    pub fn with_backend(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        rng: StdRng,
        backend: MediumBackend,
    ) -> Self {
        Self::with_quantization(
            channel,
            positions,
            capture,
            rng,
            backend,
            Meters::new(DEFAULT_POSITION_QUANTUM_M),
        )
    }

    /// Creates a medium for nodes at `positions` over `channel`. The
    /// channel\'s shadowing deviation is split into a static per-link
    /// component (reciprocal, drawn lazily from the counter-based
    /// per-link stream, folded into the link cache) and a small
    /// per-frame fading component of at most [`FAST_SIGMA_DB`].
    ///
    /// Positions — initial and moved-to alike — are snapped onto a grid
    /// of `quantum` meters (0 disables snapping): sub-quantum moves are
    /// physically indistinguishable under shadowing of several dB, so
    /// they coalesce into no-ops instead of invalidating the mover's
    /// links.
    pub fn with_quantization(
        channel: LogNormalShadowing,
        mut positions: Vec<Position>,
        capture: bool,
        mut rng: StdRng,
        backend: MediumBackend,
        quantum: Meters,
    ) -> Self {
        let n = positions.len();
        let states = vec![PhyState::default(); n];
        let sigma = channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        let relevance_floor = NOISE_FLOOR + Db::new(-RELEVANCE_MARGIN_DB);
        let relevance_range = channel.range_for_threshold(relevance_floor);
        // The skip radius inverts the floor minus the largest possible
        // up-fade; the relative inflation dwarfs the rounding noise
        // between this inversion and the fill path's `link_mean_at`, so
        // the squared-distance rejection can never hide a relevant link.
        let overflow_skip = if slow > 0.0 {
            let deepest = relevance_floor + Db::new(-(SLOW_CLAMP_SIGMA * slow));
            channel.range_for_threshold(deepest).value() * (1.0 + 1e-9)
        } else {
            relevance_range.value()
        };
        // Seed-derivation order matters for artifact stability: the
        // slow-fade seed draws first, so re-keying the per-frame
        // streams never perturbed the per-link slow fades.
        let link_seed = rng.gen::<u64>();
        let fade_seed = rng.gen::<u64>();
        let hazard_seed = rng.gen::<u64>();
        let q = quantum.value().max(0.0);
        let (mut qx, mut qy) = (Vec::new(), Vec::new());
        if q > 0.0 {
            qx.reserve(n);
            qy.reserve(n);
            for p in &mut positions {
                let (ix, iy) = ((p.x / q).round() as i64, (p.y / q).round() as i64);
                *p = Position::new(ix as f64 * q, iy as f64 * q);
                qx.push(ix);
                qy.push(iy);
            }
        }
        let grid = Grid::new(&positions, relevance_range);
        let mut medium = Medium {
            channel,
            positions,
            capture,
            backend,
            inband_announce: false,
            states,
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_gen: 0,
            link_seed,
            fade_seed,
            hazard_seed,
            node_epoch: vec![0; n],
            link_tag: vec![STALE; n * n],
            link_dbm: vec![f64::NEG_INFINITY; n * n],
            link_quant: vec![QuantizedPower::ZERO; n * n],
            link_relevant: vec![false; n * n],
            slow_sigma: slow,
            fast_sigma: Db::new(fast),
            relevance_floor,
            relevance_range,
            overflow_skip,
            quantum: q,
            qx,
            qy,
            grid,
            overflow: vec![Vec::new(); n],
            scratch: Vec::new(),
            stats: MediumStats::default(),
            counters: MediumCounters::default(),
            observe: false,
            cs_threshold: Dbm::MIN.to_milliwatts(),
            cs_busy: vec![false; n],
            events: Vec::new(),
            ledger_check_nanos: 0,
        };
        // Bootstrap the overflow lists (link means stay lazy): ascending
        // pair order keeps every list sorted.
        let skip2 = medium.overflow_skip * medium.overflow_skip;
        for a in 0..n {
            for b in (a + 1)..n {
                let (pa, pb) = (medium.positions[a], medium.positions[b]);
                let (dx, dy) = (pa.x - pb.x, pa.y - pb.y);
                if dx * dx + dy * dy > skip2 {
                    continue;
                }
                let d = pa.distance_to(pb);
                if d.value() > medium.relevance_range.value()
                    && medium.compute_link_dbm(a, b) >= medium.relevance_floor.value()
                {
                    medium.overflow[a].push(b as u32);
                    medium.overflow[b].push(a as u32);
                }
            }
        }
        medium
    }

    /// Enables in-band header announcements.
    pub fn set_inband_announce(&mut self, enabled: bool) {
        self.inband_announce = enabled;
    }

    /// Enables instrumentation-event emission; carrier-sense busy/idle
    /// transitions are judged against the CCA threshold `t_cs`.
    pub fn enable_observation(&mut self, t_cs: Dbm) {
        self.observe = true;
        self.cs_threshold = t_cs.to_milliwatts();
    }

    /// Drains the events accumulated since the last call (always empty
    /// unless [`Medium::enable_observation`] was called).
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Hands a drained buffer back so its capacity is reused.
    pub fn restore_event_buffer(&mut self, mut buf: Vec<SimEvent>) {
        if self.events.is_empty() {
            buf.clear();
            self.events = buf;
        }
    }

    /// Wall-clock nanoseconds spent in ledger verification (debug
    /// builds; 0 in release). Surfaced by the run profiler only — never
    /// part of a report.
    pub fn ledger_check_nanos(&self) -> u64 {
        self.ledger_check_nanos
    }

    /// The backend in force.
    pub fn backend(&self) -> MediumBackend {
        self.backend
    }

    /// Deterministic link-cache and culling counters. Backend-dependent
    /// by design; never part of a report.
    pub fn counters(&self) -> MediumCounters {
        self.counters
    }

    /// Mean received power below which a link contributes exactly zero.
    pub fn relevance_floor(&self) -> Dbm {
        self.relevance_floor
    }

    /// Distance at which the channel's mean power reaches the relevance
    /// floor — the grid cell side.
    pub fn relevance_range(&self) -> Meters {
        self.relevance_range
    }

    /// Emits a carrier-sense transition event for every node whose
    /// sensed power crossed the CCA threshold since the last pass.
    fn emit_cs_transitions(&mut self) {
        for n in 0..self.states.len() {
            let busy = self.sensed(NodeId(n)).value() >= self.cs_threshold.value();
            if busy != self.cs_busy[n] {
                self.cs_busy[n] = busy;
                self.events.push(if busy {
                    SimEvent::CsBusy { node: NodeId(n) }
                } else {
                    SimEvent::CsIdle { node: NodeId(n) }
                });
            }
        }
    }

    /// Mean received power of the link `{a, b}` in dBm at the endpoints'
    /// current positions and epochs: mean path loss (behind the 1 m
    /// near-field clamp of
    /// [`link_mean_at`](LogNormalShadowing::link_mean_at)) plus the
    /// link's slow-fade draw. A pure function — the lazy cache fill, the
    /// `&self` relevance fallback and the overflow scan all evaluate
    /// exactly this expression, so they can never disagree.
    fn compute_link_dbm(&self, a: usize, b: usize) -> f64 {
        let d = self.positions[a].distance_to(self.positions[b]);
        let mut dbm = self.channel.link_mean_at(d).value();
        if self.slow_sigma > 0.0 {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let esum = self.node_epoch[a] as u64 + self.node_epoch[b] as u64;
            dbm += self.slow_sigma * link_slow_normal(self.link_seed, lo as u32, hi as u32, esum);
        }
        dbm
    }

    /// Freshens the ordered link `src → dst` if its epoch tag is stale;
    /// the reciprocal entry is refreshed by the same fill.
    #[inline]
    fn ensure_fresh(&mut self, src: usize, dst: usize) {
        let n = self.positions.len();
        let tag = self.node_epoch[src] as u64 + self.node_epoch[dst] as u64;
        if self.link_tag[src * n + dst] != tag {
            self.fill_link(src, dst, tag);
        }
    }

    /// Recomputes one link and stores it under both ordered indices. The
    /// exact ledger quantization (the `powf`-heavy conversion) is only
    /// paid for relevant links — sub-floor entries never reach the
    /// ledger, so their quantized power is dead weight.
    fn fill_link(&mut self, src: usize, dst: usize, tag: u64) {
        self.counters.cache_recomputes += 1;
        let n = self.positions.len();
        let dbm = self.compute_link_dbm(src, dst);
        let relevant = dbm >= self.relevance_floor.value();
        let quant = if relevant {
            QuantizedPower::from_milliwatts(Dbm::new(dbm).to_milliwatts())
        } else {
            QuantizedPower::ZERO
        };
        for idx in [src * n + dst, dst * n + src] {
            self.link_tag[idx] = tag;
            self.link_dbm[idx] = dbm;
            self.link_quant[idx] = quant;
            self.link_relevant[idx] = relevant;
        }
    }

    /// Moves a node. The target snaps onto the position quantum: a move
    /// that stays inside the mover's current quantum cell coalesces into
    /// a no-op. An applied move stores the snapped position, bumps the
    /// mover's position epoch — lazily invalidating exactly the mover's
    /// row and column of the link cache, which refill on first use (a
    /// mover meets new walls, so its links draw fresh slow fades) — then
    /// re-files the node in the grid and refreshes the overflow lists on
    /// both sides of every affected pair. Transmissions already on the
    /// air keep the powers they were drawn with.
    pub fn set_position(&mut self, node: NodeId, to: Position) {
        let to = if self.quantum > 0.0 {
            let ix = (to.x / self.quantum).round() as i64;
            let iy = (to.y / self.quantum).round() as i64;
            if ix == self.qx[node.0] && iy == self.qy[node.0] {
                self.counters.moves_coalesced += 1;
                return;
            }
            self.qx[node.0] = ix;
            self.qy[node.0] = iy;
            Position::new(ix as f64 * self.quantum, iy as f64 * self.quantum)
        } else {
            to
        };
        self.counters.moves_applied += 1;
        self.positions[node.0] = to;
        self.node_epoch[node.0] += 1;
        self.grid.move_node(node.0, to);
        self.refresh_overflow(node.0);
    }

    /// Rebuilds `node`'s overflow list and updates its membership in
    /// every affected peer's list — both sides of each pair, so no stale
    /// entry referencing the mover survives anywhere. Far nodes are
    /// rejected on the squared distance against the hard skip radius
    /// before any path-loss math, and peer lists are touched only where
    /// membership actually flipped: the lists are kept symmetric
    /// (`b ∈ overflow[a]` ⟺ `a ∈ overflow[b]`), so the flips are
    /// exactly the differences between the old and new lists, found by
    /// one merge walk over the two sorted vectors.
    fn refresh_overflow(&mut self, node: usize) {
        let n = self.positions.len();
        let old = std::mem::take(&mut self.overflow[node]);
        let mut new = Vec::with_capacity(old.len());
        let p = self.positions[node];
        let skip2 = self.overflow_skip * self.overflow_skip;
        let range = self.relevance_range.value();
        // Ascending scan order keeps the rebuilt list sorted.
        for other in 0..n {
            if other == node {
                continue;
            }
            let q = self.positions[other];
            let (dx, dy) = (p.x - q.x, p.y - q.y);
            if dx * dx + dy * dy > skip2 {
                continue;
            }
            let d = p.distance_to(q);
            if d.value() > range
                && self.compute_link_dbm(node, other) >= self.relevance_floor.value()
            {
                new.push(other as u32);
            }
        }
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            // A peer only in `old` dropped out; one only in `new` joined.
            let dropped = match (old.get(i), new.get(j)) {
                (Some(&o), Some(&w)) if o == w => {
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(&o), Some(&w)) => o < w,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if dropped {
                let peers = &mut self.overflow[old[i] as usize];
                if let Ok(k) = peers.binary_search(&(node as u32)) {
                    peers.remove(k);
                }
                i += 1;
            } else {
                let peers = &mut self.overflow[new[j] as usize];
                if let Err(k) = peers.binary_search(&(node as u32)) {
                    peers.insert(k, node as u32);
                }
                j += 1;
            }
        }
        self.overflow[node] = new;
    }

    /// Whether the link `a → b` clears the relevance floor *now*. Served
    /// from the cache when fresh; otherwise recomputed functionally
    /// (identical expression to the fill, so the answer matches what a
    /// fill would store) without touching the cache — this accessor is
    /// `&self`.
    fn link_relevant_now(&self, a: usize, b: usize) -> bool {
        let n = self.positions.len();
        let tag = self.node_epoch[a] as u64 + self.node_epoch[b] as u64;
        if self.link_tag[a * n + b] == tag {
            self.link_relevant[a * n + b]
        } else {
            self.compute_link_dbm(a, b) >= self.relevance_floor.value()
        }
    }

    /// The candidate receivers the culling layer enumerates for a
    /// transmission from `node`: the 3 × 3 grid neighbourhood plus the
    /// overflow list, sorted and deduplicated, before the relevance
    /// filter. A superset of the relevant set by construction (the
    /// property test pins this).
    pub fn candidate_receivers(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.grid.gather_neighbors(node.0, &mut out);
        out.extend_from_slice(&self.overflow[node.0]);
        out.sort_unstable();
        out.dedup();
        out.retain(|&j| j as usize != node.0);
        out.into_iter().map(|j| NodeId(j as usize)).collect()
    }

    /// The receivers above the relevance floor for a transmission from
    /// `node`, ascending — the set both backends actually visit.
    pub fn relevant_receivers(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.positions.len())
            .filter(|&j| j != node.0 && self.link_relevant_now(node.0, j))
            .map(NodeId)
            .collect()
    }

    /// The overflow list of `node`: peers kept relevant beyond the grid
    /// reach by an up-fade, ascending. Exposed so the staleness property
    /// tests can compare the maintained lists against a from-scratch
    /// recomputation.
    pub fn overflow_peers(&self, node: NodeId) -> Vec<NodeId> {
        self.overflow[node.0]
            .iter()
            .map(|&j| NodeId(j as usize))
            .collect()
    }

    /// Pre-warms `node`'s outgoing link-cache row: freshens every
    /// directed entry `node → j` now instead of lazily at the next
    /// `begin()`. Fills are pure functions of the position epochs, so a
    /// warmed run produces bit-identical powers, events and reports to a
    /// lazy one — only the `cache_recomputes` timing moves. The
    /// differential harness drives both fill orders through this hook;
    /// a sharded engine can use it to warm a shard before its first
    /// frame.
    pub fn warm_links(&mut self, node: NodeId) {
        for j in 0..self.positions.len() {
            if j != node.0 {
                self.ensure_fresh(node.0, j);
            }
        }
    }

    /// Total ambient power currently sensed at `node` (noise floor plus
    /// every active transmission, excluding the node's own). A pure
    /// function of the active-transmission set — see the module docs.
    pub fn sensed(&self, node: NodeId) -> MilliWatts {
        NOISE_FLOOR.to_milliwatts() + self.states[node.0].incoming.to_milliwatts()
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.states[node.0].transmitting.is_some()
    }

    /// Whether `node` is currently locked onto (decoding) a frame —
    /// the preamble-detection component of carrier sensing.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.states[node.0].lock.is_some()
    }

    /// Number of transmissions currently on the air.
    pub fn active_count(&self) -> usize {
        self.live
    }

    /// Counters of capture, hazard and ledger-verification events.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Recomputes `node`'s incoming power from scratch over the active
    /// transmissions — the reference the incremental ledger must match.
    /// Culled entries read back as exact zeros, so the recomputation is
    /// backend-agnostic.
    fn recomputed_incoming(&self, node: usize) -> QuantizedPower {
        self.slots
            .iter()
            .flatten()
            .filter(|a| a.frame.src.0 != node)
            .map(|a| a.powers.at(node))
            .sum()
    }

    /// Largest divergence (in ledger grains) between any node's
    /// incremental ledger and a from-scratch recomputation over the
    /// active set. The ledger invariant says this is always 0; the
    /// long-run drift test pins that down.
    pub fn ledger_divergence_grains(&self) -> u128 {
        (0..self.positions.len())
            .map(|n| {
                self.states[n]
                    .incoming
                    .abs_diff(self.recomputed_incoming(n))
            })
            .max()
            .unwrap_or(0)
    }

    /// Debug-build ledger verification, run after every mutation. The
    /// wall-clock cost is accumulated for the run profiler.
    fn debug_check_ledger(&mut self) {
        if cfg!(debug_assertions) {
            // simlint: allow(determinism) — wall clock only times the audit, never feeds sim state
            let started = std::time::Instant::now();
            self.stats.ledger_checks += 1;
            let divergence = self.ledger_divergence_grains();
            debug_assert_eq!(divergence, 0, "power ledger diverged from the active set");
            self.ledger_check_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Allocates a slab slot for a new transmission and returns its id.
    fn allocate(&mut self, active: ActiveTx) -> TxId {
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        assert!(slot < (1usize << SLOT_BITS), "transmission slab exhausted");
        let id = TxId((self.next_gen << SLOT_BITS) | slot as u64);
        self.next_gen += 1;
        self.slots[slot] = Some(ActiveTx { id, ..active });
        self.live += 1;
        id
    }

    /// Looks up an active transmission by id.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air.
    fn active(&self, tx: TxId) -> &ActiveTx {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            // simlint: allow(panic-policy) — documented invariant: ending a tx that is not on the air corrupts hazard integrals, so refuse loudly
            .unwrap_or_else(|| panic!("transmission {tx:?} not on the air"))
    }

    /// Draws the per-receiver powers of a transmission from `src` under
    /// the backend in force, keyed by the frame counter. Both arms run
    /// the same two-phase shape: freshen the row, then one branch-light
    /// batched sweep over the SoA link arrays. Every fade is a pure
    /// function of `(fade_seed, src → rx, frame_ctr)`, so the sweep
    /// order — and the backend — cannot change a single value.
    fn draw_powers(&mut self, src: usize, frame_ctr: u64) -> PowerMap {
        let n = self.positions.len();
        let sigma = self.fast_sigma.value();
        match self.backend {
            MediumBackend::Exhaustive => {
                self.counters.cull_candidates += (n - 1) as u64;
                for j in 0..n {
                    if j != src {
                        self.ensure_fresh(src, j);
                    }
                }
                // Batched sweep. The diagonal entry is never filled, so
                // `link_relevant[src*n+src]` is false and the sweep
                // needs no self-exclusion branch.
                let mut v = vec![QuantizedPower::ZERO; n];
                let mut relevant = 0u64;
                if sigma <= 0.0 {
                    // A fading deviation is non-negative; zero disables
                    // fast fading and the cache holds the exact power.
                    for (j, slot) in v.iter_mut().enumerate() {
                        let idx = src * n + j;
                        if self.link_relevant[idx] {
                            relevant += 1;
                            *slot = self.link_quant[idx];
                        }
                    }
                } else {
                    for (j, slot) in v.iter_mut().enumerate() {
                        let idx = src * n + j;
                        if self.link_relevant[idx] {
                            relevant += 1;
                            let h = keyed_state(
                                self.fade_seed,
                                link_key(src as u32, j as u32),
                                frame_ctr,
                            );
                            let fast = Db::new(sigma * normal_from_state(h));
                            *slot = QuantizedPower::from_milliwatts(
                                (Dbm::new(self.link_dbm[idx]) + fast).to_milliwatts(),
                            );
                        }
                    }
                }
                self.counters.cull_relevant += relevant;
                self.counters.cache_lookups += relevant;
                PowerMap::Dense(v)
            }
            MediumBackend::Culled => {
                let mut targets = std::mem::take(&mut self.scratch);
                targets.clear();
                self.grid.gather_neighbors(src, &mut targets);
                targets.extend_from_slice(&self.overflow[src]);
                targets.sort_unstable();
                targets.dedup();
                targets.retain(|&j| j as usize != src);
                self.counters.cull_candidates += targets.len() as u64;
                for &j in &targets {
                    self.ensure_fresh(src, j as usize);
                }
                let mut v = Vec::with_capacity(targets.len());
                if sigma <= 0.0 {
                    for &j in &targets {
                        let idx = src * n + j as usize;
                        if self.link_relevant[idx] {
                            v.push((j, self.link_quant[idx]));
                        }
                    }
                } else {
                    for &j in &targets {
                        let idx = src * n + j as usize;
                        if self.link_relevant[idx] {
                            let h = keyed_state(self.fade_seed, link_key(src as u32, j), frame_ctr);
                            let fast = Db::new(sigma * normal_from_state(h));
                            v.push((
                                j,
                                QuantizedPower::from_milliwatts(
                                    (Dbm::new(self.link_dbm[idx]) + fast).to_milliwatts(),
                                ),
                            ));
                        }
                    }
                }
                let relevant = v.len() as u64;
                self.counters.cull_relevant += relevant;
                self.counters.cache_lookups += relevant;
                self.scratch = targets;
                PowerMap::Sparse(v)
            }
        }
    }

    /// Receiver-side bookkeeping when a transmission starts: ledger
    /// credit, lock acquisition or preamble capture, and the
    /// sense/announce notes. `power` is always non-zero (culled
    /// receivers are never visited).
    #[allow(clippy::too_many_arguments)]
    fn receive_begin(
        &mut self,
        n: usize,
        power: QuantizedPower,
        id: TxId,
        frame: Frame,
        now: SimTime,
        end: SimTime,
        notes: &mut Vec<(NodeId, PhyNote)>,
        captured: &mut Vec<usize>,
    ) {
        let p = power.to_milliwatts();
        let observe = self.observe;
        let capture = self.capture;
        let state = &mut self.states[n];
        let ambient = NOISE_FLOOR.to_milliwatts() + state.incoming.to_milliwatts();
        let threshold = frame.rate.min_sinr().to_linear();
        let decodable = state.transmitting.is_none() && p.value() / ambient.value() >= threshold;
        state.incoming += power;
        let incoming_now = state.incoming.to_milliwatts();
        let mut announced = false;
        state.lock = match state.lock {
            None if decodable => {
                announced = true;
                Some(RxLock {
                    tx: id,
                    signal: p,
                    interference: ambient,
                    hazard: 0.0,
                    since: now,
                    rate: frame.rate,
                })
            }
            None => None,
            Some(mut lock) => {
                // Close the exposure span at the old interference
                // level, then raise it.
                lock.accrue(now);
                lock.interference = NOISE_FLOOR.to_milliwatts() + incoming_now - lock.signal;
                // Preamble capture: the new frame is decodable even
                // over the locked signal.
                if capture && decodable {
                    announced = true;
                    self.stats.captures += 1;
                    if observe {
                        captured.push(n);
                    }
                    Some(RxLock {
                        tx: id,
                        signal: p,
                        interference: ambient,
                        hazard: 0.0,
                        since: now,
                        rate: frame.rate,
                    })
                } else {
                    Some(lock)
                }
            }
        };
        if announced
            && self.inband_announce
            && matches!(frame.body, crate::frame::FrameBody::Data { .. })
        {
            notes.push((
                NodeId(n),
                PhyNote::Announce {
                    link: (frame.src, frame.dst),
                    data_end: end,
                },
            ));
        }
        notes.push((NodeId(n), PhyNote::Sense));
    }

    /// Puts `frame` on the air from its source at `now`, lasting until
    /// `end`. Returns the transmission id and the per-node notifications.
    /// Only receivers above the relevance floor are visited — they are
    /// the same set under either backend.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting, or if `end` is not
    /// after `now`.
    pub fn begin(
        &mut self,
        frame: Frame,
        now: SimTime,
        end: SimTime,
    ) -> (TxId, Vec<(NodeId, PhyNote)>) {
        let src = frame.src.0;
        assert!(
            self.states[src].transmitting.is_none(),
            "node {} started a second transmission",
            frame.src
        );
        assert!(
            end > now,
            "transmission must end after it begins ({now} .. {end})"
        );

        // One fading draw per relevant receiver, consistent for the
        // frame's whole lifetime, keyed by the generation this frame is
        // about to take (`allocate` embeds the same value in the TxId,
        // which is how `receive_end` recovers the hazard key).
        let frame_ctr = self.next_gen;
        let powers = self.draw_powers(src, frame_ctr);

        let id = self.allocate(ActiveTx {
            id: TxId(0),
            frame,
            end,
            powers: powers.clone(),
        });

        self.states[src].transmitting = Some(id);
        // A transmitting node cannot keep receiving: it loses any lock.
        self.states[src].lock = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxBegin {
                src: frame.src,
                dst: frame.dst,
                kind: frame.kind(),
                rate: frame.rate,
            });
        }

        let mut notes = Vec::new();
        // Captured receivers, recorded as events once the per-node
        // borrow below is released.
        let mut captured: Vec<usize> = Vec::new();
        match &powers {
            PowerMap::Dense(v) => {
                for (n, &power) in v.iter().enumerate() {
                    if n == src || power == QuantizedPower::ZERO {
                        continue;
                    }
                    self.receive_begin(n, power, id, frame, now, end, &mut notes, &mut captured);
                }
            }
            PowerMap::Sparse(v) => {
                for &(n, power) in v {
                    self.receive_begin(
                        n as usize,
                        power,
                        id,
                        frame,
                        now,
                        end,
                        &mut notes,
                        &mut captured,
                    );
                }
            }
        }

        if observe {
            for n in captured {
                self.events.push(SimEvent::Capture {
                    node: NodeId(n),
                    src: frame.src,
                });
            }
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        (id, notes)
    }

    /// Receiver-side bookkeeping when a transmission ends: ledger
    /// debit, lock resolution (survival draw) and the sense note.
    fn receive_end(
        &mut self,
        n: usize,
        power: QuantizedPower,
        id: TxId,
        frame: Frame,
        now: SimTime,
        notes: &mut Vec<(NodeId, PhyNote)>,
    ) {
        let observe = self.observe;
        self.states[n].incoming -= power;
        if let Some(mut lock) = self.states[n].lock {
            if lock.tx == id {
                // Close the final exposure span and draw survival.
                lock.accrue(now);
                self.states[n].lock = None;
                let survive = (-lock.hazard).exp();
                // The survival draw is keyed by the frame's generation
                // (recovered from the TxId) and the directed link, so it
                // is independent of the order transmissions resolve in.
                let draw = uniform_from_state(keyed_state(
                    self.hazard_seed,
                    link_key(frame.src.0 as u32, n as u32),
                    id.0 >> SLOT_BITS,
                ));
                if survive >= 1.0 - 1e-12 || draw < survive {
                    if observe {
                        let sinr_db =
                            10.0 * (lock.signal.value() / lock.interference.value()).log10();
                        self.events.push(SimEvent::RxResolved {
                            node: NodeId(n),
                            src: frame.src,
                            rssi_dbm: lock.signal.to_dbm().value(),
                            sinr_db,
                        });
                    }
                    notes.push((
                        NodeId(n),
                        PhyNote::Rx {
                            frame,
                            rssi: lock.signal.to_dbm(),
                        },
                    ));
                } else {
                    self.stats.hazard_drops += 1;
                    if observe {
                        self.events.push(SimEvent::HazardDrop {
                            node: NodeId(n),
                            src: frame.src,
                        });
                    }
                }
            } else {
                // The locked frame's interference just dropped: close
                // its span at the old level.
                lock.accrue(now);
                lock.interference = NOISE_FLOOR.to_milliwatts()
                    + self.states[n].incoming.to_milliwatts()
                    - lock.signal;
                self.states[n].lock = Some(lock);
            }
        }
        notes.push((NodeId(n), PhyNote::Sense));
    }

    /// Takes a transmission off the air at `now`, resolving receptions.
    /// Returns per-node notifications (`Rx` for a successful receiver,
    /// `TxDone` for the sender, `Sense` for everyone whose ambient power
    /// dropped). Receivers the begin culled to exact zero are skipped —
    /// their ambient power provably did not change.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air, or if `now` differs from the
    /// end time the transmission was scheduled with — ending a frame at
    /// the wrong instant would corrupt every overlapping hazard
    /// integral, so the medium refuses instead of silently accepting it.
    pub fn end(&mut self, tx: TxId, now: SimTime) -> Vec<(NodeId, PhyNote)> {
        let scheduled = self.active(tx).end;
        assert_eq!(
            scheduled, now,
            "Medium::end({tx:?}) at {now}, but the transmission is scheduled to end at {scheduled}"
        );
        let slot = tx.slot();
        let ActiveTx {
            id, frame, powers, ..
            // simlint: allow(panic-policy) — active(tx) above already proved the slot is occupied
        } = self.slots[slot].take().expect("checked by active()");
        self.free_slots.push(slot as u32);
        self.live -= 1;

        let src = frame.src.0;
        self.states[src].transmitting = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxEnd {
                src: frame.src,
                kind: frame.kind(),
            });
        }

        let mut notes = Vec::new();
        match &powers {
            PowerMap::Dense(v) => {
                for (n, &power) in v.iter().enumerate() {
                    if n == src || power == QuantizedPower::ZERO {
                        continue;
                    }
                    self.receive_end(n, power, id, frame, now, &mut notes);
                }
            }
            PowerMap::Sparse(v) => {
                for &(n, power) in v {
                    self.receive_end(n as usize, power, id, frame, now, &mut notes);
                }
            }
        }
        notes.push((NodeId(src), PhyNote::TxDone { frame }));
        if observe {
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        notes
    }

    /// The scheduled end time of an active transmission.
    pub fn end_time(&self, tx: TxId) -> Option<SimTime> {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            .map(|a| a.end)
    }

    /// The propagation channel in force.
    pub fn channel(&self) -> &LogNormalShadowing {
        &self.channel
    }

    /// Position of a node as the physics see it — snapped onto the
    /// position quantum.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::time::SimDuration;
    use comap_radio::rates::Rate;
    use comap_radio::units::Db;
    use rand::SeedableRng;

    use crate::frame::FrameBody;

    /// A deterministic (σ = 0) medium: A at 0, B at 10 m, C at 200 m.
    fn medium() -> Medium {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(200.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        )
    }

    fn data(src: usize, dst: usize) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            body: FrameBody::Data {
                seq: 0,
                payload_bytes: 500,
                retry: false,
            },
            rate: Rate::Mbps11,
        }
    }

    fn end_at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn clean_frame_is_delivered() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx, end_at(1000));
        let rx = notes
            .iter()
            .find(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. }));
        assert!(rx.is_some(), "B must receive: {notes:?}");
        assert!(notes
            .iter()
            .any(|(n, note)| *n == NodeId(0) && matches!(note, PhyNote::TxDone { .. })));
    }

    #[test]
    fn sensed_power_rises_and_falls_exactly() {
        let mut m = medium();
        let idle = m.sensed(NodeId(1));
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert!(m.sensed(NodeId(1)).value() > idle.value() * 100.0);
        m.end(tx, end_at(1000));
        // The exact ledger restores the idle level bit for bit — not
        // merely within a tolerance.
        assert_eq!(m.sensed(NodeId(1)), idle);
    }

    #[test]
    fn remote_node_barely_senses() {
        let mut m = medium();
        let (_tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        // At 200 m with α = 2.9: ~ −107 dBm, far below the −95 dBm floor
        // yet above the −120 dBm relevance floor, so it still enters the
        // ledger.
        let sensed = m.sensed(NodeId(2)).to_dbm();
        assert!(sensed.value() < -94.0, "sensed = {sensed}");
        assert!(
            m.sensed(NodeId(2)).value() > NOISE_FLOOR.to_milliwatts().value(),
            "a −107 dBm link is relevant and must reach the ledger"
        );
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = medium();
        let (tx_b, _) = m.begin(data(1, 2), SimTime::ZERO, end_at(1000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx_a, end_at(1000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "B was transmitting and must miss A's frame"
        );
        m.end(tx_b, end_at(1000));
    }

    #[test]
    fn collision_corrupts_the_weaker_frame() {
        // C transmits to B from 190 m — far too weak; then A's strong
        // frame arrives and (with capture) steals the lock.
        let mut m = medium();
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            notes_a
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "A's frame captures: {notes_a:?}"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "C's frame is lost"
        );
    }

    #[test]
    fn without_capture_the_first_lock_sticks_and_dies() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(30.0, 0.0),
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        // C at 30 m from B(10 m): decodable alone. Then A's much stronger
        // frame arrives: no capture, so the lock stays with C and is
        // corrupted by A.
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            !notes_a
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "A must not be received without capture"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "C was corrupted by A"
        );
    }

    #[test]
    fn interference_high_water_mark_outlives_the_interferer() {
        // Interferer overlaps only the first quarter of the frame; the
        // frame must still be judged by the worst-case overlap. Capture
        // is off so the lock provably stays with the first frame.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),  // A: sender
                Position::new(30.0, 0.0), // B: receiver (30 m)
                Position::new(32.0, 0.0), // C: close interferer
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(2000));
        let (tx_c, _) = m.begin(data(2, 0), SimTime::ZERO, end_at(500));
        m.end(tx_c, end_at(500)); // interferer gone long before the frame ends
        let notes = m.end(tx_a, end_at(2000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "frame must be corrupted by the transient interferer"
        );
        assert!(
            m.stats().hazard_drops >= 1,
            "the corruption shows up in the counters"
        );
    }

    #[test]
    #[should_panic(expected = "second transmission")]
    fn double_transmit_panics() {
        let mut m = medium();
        let _ = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.begin(data(0, 2), SimTime::ZERO, end_at(1000));
    }

    #[test]
    #[should_panic(expected = "scheduled to end at")]
    fn ending_at_the_wrong_time_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.end(tx, end_at(900));
    }

    #[test]
    #[should_panic(expected = "not on the air")]
    fn ending_twice_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        let _ = m.end(tx, end_at(1000));
    }

    #[test]
    fn slab_slots_are_reused_without_id_aliasing() {
        let mut m = medium();
        let (tx1, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx1, end_at(1000));
        let (tx2, _) = m.begin(data(0, 1), end_at(1000), end_at(2000));
        assert_ne!(tx1, tx2, "generations keep reused slots distinguishable");
        assert_eq!(m.end_time(tx1), None, "the ended id is stale");
        assert_eq!(m.end_time(tx2), Some(end_at(2000)));
        assert_eq!(m.active_count(), 1);
        m.end(tx2, end_at(2000));
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn capture_shows_up_in_the_counters() {
        // C at 40 m (30 m from B): decodable alone (≈ −83 dBm, 12 dB over
        // the floor) but weak enough that A's frame (−69 dBm from 10 m)
        // clears the 11 Mbps threshold over it and steals the lock.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(40.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        );
        let (_tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        assert_eq!(m.stats().captures, 0);
        let (_tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert_eq!(m.stats().captures, 1, "A's frame captures B's lock");
    }

    #[test]
    fn ledger_matches_recomputation_through_churn() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..6)
            .map(|i| Position::new(10.0 * i as f64, 3.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(3));
        let mut t = 0u64;
        for round in 0..200 {
            let src = round % 6;
            let dst = (round + 1) % 6;
            let (tx, _) = m.begin(data(src, dst), end_at(t), end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            m.end(tx, end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            t += 100;
        }
    }

    /// A far node (beyond the relevance floor) must see *exactly* no
    /// effect: no ledger grains, no sense note, no fading draw.
    #[test]
    fn sub_floor_link_contributes_exactly_nothing() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        for backend in [MediumBackend::Exhaustive, MediumBackend::Culled] {
            let mut m = Medium::with_backend(
                chan,
                vec![
                    Position::new(0.0, 0.0),
                    Position::new(10.0, 0.0),
                    Position::new(5_000.0, 0.0), // ≈ −147 dBm mean: culled
                ],
                true,
                StdRng::seed_from_u64(1),
                backend,
            );
            let idle = m.sensed(NodeId(2));
            let (tx, notes) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
            assert_eq!(
                m.sensed(NodeId(2)),
                idle,
                "{backend:?}: ledger must not move"
            );
            assert!(
                !notes.iter().any(|(n, _)| *n == NodeId(2)),
                "{backend:?}: no note for a culled receiver"
            );
            let notes = m.end(tx, end_at(1000));
            assert!(!notes.iter().any(|(n, _)| *n == NodeId(2)));
            assert_eq!(m.sensed(NodeId(2)), idle);
        }
    }

    /// The candidate set of the culled gather is a superset of the
    /// relevant set, before and after movement.
    #[test]
    fn candidates_cover_the_relevant_set_across_moves() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..12)
            .map(|i| Position::new(450.0 * (i % 4) as f64, 600.0 * (i / 4) as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(9));
        for step in 0..8 {
            for node in 0..12 {
                let cand = m.candidate_receivers(NodeId(node));
                for r in m.relevant_receivers(NodeId(node)) {
                    assert!(
                        cand.contains(&r),
                        "step {step}: node {node} relevant {r} missing from {cand:?}"
                    );
                }
            }
            let mover = NodeId(step % 12);
            m.set_position(mover, Position::new(37.0 * step as f64, 210.0));
        }
    }

    /// The counter-based slow-fade stream is a pure function of its key
    /// with standard-normal moments (under the ±6σ clamp, which clips
    /// only ~2e-9 of the mass).
    #[test]
    fn link_slow_stream_is_standard_normal_and_keyed() {
        let n = 20_000u32;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for i in 0..n {
            let z = link_slow_normal(0xDEAD_BEEF, i % 97, 100 + i / 97, (i % 5) as u64);
            assert!(z.abs() <= SLOW_CLAMP_SIGMA, "clamped draw escaped: {z}");
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / f64::from(n);
        let var = sumsq / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
        // Same key, same draw; any key component changes the draw.
        assert_eq!(link_slow_normal(1, 2, 3, 4), link_slow_normal(1, 2, 3, 4));
        assert_ne!(link_slow_normal(1, 2, 3, 4), link_slow_normal(1, 2, 3, 5));
        assert_ne!(link_slow_normal(1, 2, 3, 4), link_slow_normal(2, 2, 3, 4));
        assert_ne!(link_slow_normal(1, 2, 3, 4), link_slow_normal(1, 3, 3, 4));
    }

    /// Satellite fix: both cache counters are in directed-link units.
    /// Construction computes nothing; the first read of a stale link is
    /// one recompute serving one lookup; the reciprocal direction and
    /// repeat reads are pure lookups.
    #[test]
    fn cache_counters_share_directed_link_units() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let n = 8usize;
        // All within ~65 m: every link stays relevant under any ±6σ
        // draw, so lookups track relevant receivers exactly.
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(9.0 * i as f64, 2.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(5));
        assert_eq!(m.counters().cache_recomputes, 0, "construction is lazy");
        assert_eq!(m.counters().cache_lookups, 0);

        // First transmission: every directed read misses and refills.
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        let c = m.counters();
        assert_eq!(c.cache_recomputes, (n - 1) as u64);
        assert_eq!(c.cache_lookups, (n - 1) as u64);

        // Repeat transmission: pure lookups.
        let (tx, _) = m.begin(data(0, 2), end_at(1000), end_at(2000));
        m.end(tx, end_at(2000));
        let c = m.counters();
        assert_eq!(c.cache_recomputes, (n - 1) as u64);
        assert_eq!(c.cache_lookups, 2 * (n - 1) as u64);

        // Reverse direction: the reciprocal fill already freshened
        // 1 → 0, so only the 6 links not touching node 0 refill.
        let (tx, _) = m.begin(data(1, 0), end_at(2000), end_at(3000));
        m.end(tx, end_at(3000));
        let c = m.counters();
        assert_eq!(c.cache_recomputes, 2 * (n - 1) as u64 - 1);
        assert_eq!(c.cache_lookups, 3 * (n - 1) as u64);
        assert!(c.cache_recomputes <= c.cache_lookups);
    }

    /// A move recomputes nothing by itself: it bumps the mover's epoch
    /// and the stale links refill on first use. Sub-quantum moves
    /// coalesce into true no-ops.
    #[test]
    fn moves_invalidate_lazily_and_micro_moves_coalesce() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let n = 8usize;
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(9.0 * i as f64, 2.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(5));
        // Warm the transmitter's row.
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        assert_eq!(m.counters().cache_recomputes, (n - 1) as u64);

        // An applied move: epoch bump only, no recomputation yet.
        m.set_position(NodeId(3), Position::new(5.0, 40.0));
        let c = m.counters();
        assert_eq!(c.moves_applied, 1);
        assert_eq!(c.cache_recomputes, (n - 1) as u64, "moves recompute lazily");

        // The next transmission from 0 refreshes exactly the 0 ↔ 3 link.
        let (tx, _) = m.begin(data(0, 1), end_at(1000), end_at(2000));
        m.end(tx, end_at(2000));
        let c = m.counters();
        assert_eq!(c.cache_recomputes, n as u64);
        assert_eq!(c.cache_lookups, 2 * (n - 1) as u64);

        // A sub-quantum wiggle (default quantum 1 m) coalesces: same
        // quantum cell, no epoch bump, nothing goes stale.
        m.set_position(NodeId(3), Position::new(5.2, 40.1));
        assert_eq!(m.counters().moves_coalesced, 1);
        assert_eq!(m.position(NodeId(3)), Position::new(5.0, 40.0));
        let (tx, _) = m.begin(data(0, 1), end_at(2000), end_at(3000));
        m.end(tx, end_at(3000));
        let c = m.counters();
        assert_eq!(c.cache_recomputes, n as u64, "coalesced move stays warm");
        assert!(c.cache_recomputes <= c.cache_lookups);
    }

    /// The overflow lists always equal a from-scratch recomputation of
    /// their membership predicate — in particular, moving a node purges
    /// every stale entry referencing it from *other* nodes' lists.
    #[test]
    fn overflow_lists_track_moves_symmetrically() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        // A line crossing several relevance ranges (~573 m): plenty of
        // beyond-range pairs whose membership hinges on the slow draw.
        let n = 10usize;
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(260.0 * i as f64, 35.0 * (i % 3) as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(23));
        let check = |m: &Medium, when: &str| {
            for a in 0..n {
                let expected: Vec<NodeId> = (0..n)
                    .filter(|&b| {
                        b != a
                            && m.position(NodeId(a))
                                .distance_to(m.position(NodeId(b)))
                                .value()
                                > m.relevance_range().value()
                            && m.relevant_receivers(NodeId(a)).contains(&NodeId(b))
                    })
                    .map(NodeId)
                    .collect();
                assert_eq!(
                    m.overflow_peers(NodeId(a)),
                    expected,
                    "{when}: node {a} overflow list diverged from brute force"
                );
            }
        };
        check(&m, "fresh");
        // March a node from one end of the line to the other and out:
        // entries referencing it must appear and vanish symmetrically.
        for (step, x) in [1500.0, 400.0, 2600.0, 9000.0, 130.0]
            .into_iter()
            .enumerate()
        {
            m.set_position(NodeId(2), Position::new(x, 20.0));
            check(&m, &format!("after move {step}"));
            let mover = NodeId((step * 3 + 1) % n);
            m.set_position(mover, Position::new(100.0 * step as f64, 333.0));
            check(&m, &format!("after counter-move {step}"));
        }
    }

    /// Both backends walk identical relevant sets and draw identical
    /// powers, so sensed() agrees bit for bit through churn and moves.
    #[test]
    fn backends_agree_through_churn_and_moves() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..10)
            .map(|i| Position::new(120.0 * (i % 5) as f64, 260.0 * (i / 5) as f64))
            .collect();
        let mut ex = Medium::with_backend(
            chan,
            positions.clone(),
            true,
            StdRng::seed_from_u64(11),
            MediumBackend::Exhaustive,
        );
        let mut cu = Medium::with_backend(
            chan,
            positions,
            true,
            StdRng::seed_from_u64(11),
            MediumBackend::Culled,
        );
        let mut t = 0u64;
        for round in 0..120usize {
            let src = round % 10;
            let dst = (round + 3) % 10;
            let (txe, ne) = ex.begin(data(src, dst), end_at(t), end_at(t + 90));
            let (txc, nc) = cu.begin(data(src, dst), end_at(t), end_at(t + 90));
            assert_eq!(ne, nc, "round {round}: begin notes diverged");
            if round % 7 == 0 {
                let to = Position::new(31.0 * round as f64 % 700.0, 130.0);
                let mover = NodeId((round + 5) % 10);
                if !ex.is_transmitting(mover) {
                    ex.set_position(mover, to);
                    cu.set_position(mover, to);
                }
            }
            let ne = ex.end(txe, end_at(t + 90));
            let nc = cu.end(txc, end_at(t + 90));
            assert_eq!(ne, nc, "round {round}: end notes diverged");
            for n in 0..10 {
                assert_eq!(ex.sensed(NodeId(n)), cu.sensed(NodeId(n)));
            }
            t += 90;
        }
        assert_eq!(ex.stats(), cu.stats());
    }
}
