//! The shared radio medium: propagation, carrier sensing and reception.
//!
//! Every transmission draws one shadowing sample per receiver (paper
//! eq. 1); that same sample governs both carrier sensing and decoding of
//! the frame, so the channel is self-consistent for its duration.
//!
//! Reception follows the SINR-threshold capture model: a receiver locks
//! onto the first frame whose SINR against the current ambient power
//! clears the rate's minimum; the frame survives if its SINR against the
//! *worst* overlapping interference stays above that minimum. With
//! `capture` enabled, a later frame that is decodable *despite* the
//! currently locked signal steals the lock (preamble capture) — without
//! it, two saturated hidden flows annihilate each other completely, which
//! neither commodity hardware nor NS-2 reproduces.
//!
//! # The power ledger invariant
//!
//! The ambient power a node senses is a **pure function of the set of
//! transmissions currently on the air**: per-receiver powers are
//! quantized onto the exact integer grid of
//! [`QuantizedPower`](comap_radio::units::QuantizedPower) when a frame
//! starts, and the same grains are subtracted when it ends, so
//! [`Medium::sensed`] is bit-identical no matter how many frames have
//! come and gone in between. Debug builds verify the ledger against a
//! from-scratch recomputation after every [`Medium::begin`] /
//! [`Medium::end`]; release callers can do the same through
//! [`Medium::ledger_divergence_grains`].
//!
//! # The relevance floor and spatial culling
//!
//! A link whose cached mean received power sits below the *relevance
//! floor* ([`RELEVANCE_MARGIN_DB`] decibels under the thermal noise
//! floor) contributes **exactly zero** to every receiver-side quantity:
//! no fading draw, no ledger grains, no [`PhyNote::Sense`]. That rule is
//! part of the propagation model itself — both backends apply it to the
//! same cached means — which is what makes the two backends bit-identical
//! by construction:
//!
//! * [`MediumBackend::Exhaustive`] scans every node per transmission and
//!   keeps the dense per-node power vector (the reference algorithm).
//! * [`MediumBackend::Culled`] enumerates only the nodes in the 3 × 3
//!   grid-cell neighbourhood of the sender (cell side = the channel's
//!   relevance range) plus a per-node *overflow list* of links whose
//!   static shadowing draw keeps them relevant beyond that range, and
//!   stores powers sparsely.
//!
//! Both enumerations filter by the same relevance predicate in the same
//! ascending node order, so they consume identical RNG streams and move
//! identical grains. See DESIGN.md §7 for the derivation of the radius
//! and the exactness argument.

use rand::rngs::StdRng;
use rand::Rng;

use comap_mac::time::SimTime;
use comap_radio::pathloss::{sample_standard_normal, LogNormalShadowing};
use comap_radio::units::{Db, Dbm, Meters, MilliWatts, QuantizedPower};
use comap_radio::{Position, NOISE_FLOOR};

use crate::frame::{Frame, NodeId, TxId};
use crate::observe::SimEvent;
use crate::stats::MediumStats;

/// A notification the medium hands back to the simulator for a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyNote {
    /// The ambient power at the node changed; the MAC should re-evaluate
    /// carrier sense and any armed RSSI watchdog.
    Sense,
    /// A frame was received successfully (lock held to the end with
    /// sufficient SINR).
    Rx {
        /// The decoded frame.
        frame: Frame,
        /// Received signal strength of the frame.
        rssi: Dbm,
    },
    /// The node's own transmission left the air.
    TxDone {
        /// The transmitted frame.
        frame: Frame,
    },
    /// In-band announcement: the node locked onto a data frame whose
    /// MAC header (the paper's 4-byte-FCS variant) reveals the link and
    /// the remaining airtime.
    Announce {
        /// The announced link.
        link: (NodeId, NodeId),
        /// When the data frame ends.
        data_end: SimTime,
    },
}

/// How the medium enumerates the receivers of a transmission.
///
/// Both backends produce bit-identical results (same reports, same event
/// streams, same RNG consumption) — the culled backend is only allowed
/// to be *faster*. The differential harness in
/// `crates/sim/tests/differential.rs` pins that equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumBackend {
    /// Dense reference algorithm: every transmission visits all `n`
    /// nodes and carries an `n`-entry power vector.
    Exhaustive,
    /// Spatial culling: only grid-neighbour nodes (plus the overflow
    /// list) are visited, and powers are stored sparsely.
    Culled,
}

#[derive(Debug, Clone, Copy)]
struct RxLock {
    tx: TxId,
    signal: MilliWatts,
    /// Interference power during the current exposure span.
    interference: MilliWatts,
    /// Accumulated expected bit errors (`Σ BER(SINR) · bitrate · dt`).
    hazard: f64,
    /// Start of the current exposure span.
    since: SimTime,
    /// Bit rate of the locked frame (for the hazard integral).
    rate: comap_radio::rates::Rate,
}

/// Bit-error rate at `delta_db` decibels below the rate\'s minimum SINR:
/// `1e-5` at the threshold, doubling per dB below it, vanishing above.
/// The 8 000-bit scale of a data frame turns this into a sharp-but-
/// duration-sensitive corruption model.
fn bit_error_rate(delta_db: f64) -> f64 {
    (1e-5 * 2f64.powf(delta_db)).min(0.5)
}

impl RxLock {
    /// Accrues hazard for the span ending `now`, then resets the span.
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.since).as_secs_f64();
        if dt > 0.0 {
            let sinr_db = 10.0 * (self.signal.value() / self.interference.value()).log10();
            let delta = self.rate.min_sinr().value() - sinr_db;
            self.hazard += bit_error_rate(delta) * self.rate.bits_per_second() * dt;
        }
        self.since = now;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhyState {
    transmitting: Option<TxId>,
    /// Exact ledger of the ambient power arriving from every active
    /// transmission (own transmissions excluded).
    incoming: QuantizedPower,
    lock: Option<RxLock>,
}

/// Per-receiver powers of one active transmission. Dense under the
/// exhaustive backend (own and culled entries zero), sparse under the
/// culled backend (relevant receivers only, ascending by node). Both
/// describe the same function `node → grains`, so begin/end move
/// identical grains either way.
#[derive(Debug, Clone)]
enum PowerMap {
    /// Received power of this transmission at every node (own entry 0),
    /// pre-quantized so begin/end move identical grains.
    Dense(Vec<QuantizedPower>),
    /// `(node, power)` of every relevant receiver, ascending by node.
    Sparse(Vec<(u32, QuantizedPower)>),
}

impl PowerMap {
    /// Power delivered to `node` (zero when culled or the sender).
    fn at(&self, node: usize) -> QuantizedPower {
        match self {
            PowerMap::Dense(v) => v[node],
            PowerMap::Sparse(v) => v
                .binary_search_by_key(&(node as u32), |&(n, _)| n)
                .map(|i| v[i].1)
                .unwrap_or(QuantizedPower::ZERO),
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveTx {
    id: TxId,
    frame: Frame,
    end: SimTime,
    powers: PowerMap,
}

/// Cached mean received power of one ordered link: mean path loss at the
/// current distance plus the static per-run shadowing draw. Kept in both
/// domains so the σ = 0 fast path needs no `powf` at all.
#[derive(Debug, Clone, Copy)]
struct LinkMean {
    dbm: Dbm,
    quantized: QuantizedPower,
}

impl LinkMean {
    fn new(dbm: Dbm) -> Self {
        LinkMean {
            dbm,
            quantized: QuantizedPower::from_milliwatts(dbm.to_milliwatts()),
        }
    }
}

/// Per-frame fading deviation: for *static* nodes most of the shadowing
/// (obstructions, walls) does not change between frames; only a small
/// fast-fading component does. The per-link remainder is drawn once per
/// run, keeping the total variance at the channel\'s σ².
const FAST_SIGMA_DB: f64 = 1.5;

/// Margin below the thermal noise floor at which a link stops being
/// *relevant*: its mean received power can no longer flip a carrier-sense
/// comparison or perturb a SINR entry beyond the noise the comparison
/// already tolerates (a single sub-floor contribution shifts the ambient
/// sum by < 0.02 dB), so the model treats it as exactly zero. 25 dB puts
/// the floor at −120 dBm for the −95 dBm noise floor.
pub const RELEVANCE_MARGIN_DB: f64 = 25.0;

/// Largest number of grid cells per axis. Beyond this the cells simply
/// grow past the relevance range, which only ever *over*-includes
/// candidates — correctness never depends on the cap.
const MAX_CELLS_PER_AXIS: usize = 64;

/// Bits of a [`TxId`] used for the slab slot; the rest hold a
/// never-reused generation count, so a stale id can never alias a live
/// transmission occupying the same slot.
const SLOT_BITS: u32 = 32;

impl TxId {
    fn slot(self) -> usize {
        (self.0 & ((1 << SLOT_BITS) - 1)) as usize
    }
}

/// Deterministic counters of the link cache and the culling layer.
/// Backend-dependent by design (the exhaustive backend enumerates more
/// candidates), so they are surfaced by side accessor and the run
/// profiler only — never through a [`SimReport`](crate::stats::SimReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediumCounters {
    /// Link-mean cache entries recomputed through the `powf`-heavy
    /// path-loss path (construction and `set_position` only).
    pub cache_recomputes: u64,
    /// Link-mean cache lookups served without recomputation (one per
    /// relevant receiver per transmission).
    pub cache_lookups: u64,
    /// Candidate receivers enumerated across all `begin` calls, before
    /// the relevance filter.
    pub cull_candidates: u64,
    /// Receivers that passed the relevance filter (and therefore drew
    /// fading and entered the ledger).
    pub cull_relevant: u64,
}

/// Uniform grid over node positions. Cell sides are at least the
/// relevance range, so any pair of nodes within that range lands in the
/// same or adjacent cells: the cell coordinate map is a composition of a
/// 1-Lipschitz clamp and a floor-divide by the cell side, which cannot
/// separate two coordinates closer than one cell side by more than one
/// cell. Out-of-bounds positions clamp onto the border cells — that only
/// ever over-includes candidates.
#[derive(Debug, Clone)]
struct Grid {
    min_x: f64,
    min_y: f64,
    /// Cell sides in meters (≥ the relevance range whenever the axis has
    /// more than one cell).
    cell_w: f64,
    cell_h: f64,
    nx: usize,
    ny: usize,
    /// Node ids per cell (unordered — candidates are sorted on gather).
    cells: Vec<Vec<u32>>,
    /// Flattened cell index of each node.
    cell_of: Vec<u32>,
}

impl Grid {
    fn new(positions: &[Position], range: Meters) -> Self {
        let r = range.value().max(1.0);
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let axis = |min: f64, max: f64| {
            let width = (max - min).max(0.0);
            let n = ((width / r).floor() as usize).clamp(1, MAX_CELLS_PER_AXIS);
            // n = ⌊width / r⌋ (≥ 1 cell) keeps the side ≥ r: width / n ≥ r.
            (n, (width / n as f64).max(r))
        };
        let (nx, cell_w) = axis(min_x, max_x);
        let (ny, cell_h) = axis(min_y, max_y);
        let mut grid = Grid {
            min_x,
            min_y,
            cell_w,
            cell_h,
            nx,
            ny,
            cells: vec![Vec::new(); nx * ny],
            cell_of: vec![0; positions.len()],
        };
        for (i, p) in positions.iter().enumerate() {
            let c = grid.cell_index(*p);
            grid.cells[c].push(i as u32);
            grid.cell_of[i] = c as u32;
        }
        grid
    }

    fn cell_index(&self, p: Position) -> usize {
        let clamp = |v: f64, cell: f64, n: usize| -> usize {
            let c = (v / cell).floor();
            // Negative coordinates clamp onto the first cell.
            (c.max(0.0) as usize).min(n - 1)
        };
        let cx = clamp(p.x - self.min_x, self.cell_w, self.nx);
        let cy = clamp(p.y - self.min_y, self.cell_h, self.ny);
        cy * self.nx + cx
    }

    /// Re-files a node under its new position's cell.
    fn move_node(&mut self, node: usize, to: Position) {
        let old = self.cell_of[node] as usize;
        let new = self.cell_index(to);
        if new == old {
            return;
        }
        let cell = &mut self.cells[old];
        if let Some(i) = cell.iter().position(|&v| v as usize == node) {
            cell.swap_remove(i);
        }
        self.cells[new].push(node as u32);
        self.cell_of[node] = new as u32;
    }

    /// Appends every node in the 3 × 3 cell neighbourhood of `node`
    /// (including `node` itself) to `out`.
    fn gather_neighbors(&self, node: usize, out: &mut Vec<u32>) {
        let c = self.cell_of[node] as usize;
        let (cx, cy) = (c % self.nx, c / self.nx);
        for y in cy.saturating_sub(1)..=(cy + 1).min(self.ny - 1) {
            for x in cx.saturating_sub(1)..=(cx + 1).min(self.nx - 1) {
                out.extend_from_slice(&self.cells[y * self.nx + x]);
            }
        }
    }
}

/// The medium over a set of node positions.
#[derive(Debug)]
pub struct Medium {
    channel: LogNormalShadowing,
    positions: Vec<Position>,
    capture: bool,
    backend: MediumBackend,
    /// Emit [`PhyNote::Announce`] when a node locks onto a data frame
    /// (the paper\'s in-band header implementation, Section V method 1).
    inband_announce: bool,
    states: Vec<PhyState>,
    /// Active transmissions, slab-addressed by the slot encoded in their
    /// [`TxId`] — O(1) lookup instead of a linear scan.
    slots: Vec<Option<ActiveTx>>,
    /// Vacated slab slots available for reuse.
    free_slots: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
    /// Generation counter feeding new [`TxId`]s.
    next_gen: u64,
    rng: StdRng,
    /// Mean received power per ordered link (`src * n + dst`): mean path
    /// loss plus the static shadowing draw. Invalidated only by
    /// [`Medium::set_position`] — and only the moved node's row and
    /// column — so `begin()` does one table lookup plus a fast-fading
    /// draw per relevant receiver.
    link_mean: Vec<LinkMean>,
    fast_sigma: Db,
    /// Mean power below which a link is treated as exactly zero.
    relevance_floor: Dbm,
    /// Distance at which the channel's *mean* power reaches the floor —
    /// the grid cell side. Links pushed past it by a favourable static
    /// draw live in the overflow lists instead.
    relevance_range: Meters,
    grid: Grid,
    /// Per-node sorted lists of nodes that stay relevant beyond the grid
    /// reach (`dist > relevance_range` yet `mean ≥ floor`): the static
    /// shadowing draw is unbounded, so distance alone cannot bound the
    /// mean. Symmetric, typically empty.
    overflow: Vec<Vec<u32>>,
    /// Reusable candidate buffer for the culled gather path.
    scratch: Vec<u32>,
    stats: MediumStats,
    counters: MediumCounters,
    /// Instrumentation enabled — gates every event construction below,
    /// so an unobserved medium pays one predictable branch per site.
    observe: bool,
    /// CCA threshold for carrier-sense transition events.
    cs_threshold: MilliWatts,
    /// Last carrier-sense state emitted per node.
    cs_busy: Vec<bool>,
    /// Events accumulated since the last [`Medium::take_events`].
    events: Vec<SimEvent>,
    /// Wall-clock nanoseconds spent verifying the ledger. Kept outside
    /// [`MediumStats`] so wall-clock time never enters a [`SimReport`].
    ledger_check_nanos: u64,
}

impl Medium {
    /// Creates a medium with the [`MediumBackend::Culled`] backend — see
    /// [`Medium::with_backend`].
    pub fn new(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        rng: StdRng,
    ) -> Self {
        Self::with_backend(channel, positions, capture, rng, MediumBackend::Culled)
    }

    /// Creates a medium for nodes at `positions` over `channel`. The
    /// channel\'s shadowing deviation is split into a static per-link
    /// component (drawn here, reciprocal, folded into the link cache)
    /// and a small per-frame fading component of at most
    /// [`FAST_SIGMA_DB`].
    pub fn with_backend(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        mut rng: StdRng,
        backend: MediumBackend,
    ) -> Self {
        let n = positions.len();
        let states = vec![PhyState::default(); n];
        let sigma = channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        let relevance_floor = NOISE_FLOOR + Db::new(-RELEVANCE_MARGIN_DB);
        let relevance_range = channel.range_for_threshold(relevance_floor);
        let mut counters = MediumCounters::default();
        let mut link_mean = vec![LinkMean::new(Dbm::MIN); n * n];
        let mut overflow = vec![Vec::new(); n];
        for a in 0..n {
            for b in (a + 1)..n {
                let draw = Db::new(slow * sample_standard_normal(&mut rng));
                let d = positions[a].distance_to(positions[b]).max(Meters::new(1.0));
                let mean = LinkMean::new(channel.mean_power(d) + draw);
                link_mean[a * n + b] = mean;
                link_mean[b * n + a] = mean;
                counters.cache_recomputes += 2;
                if d.value() > relevance_range.value()
                    && mean.dbm.value() >= relevance_floor.value()
                {
                    overflow[a].push(b as u32);
                    overflow[b].push(a as u32);
                }
            }
        }
        let grid = Grid::new(&positions, relevance_range);
        Medium {
            channel,
            positions,
            capture,
            backend,
            inband_announce: false,
            states,
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_gen: 0,
            rng,
            link_mean,
            fast_sigma: Db::new(fast),
            relevance_floor,
            relevance_range,
            grid,
            overflow,
            scratch: Vec::new(),
            stats: MediumStats::default(),
            counters,
            observe: false,
            cs_threshold: Dbm::MIN.to_milliwatts(),
            cs_busy: vec![false; n],
            events: Vec::new(),
            ledger_check_nanos: 0,
        }
    }

    /// Enables in-band header announcements.
    pub fn set_inband_announce(&mut self, enabled: bool) {
        self.inband_announce = enabled;
    }

    /// Enables instrumentation-event emission; carrier-sense busy/idle
    /// transitions are judged against the CCA threshold `t_cs`.
    pub fn enable_observation(&mut self, t_cs: Dbm) {
        self.observe = true;
        self.cs_threshold = t_cs.to_milliwatts();
    }

    /// Drains the events accumulated since the last call (always empty
    /// unless [`Medium::enable_observation`] was called).
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Hands a drained buffer back so its capacity is reused.
    pub fn restore_event_buffer(&mut self, mut buf: Vec<SimEvent>) {
        if self.events.is_empty() {
            buf.clear();
            self.events = buf;
        }
    }

    /// Wall-clock nanoseconds spent in ledger verification (debug
    /// builds; 0 in release). Surfaced by the run profiler only — never
    /// part of a report.
    pub fn ledger_check_nanos(&self) -> u64 {
        self.ledger_check_nanos
    }

    /// The backend in force.
    pub fn backend(&self) -> MediumBackend {
        self.backend
    }

    /// Deterministic link-cache and culling counters. Backend-dependent
    /// by design; never part of a report.
    pub fn counters(&self) -> MediumCounters {
        self.counters
    }

    /// Mean received power below which a link contributes exactly zero.
    pub fn relevance_floor(&self) -> Dbm {
        self.relevance_floor
    }

    /// Distance at which the channel's mean power reaches the relevance
    /// floor — the grid cell side.
    pub fn relevance_range(&self) -> Meters {
        self.relevance_range
    }

    /// Emits a carrier-sense transition event for every node whose
    /// sensed power crossed the CCA threshold since the last pass.
    fn emit_cs_transitions(&mut self) {
        for n in 0..self.states.len() {
            let busy = self.sensed(NodeId(n)).value() >= self.cs_threshold.value();
            if busy != self.cs_busy[n] {
                self.cs_busy[n] = busy;
                self.events.push(if busy {
                    SimEvent::CsBusy { node: NodeId(n) }
                } else {
                    SimEvent::CsIdle { node: NodeId(n) }
                });
            }
        }
    }

    /// Moves a node: future propagation uses the new position, and the
    /// static shadowing of every link involving the node is redrawn (a
    /// mover meets new walls); both invalidate exactly the moved node's
    /// row and column of the link cache — `2(n − 1)` entries, never the
    /// full `n²` table. The grid files the node under its new cell and
    /// the overflow lists of the affected pairs are refreshed.
    /// Transmissions already on the air keep the powers they were drawn
    /// with.
    pub fn set_position(&mut self, node: NodeId, to: Position) {
        let n = self.positions.len();
        self.positions[node.0] = to;
        self.grid.move_node(node.0, to);
        let sigma = self.channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        self.overflow[node.0].clear();
        for other in 0..n {
            if other != node.0 {
                let draw = Db::new(slow * sample_standard_normal(&mut self.rng));
                let d = self.positions[node.0]
                    .distance_to(self.positions[other])
                    .max(Meters::new(1.0));
                let mean = LinkMean::new(self.channel.mean_power(d) + draw);
                self.link_mean[node.0 * n + other] = mean;
                self.link_mean[other * n + node.0] = mean;
                self.counters.cache_recomputes += 2;
                let in_overflow = d.value() > self.relevance_range.value()
                    && mean.dbm.value() >= self.relevance_floor.value();
                if in_overflow {
                    self.overflow[node.0].push(other as u32);
                }
                let peers = &mut self.overflow[other];
                match peers.binary_search(&(node.0 as u32)) {
                    Ok(i) if !in_overflow => {
                        peers.remove(i);
                    }
                    Err(i) if in_overflow => {
                        peers.insert(i, node.0 as u32);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Whether the link `src → dst` clears the relevance floor. The
    /// predicate is a pure function of the cached mean, so both backends
    /// agree on it without consuming randomness.
    fn relevant(&self, src: usize, dst: usize) -> bool {
        self.link_mean[src * self.positions.len() + dst].dbm.value() >= self.relevance_floor.value()
    }

    /// The candidate receivers the culling layer enumerates for a
    /// transmission from `node`: the 3 × 3 grid neighbourhood plus the
    /// overflow list, sorted and deduplicated, before the relevance
    /// filter. A superset of the relevant set by construction (the
    /// property test pins this).
    pub fn candidate_receivers(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.grid.gather_neighbors(node.0, &mut out);
        out.extend_from_slice(&self.overflow[node.0]);
        out.sort_unstable();
        out.dedup();
        out.retain(|&j| j as usize != node.0);
        out.into_iter().map(|j| NodeId(j as usize)).collect()
    }

    /// The receivers above the relevance floor for a transmission from
    /// `node`, ascending — the set both backends actually visit.
    pub fn relevant_receivers(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.positions.len())
            .filter(|&j| j != node.0 && self.relevant(node.0, j))
            .map(NodeId)
            .collect()
    }

    /// One received-power sample for the link `src → dst`: the cached
    /// mean link power plus fresh fast fading (skipped entirely when the
    /// fading deviation is zero — the cache already holds the exact
    /// quantized power).
    fn sample_link_power(&mut self, src: usize, dst: usize) -> QuantizedPower {
        let n = self.positions.len();
        let mean = self.link_mean[src * n + dst];
        self.counters.cache_lookups += 1;
        // A fading deviation is non-negative; zero disables fast fading.
        if self.fast_sigma.value() <= 0.0 {
            return mean.quantized;
        }
        let fast = Db::new(self.fast_sigma.value() * sample_standard_normal(&mut self.rng));
        QuantizedPower::from_milliwatts((mean.dbm + fast).to_milliwatts())
    }

    /// Total ambient power currently sensed at `node` (noise floor plus
    /// every active transmission, excluding the node's own). A pure
    /// function of the active-transmission set — see the module docs.
    pub fn sensed(&self, node: NodeId) -> MilliWatts {
        NOISE_FLOOR.to_milliwatts() + self.states[node.0].incoming.to_milliwatts()
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.states[node.0].transmitting.is_some()
    }

    /// Whether `node` is currently locked onto (decoding) a frame —
    /// the preamble-detection component of carrier sensing.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.states[node.0].lock.is_some()
    }

    /// Number of transmissions currently on the air.
    pub fn active_count(&self) -> usize {
        self.live
    }

    /// Counters of capture, hazard and ledger-verification events.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Recomputes `node`'s incoming power from scratch over the active
    /// transmissions — the reference the incremental ledger must match.
    /// Culled entries read back as exact zeros, so the recomputation is
    /// backend-agnostic.
    fn recomputed_incoming(&self, node: usize) -> QuantizedPower {
        self.slots
            .iter()
            .flatten()
            .filter(|a| a.frame.src.0 != node)
            .map(|a| a.powers.at(node))
            .sum()
    }

    /// Largest divergence (in ledger grains) between any node's
    /// incremental ledger and a from-scratch recomputation over the
    /// active set. The ledger invariant says this is always 0; the
    /// long-run drift test pins that down.
    pub fn ledger_divergence_grains(&self) -> u128 {
        (0..self.positions.len())
            .map(|n| {
                self.states[n]
                    .incoming
                    .abs_diff(self.recomputed_incoming(n))
            })
            .max()
            .unwrap_or(0)
    }

    /// Debug-build ledger verification, run after every mutation. The
    /// wall-clock cost is accumulated for the run profiler.
    fn debug_check_ledger(&mut self) {
        if cfg!(debug_assertions) {
            // simlint: allow(determinism) — wall clock only times the audit, never feeds sim state
            let started = std::time::Instant::now();
            self.stats.ledger_checks += 1;
            let divergence = self.ledger_divergence_grains();
            debug_assert_eq!(divergence, 0, "power ledger diverged from the active set");
            self.ledger_check_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Allocates a slab slot for a new transmission and returns its id.
    fn allocate(&mut self, active: ActiveTx) -> TxId {
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        assert!(slot < (1usize << SLOT_BITS), "transmission slab exhausted");
        let id = TxId((self.next_gen << SLOT_BITS) | slot as u64);
        self.next_gen += 1;
        self.slots[slot] = Some(ActiveTx { id, ..active });
        self.live += 1;
        id
    }

    /// Looks up an active transmission by id.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air.
    fn active(&self, tx: TxId) -> &ActiveTx {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            // simlint: allow(panic-policy) — documented invariant: ending a tx that is not on the air corrupts hazard integrals, so refuse loudly
            .unwrap_or_else(|| panic!("transmission {tx:?} not on the air"))
    }

    /// Draws the per-receiver powers of a transmission from `src` under
    /// the backend in force. Both arms draw fading for the same relevant
    /// receivers in the same ascending order, so the RNG stream is
    /// backend-independent.
    fn draw_powers(&mut self, src: usize) -> PowerMap {
        let n = self.positions.len();
        match self.backend {
            MediumBackend::Exhaustive => {
                let mut v = vec![QuantizedPower::ZERO; n];
                self.counters.cull_candidates += (n - 1) as u64;
                for (j, slot) in v.iter_mut().enumerate() {
                    if j != src && self.relevant(src, j) {
                        self.counters.cull_relevant += 1;
                        *slot = self.sample_link_power(src, j);
                    }
                }
                PowerMap::Dense(v)
            }
            MediumBackend::Culled => {
                let mut targets = std::mem::take(&mut self.scratch);
                targets.clear();
                self.grid.gather_neighbors(src, &mut targets);
                targets.extend_from_slice(&self.overflow[src]);
                targets.sort_unstable();
                targets.dedup();
                targets.retain(|&j| j as usize != src);
                self.counters.cull_candidates += targets.len() as u64;
                targets.retain(|&j| self.relevant(src, j as usize));
                self.counters.cull_relevant += targets.len() as u64;
                let mut v = Vec::with_capacity(targets.len());
                for &j in &targets {
                    v.push((j, self.sample_link_power(src, j as usize)));
                }
                self.scratch = targets;
                PowerMap::Sparse(v)
            }
        }
    }

    /// Receiver-side bookkeeping when a transmission starts: ledger
    /// credit, lock acquisition or preamble capture, and the
    /// sense/announce notes. `power` is always non-zero (culled
    /// receivers are never visited).
    #[allow(clippy::too_many_arguments)]
    fn receive_begin(
        &mut self,
        n: usize,
        power: QuantizedPower,
        id: TxId,
        frame: Frame,
        now: SimTime,
        end: SimTime,
        notes: &mut Vec<(NodeId, PhyNote)>,
        captured: &mut Vec<usize>,
    ) {
        let p = power.to_milliwatts();
        let observe = self.observe;
        let capture = self.capture;
        let state = &mut self.states[n];
        let ambient = NOISE_FLOOR.to_milliwatts() + state.incoming.to_milliwatts();
        let threshold = frame.rate.min_sinr().to_linear();
        let decodable = state.transmitting.is_none() && p.value() / ambient.value() >= threshold;
        state.incoming += power;
        let incoming_now = state.incoming.to_milliwatts();
        let mut announced = false;
        state.lock = match state.lock {
            None if decodable => {
                announced = true;
                Some(RxLock {
                    tx: id,
                    signal: p,
                    interference: ambient,
                    hazard: 0.0,
                    since: now,
                    rate: frame.rate,
                })
            }
            None => None,
            Some(mut lock) => {
                // Close the exposure span at the old interference
                // level, then raise it.
                lock.accrue(now);
                lock.interference = NOISE_FLOOR.to_milliwatts() + incoming_now - lock.signal;
                // Preamble capture: the new frame is decodable even
                // over the locked signal.
                if capture && decodable {
                    announced = true;
                    self.stats.captures += 1;
                    if observe {
                        captured.push(n);
                    }
                    Some(RxLock {
                        tx: id,
                        signal: p,
                        interference: ambient,
                        hazard: 0.0,
                        since: now,
                        rate: frame.rate,
                    })
                } else {
                    Some(lock)
                }
            }
        };
        if announced
            && self.inband_announce
            && matches!(frame.body, crate::frame::FrameBody::Data { .. })
        {
            notes.push((
                NodeId(n),
                PhyNote::Announce {
                    link: (frame.src, frame.dst),
                    data_end: end,
                },
            ));
        }
        notes.push((NodeId(n), PhyNote::Sense));
    }

    /// Puts `frame` on the air from its source at `now`, lasting until
    /// `end`. Returns the transmission id and the per-node notifications.
    /// Only receivers above the relevance floor are visited — they are
    /// the same set under either backend.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting, or if `end` is not
    /// after `now`.
    pub fn begin(
        &mut self,
        frame: Frame,
        now: SimTime,
        end: SimTime,
    ) -> (TxId, Vec<(NodeId, PhyNote)>) {
        let src = frame.src.0;
        assert!(
            self.states[src].transmitting.is_none(),
            "node {} started a second transmission",
            frame.src
        );
        assert!(
            end > now,
            "transmission must end after it begins ({now} .. {end})"
        );

        // One fading draw per relevant receiver, consistent for the
        // frame's whole lifetime.
        let powers = self.draw_powers(src);

        let id = self.allocate(ActiveTx {
            id: TxId(0),
            frame,
            end,
            powers: powers.clone(),
        });

        self.states[src].transmitting = Some(id);
        // A transmitting node cannot keep receiving: it loses any lock.
        self.states[src].lock = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxBegin {
                src: frame.src,
                dst: frame.dst,
                kind: frame.kind(),
                rate: frame.rate,
            });
        }

        let mut notes = Vec::new();
        // Captured receivers, recorded as events once the per-node
        // borrow below is released.
        let mut captured: Vec<usize> = Vec::new();
        match &powers {
            PowerMap::Dense(v) => {
                for (n, &power) in v.iter().enumerate() {
                    if n == src || power == QuantizedPower::ZERO {
                        continue;
                    }
                    self.receive_begin(n, power, id, frame, now, end, &mut notes, &mut captured);
                }
            }
            PowerMap::Sparse(v) => {
                for &(n, power) in v {
                    self.receive_begin(
                        n as usize,
                        power,
                        id,
                        frame,
                        now,
                        end,
                        &mut notes,
                        &mut captured,
                    );
                }
            }
        }

        if observe {
            for n in captured {
                self.events.push(SimEvent::Capture {
                    node: NodeId(n),
                    src: frame.src,
                });
            }
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        (id, notes)
    }

    /// Receiver-side bookkeeping when a transmission ends: ledger
    /// debit, lock resolution (survival draw) and the sense note.
    fn receive_end(
        &mut self,
        n: usize,
        power: QuantizedPower,
        id: TxId,
        frame: Frame,
        now: SimTime,
        notes: &mut Vec<(NodeId, PhyNote)>,
    ) {
        let observe = self.observe;
        self.states[n].incoming -= power;
        if let Some(mut lock) = self.states[n].lock {
            if lock.tx == id {
                // Close the final exposure span and draw survival.
                lock.accrue(now);
                self.states[n].lock = None;
                let survive = (-lock.hazard).exp();
                if survive >= 1.0 - 1e-12 || self.rng.gen::<f64>() < survive {
                    if observe {
                        let sinr_db =
                            10.0 * (lock.signal.value() / lock.interference.value()).log10();
                        self.events.push(SimEvent::RxResolved {
                            node: NodeId(n),
                            src: frame.src,
                            rssi_dbm: lock.signal.to_dbm().value(),
                            sinr_db,
                        });
                    }
                    notes.push((
                        NodeId(n),
                        PhyNote::Rx {
                            frame,
                            rssi: lock.signal.to_dbm(),
                        },
                    ));
                } else {
                    self.stats.hazard_drops += 1;
                    if observe {
                        self.events.push(SimEvent::HazardDrop {
                            node: NodeId(n),
                            src: frame.src,
                        });
                    }
                }
            } else {
                // The locked frame's interference just dropped: close
                // its span at the old level.
                lock.accrue(now);
                lock.interference = NOISE_FLOOR.to_milliwatts()
                    + self.states[n].incoming.to_milliwatts()
                    - lock.signal;
                self.states[n].lock = Some(lock);
            }
        }
        notes.push((NodeId(n), PhyNote::Sense));
    }

    /// Takes a transmission off the air at `now`, resolving receptions.
    /// Returns per-node notifications (`Rx` for a successful receiver,
    /// `TxDone` for the sender, `Sense` for everyone whose ambient power
    /// dropped). Receivers the begin culled to exact zero are skipped —
    /// their ambient power provably did not change.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air, or if `now` differs from the
    /// end time the transmission was scheduled with — ending a frame at
    /// the wrong instant would corrupt every overlapping hazard
    /// integral, so the medium refuses instead of silently accepting it.
    pub fn end(&mut self, tx: TxId, now: SimTime) -> Vec<(NodeId, PhyNote)> {
        let scheduled = self.active(tx).end;
        assert_eq!(
            scheduled, now,
            "Medium::end({tx:?}) at {now}, but the transmission is scheduled to end at {scheduled}"
        );
        let slot = tx.slot();
        let ActiveTx {
            id, frame, powers, ..
            // simlint: allow(panic-policy) — active(tx) above already proved the slot is occupied
        } = self.slots[slot].take().expect("checked by active()");
        self.free_slots.push(slot as u32);
        self.live -= 1;

        let src = frame.src.0;
        self.states[src].transmitting = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxEnd {
                src: frame.src,
                kind: frame.kind(),
            });
        }

        let mut notes = Vec::new();
        match &powers {
            PowerMap::Dense(v) => {
                for (n, &power) in v.iter().enumerate() {
                    if n == src || power == QuantizedPower::ZERO {
                        continue;
                    }
                    self.receive_end(n, power, id, frame, now, &mut notes);
                }
            }
            PowerMap::Sparse(v) => {
                for &(n, power) in v {
                    self.receive_end(n as usize, power, id, frame, now, &mut notes);
                }
            }
        }
        notes.push((NodeId(src), PhyNote::TxDone { frame }));
        if observe {
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        notes
    }

    /// The scheduled end time of an active transmission.
    pub fn end_time(&self, tx: TxId) -> Option<SimTime> {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            .map(|a| a.end)
    }

    /// The propagation channel in force.
    pub fn channel(&self) -> &LogNormalShadowing {
        &self.channel
    }

    /// True position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::time::SimDuration;
    use comap_radio::rates::Rate;
    use comap_radio::units::Db;
    use rand::SeedableRng;

    use crate::frame::FrameBody;

    /// A deterministic (σ = 0) medium: A at 0, B at 10 m, C at 200 m.
    fn medium() -> Medium {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(200.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        )
    }

    fn data(src: usize, dst: usize) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            body: FrameBody::Data {
                seq: 0,
                payload_bytes: 500,
                retry: false,
            },
            rate: Rate::Mbps11,
        }
    }

    fn end_at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn clean_frame_is_delivered() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx, end_at(1000));
        let rx = notes
            .iter()
            .find(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. }));
        assert!(rx.is_some(), "B must receive: {notes:?}");
        assert!(notes
            .iter()
            .any(|(n, note)| *n == NodeId(0) && matches!(note, PhyNote::TxDone { .. })));
    }

    #[test]
    fn sensed_power_rises_and_falls_exactly() {
        let mut m = medium();
        let idle = m.sensed(NodeId(1));
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert!(m.sensed(NodeId(1)).value() > idle.value() * 100.0);
        m.end(tx, end_at(1000));
        // The exact ledger restores the idle level bit for bit — not
        // merely within a tolerance.
        assert_eq!(m.sensed(NodeId(1)), idle);
    }

    #[test]
    fn remote_node_barely_senses() {
        let mut m = medium();
        let (_tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        // At 200 m with α = 2.9: ~ −107 dBm, far below the −95 dBm floor
        // yet above the −120 dBm relevance floor, so it still enters the
        // ledger.
        let sensed = m.sensed(NodeId(2)).to_dbm();
        assert!(sensed.value() < -94.0, "sensed = {sensed}");
        assert!(
            m.sensed(NodeId(2)).value() > NOISE_FLOOR.to_milliwatts().value(),
            "a −107 dBm link is relevant and must reach the ledger"
        );
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = medium();
        let (tx_b, _) = m.begin(data(1, 2), SimTime::ZERO, end_at(1000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx_a, end_at(1000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "B was transmitting and must miss A's frame"
        );
        m.end(tx_b, end_at(1000));
    }

    #[test]
    fn collision_corrupts_the_weaker_frame() {
        // C transmits to B from 190 m — far too weak; then A's strong
        // frame arrives and (with capture) steals the lock.
        let mut m = medium();
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            notes_a
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "A's frame captures: {notes_a:?}"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "C's frame is lost"
        );
    }

    #[test]
    fn without_capture_the_first_lock_sticks_and_dies() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(30.0, 0.0),
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        // C at 30 m from B(10 m): decodable alone. Then A's much stronger
        // frame arrives: no capture, so the lock stays with C and is
        // corrupted by A.
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            !notes_a
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "A must not be received without capture"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "C was corrupted by A"
        );
    }

    #[test]
    fn interference_high_water_mark_outlives_the_interferer() {
        // Interferer overlaps only the first quarter of the frame; the
        // frame must still be judged by the worst-case overlap. Capture
        // is off so the lock provably stays with the first frame.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),  // A: sender
                Position::new(30.0, 0.0), // B: receiver (30 m)
                Position::new(32.0, 0.0), // C: close interferer
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(2000));
        let (tx_c, _) = m.begin(data(2, 0), SimTime::ZERO, end_at(500));
        m.end(tx_c, end_at(500)); // interferer gone long before the frame ends
        let notes = m.end(tx_a, end_at(2000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "frame must be corrupted by the transient interferer"
        );
        assert!(
            m.stats().hazard_drops >= 1,
            "the corruption shows up in the counters"
        );
    }

    #[test]
    #[should_panic(expected = "second transmission")]
    fn double_transmit_panics() {
        let mut m = medium();
        let _ = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.begin(data(0, 2), SimTime::ZERO, end_at(1000));
    }

    #[test]
    #[should_panic(expected = "scheduled to end at")]
    fn ending_at_the_wrong_time_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.end(tx, end_at(900));
    }

    #[test]
    #[should_panic(expected = "not on the air")]
    fn ending_twice_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        let _ = m.end(tx, end_at(1000));
    }

    #[test]
    fn slab_slots_are_reused_without_id_aliasing() {
        let mut m = medium();
        let (tx1, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx1, end_at(1000));
        let (tx2, _) = m.begin(data(0, 1), end_at(1000), end_at(2000));
        assert_ne!(tx1, tx2, "generations keep reused slots distinguishable");
        assert_eq!(m.end_time(tx1), None, "the ended id is stale");
        assert_eq!(m.end_time(tx2), Some(end_at(2000)));
        assert_eq!(m.active_count(), 1);
        m.end(tx2, end_at(2000));
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn capture_shows_up_in_the_counters() {
        // C at 40 m (30 m from B): decodable alone (≈ −83 dBm, 12 dB over
        // the floor) but weak enough that A's frame (−69 dBm from 10 m)
        // clears the 11 Mbps threshold over it and steals the lock.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(40.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        );
        let (_tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        assert_eq!(m.stats().captures, 0);
        let (_tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert_eq!(m.stats().captures, 1, "A's frame captures B's lock");
    }

    #[test]
    fn ledger_matches_recomputation_through_churn() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..6)
            .map(|i| Position::new(10.0 * i as f64, 3.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(3));
        let mut t = 0u64;
        for round in 0..200 {
            let src = round % 6;
            let dst = (round + 1) % 6;
            let (tx, _) = m.begin(data(src, dst), end_at(t), end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            m.end(tx, end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            t += 100;
        }
    }

    /// A far node (beyond the relevance floor) must see *exactly* no
    /// effect: no ledger grains, no sense note, no fading draw.
    #[test]
    fn sub_floor_link_contributes_exactly_nothing() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        for backend in [MediumBackend::Exhaustive, MediumBackend::Culled] {
            let mut m = Medium::with_backend(
                chan,
                vec![
                    Position::new(0.0, 0.0),
                    Position::new(10.0, 0.0),
                    Position::new(5_000.0, 0.0), // ≈ −147 dBm mean: culled
                ],
                true,
                StdRng::seed_from_u64(1),
                backend,
            );
            let idle = m.sensed(NodeId(2));
            let (tx, notes) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
            assert_eq!(
                m.sensed(NodeId(2)),
                idle,
                "{backend:?}: ledger must not move"
            );
            assert!(
                !notes.iter().any(|(n, _)| *n == NodeId(2)),
                "{backend:?}: no note for a culled receiver"
            );
            let notes = m.end(tx, end_at(1000));
            assert!(!notes.iter().any(|(n, _)| *n == NodeId(2)));
            assert_eq!(m.sensed(NodeId(2)), idle);
        }
    }

    /// The candidate set of the culled gather is a superset of the
    /// relevant set, before and after movement.
    #[test]
    fn candidates_cover_the_relevant_set_across_moves() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..12)
            .map(|i| Position::new(450.0 * (i % 4) as f64, 600.0 * (i / 4) as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(9));
        for step in 0..8 {
            for node in 0..12 {
                let cand = m.candidate_receivers(NodeId(node));
                for r in m.relevant_receivers(NodeId(node)) {
                    assert!(
                        cand.contains(&r),
                        "step {step}: node {node} relevant {r} missing from {cand:?}"
                    );
                }
            }
            let mover = NodeId(step % 12);
            m.set_position(mover, Position::new(37.0 * step as f64, 210.0));
        }
    }

    /// Satellite fix: construction recomputes each of the n(n−1) ordered
    /// link-cache entries once, and every move recomputes exactly the
    /// mover's row and column — 2(n−1) entries — never the full table.
    #[test]
    fn link_cache_recomputes_only_the_movers_row_and_column() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let n = 8usize;
        let positions: Vec<Position> = (0..n)
            .map(|i| Position::new(9.0 * i as f64, 2.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(5));
        let after_new = m.counters().cache_recomputes;
        assert_eq!(after_new, (n * (n - 1)) as u64);
        for step in 1..=10u64 {
            m.set_position(NodeId(3), Position::new(1.5 * step as f64, 40.0));
            assert_eq!(
                m.counters().cache_recomputes,
                after_new + step * 2 * (n as u64 - 1),
                "move {step} must touch exactly 2(n−1) entries"
            );
        }
        // The begin path is pure lookup: no recomputation, one lookup
        // per relevant receiver.
        let before = m.counters();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        let after = m.counters();
        assert_eq!(after.cache_recomputes, before.cache_recomputes);
        assert_eq!(
            after.cache_lookups - before.cache_lookups,
            after.cull_relevant - before.cull_relevant
        );
    }

    /// Both backends walk identical relevant sets and draw identical
    /// powers, so sensed() agrees bit for bit through churn and moves.
    #[test]
    fn backends_agree_through_churn_and_moves() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..10)
            .map(|i| Position::new(120.0 * (i % 5) as f64, 260.0 * (i / 5) as f64))
            .collect();
        let mut ex = Medium::with_backend(
            chan,
            positions.clone(),
            true,
            StdRng::seed_from_u64(11),
            MediumBackend::Exhaustive,
        );
        let mut cu = Medium::with_backend(
            chan,
            positions,
            true,
            StdRng::seed_from_u64(11),
            MediumBackend::Culled,
        );
        let mut t = 0u64;
        for round in 0..120usize {
            let src = round % 10;
            let dst = (round + 3) % 10;
            let (txe, ne) = ex.begin(data(src, dst), end_at(t), end_at(t + 90));
            let (txc, nc) = cu.begin(data(src, dst), end_at(t), end_at(t + 90));
            assert_eq!(ne, nc, "round {round}: begin notes diverged");
            if round % 7 == 0 {
                let to = Position::new(31.0 * round as f64 % 700.0, 130.0);
                let mover = NodeId((round + 5) % 10);
                if !ex.is_transmitting(mover) {
                    ex.set_position(mover, to);
                    cu.set_position(mover, to);
                }
            }
            let ne = ex.end(txe, end_at(t + 90));
            let nc = cu.end(txc, end_at(t + 90));
            assert_eq!(ne, nc, "round {round}: end notes diverged");
            for n in 0..10 {
                assert_eq!(ex.sensed(NodeId(n)), cu.sensed(NodeId(n)));
            }
            t += 90;
        }
        assert_eq!(ex.stats(), cu.stats());
    }
}
