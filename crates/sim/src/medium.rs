//! The shared radio medium: propagation, carrier sensing and reception.
//!
//! Every transmission draws one shadowing sample per receiver (paper
//! eq. 1); that same sample governs both carrier sensing and decoding of
//! the frame, so the channel is self-consistent for its duration.
//!
//! Reception follows the SINR-threshold capture model: a receiver locks
//! onto the first frame whose SINR against the current ambient power
//! clears the rate's minimum; the frame survives if its SINR against the
//! *worst* overlapping interference stays above that minimum. With
//! `capture` enabled, a later frame that is decodable *despite* the
//! currently locked signal steals the lock (preamble capture) — without
//! it, two saturated hidden flows annihilate each other completely, which
//! neither commodity hardware nor NS-2 reproduces.

use rand::rngs::StdRng;
use rand::Rng;

use comap_mac::time::SimTime;
use comap_radio::pathloss::{sample_standard_normal, LogNormalShadowing};
use comap_radio::units::{Db, Dbm, Meters, MilliWatts};
use comap_radio::{Position, NOISE_FLOOR};

use crate::frame::{Frame, NodeId, TxId};

/// A notification the medium hands back to the simulator for a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyNote {
    /// The ambient power at the node changed; the MAC should re-evaluate
    /// carrier sense and any armed RSSI watchdog.
    Sense,
    /// A frame was received successfully (lock held to the end with
    /// sufficient SINR).
    Rx {
        /// The decoded frame.
        frame: Frame,
        /// Received signal strength of the frame.
        rssi: Dbm,
    },
    /// The node's own transmission left the air.
    TxDone {
        /// The transmitted frame.
        frame: Frame,
    },
    /// In-band announcement: the node locked onto a data frame whose
    /// MAC header (the paper's 4-byte-FCS variant) reveals the link and
    /// the remaining airtime.
    Announce {
        /// The announced link.
        link: (NodeId, NodeId),
        /// When the data frame ends.
        data_end: SimTime,
    },
}

#[derive(Debug, Clone, Copy)]
struct RxLock {
    tx: TxId,
    signal: MilliWatts,
    /// Interference power during the current exposure span.
    interference: MilliWatts,
    /// Accumulated expected bit errors (`Σ BER(SINR) · bitrate · dt`).
    hazard: f64,
    /// Start of the current exposure span.
    since: SimTime,
    /// Bit rate of the locked frame (for the hazard integral).
    rate: comap_radio::rates::Rate,
}

/// Bit-error rate at `delta_db` decibels below the rate\'s minimum SINR:
/// `1e-5` at the threshold, doubling per dB below it, vanishing above.
/// The 8 000-bit scale of a data frame turns this into a sharp-but-
/// duration-sensitive corruption model.
fn bit_error_rate(delta_db: f64) -> f64 {
    (1e-5 * 2f64.powf(delta_db)).min(0.5)
}

impl RxLock {
    /// Accrues hazard for the span ending `now`, then resets the span.
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.since).as_secs_f64();
        if dt > 0.0 {
            let sinr_db = 10.0 * (self.signal.value() / self.interference.value()).log10();
            let delta = self.rate.min_sinr().value() - sinr_db;
            self.hazard += bit_error_rate(delta) * self.rate.bits_per_second() * dt;
        }
        self.since = now;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhyState {
    transmitting: Option<TxId>,
    incoming: MilliWatts,
    lock: Option<RxLock>,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    id: TxId,
    frame: Frame,
    end: SimTime,
    /// Received power of this transmission at every node (own entry 0).
    powers: Vec<MilliWatts>,
}

/// Per-frame fading deviation: for *static* nodes most of the shadowing
/// (obstructions, walls) does not change between frames; only a small
/// fast-fading component does. The per-link remainder is drawn once per
/// run, keeping the total variance at the channel\'s σ².
const FAST_SIGMA_DB: f64 = 1.5;

/// The medium over a set of static node positions.
#[derive(Debug)]
pub struct Medium {
    channel: LogNormalShadowing,
    positions: Vec<Position>,
    capture: bool,
    /// Emit [`PhyNote::Announce`] when a node locks onto a data frame
    /// (the paper\'s in-band header implementation, Section V method 1).
    inband_announce: bool,
    states: Vec<PhyState>,
    active: Vec<ActiveTx>,
    next_tx: u64,
    rng: StdRng,
    /// Static (per-run) shadowing per ordered node pair, symmetric.
    static_shadow: Vec<Db>,
    fast_sigma: Db,
}

impl Medium {
    /// Creates a medium for nodes at `positions` over `channel`. The
    /// channel\'s shadowing deviation is split into a static per-link
    /// component (drawn here, reciprocal) and a small per-frame fading
    /// component of at most [`FAST_SIGMA_DB`].
    pub fn new(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        mut rng: StdRng,
    ) -> Self {
        let n = positions.len();
        let states = vec![PhyState::default(); n];
        let sigma = channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        let mut static_shadow = vec![Db::ZERO; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let draw = Db::new(slow * sample_standard_normal(&mut rng));
                static_shadow[a * n + b] = draw;
                static_shadow[b * n + a] = draw;
            }
        }
        Medium {
            channel,
            positions,
            capture,
            inband_announce: false,
            states,
            active: Vec::new(),
            next_tx: 0,
            rng,
            static_shadow,
            fast_sigma: Db::new(fast),
        }
    }

    /// Enables in-band header announcements.
    pub fn set_inband_announce(&mut self, enabled: bool) {
        self.inband_announce = enabled;
    }

    /// Moves a node: future propagation uses the new position, and the
    /// static shadowing of every link involving the node is redrawn (a
    /// mover meets new walls). Transmissions already on the air keep the
    /// powers they were drawn with.
    pub fn set_position(&mut self, node: NodeId, to: Position) {
        let n = self.positions.len();
        self.positions[node.0] = to;
        let sigma = self.channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        for other in 0..n {
            if other != node.0 {
                let draw = Db::new(slow * sample_standard_normal(&mut self.rng));
                self.static_shadow[node.0 * n + other] = draw;
                self.static_shadow[other * n + node.0] = draw;
            }
        }
    }

    /// One received-power sample for the link `src → dst`: mean path loss
    /// plus the static per-link shadow plus fresh fast fading.
    fn sample_link_power(&mut self, src: usize, dst: usize) -> MilliWatts {
        let d = self.positions[src].distance_to(self.positions[dst]).max(Meters::new(1.0));
        let n = self.positions.len();
        let fast = Db::new(self.fast_sigma.value() * sample_standard_normal(&mut self.rng));
        (self.channel.mean_power(d) + self.static_shadow[src * n + dst] + fast).to_milliwatts()
    }

    /// Total ambient power currently sensed at `node` (noise floor plus
    /// every active transmission, excluding the node's own).
    pub fn sensed(&self, node: NodeId) -> MilliWatts {
        NOISE_FLOOR.to_milliwatts() + self.states[node.0].incoming
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.states[node.0].transmitting.is_some()
    }

    /// Whether `node` is currently locked onto (decoding) a frame —
    /// the preamble-detection component of carrier sensing.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.states[node.0].lock.is_some()
    }

    /// Number of transmissions currently on the air.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Puts `frame` on the air from its source at `now`, lasting until
    /// `end`. Returns the transmission id and the per-node notifications.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting.
    pub fn begin(&mut self, frame: Frame, now: SimTime, end: SimTime) -> (TxId, Vec<(NodeId, PhyNote)>) {
        let src = frame.src.0;
        assert!(
            self.states[src].transmitting.is_none(),
            "node {} started a second transmission",
            frame.src
        );
        let id = TxId(self.next_tx);
        self.next_tx += 1;

        // One fading draw per receiver, consistent for the frame's whole
        // lifetime.
        let powers: Vec<MilliWatts> = (0..self.positions.len())
            .map(|n| {
                if n == src {
                    MilliWatts::ZERO
                } else {
                    self.sample_link_power(src, n)
                }
            })
            .collect();

        self.states[src].transmitting = Some(id);
        // A transmitting node cannot keep receiving: it loses any lock.
        self.states[src].lock = None;

        let mut notes = Vec::new();
        let capture = self.capture;
        for n in 0..self.positions.len() {
            if n == src {
                continue;
            }
            let p = powers[n];
            let state = &mut self.states[n];
            let ambient = NOISE_FLOOR.to_milliwatts() + state.incoming;
            let threshold = frame.rate.min_sinr().to_linear();
            let decodable =
                state.transmitting.is_none() && p.value() / ambient.value() >= threshold;
            state.incoming += p;
            let incoming_now = state.incoming;
            let mut announced = false;
            state.lock = match state.lock {
                None if decodable => {
                    announced = true;
                    Some(RxLock {
                        tx: id,
                        signal: p,
                        interference: ambient,
                        hazard: 0.0,
                        since: now,
                        rate: frame.rate,
                    })
                }
                None => None,
                Some(mut lock) => {
                    // Close the exposure span at the old interference
                    // level, then raise it.
                    lock.accrue(now);
                    lock.interference =
                        NOISE_FLOOR.to_milliwatts() + incoming_now - lock.signal;
                    // Preamble capture: the new frame is decodable even
                    // over the locked signal.
                    if capture && decodable {
                        announced = true;
                        Some(RxLock {
                            tx: id,
                            signal: p,
                            interference: ambient,
                            hazard: 0.0,
                            since: now,
                            rate: frame.rate,
                        })
                    } else {
                        Some(lock)
                    }
                }
            };
            if announced
                && self.inband_announce
                && matches!(frame.body, crate::frame::FrameBody::Data { .. })
            {
                notes.push((
                    NodeId(n),
                    PhyNote::Announce { link: (frame.src, frame.dst), data_end: end },
                ));
            }
            notes.push((NodeId(n), PhyNote::Sense));
        }

        self.active.push(ActiveTx { id, frame, end, powers });
        (id, notes)
    }

    /// Takes a transmission off the air at `now`, resolving receptions.
    /// Returns per-node notifications (`Rx` for a successful receiver,
    /// `TxDone` for the sender, `Sense` for everyone whose ambient power
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air.
    pub fn end(&mut self, tx: TxId, now: SimTime) -> Vec<(NodeId, PhyNote)> {
        let idx = self
            .active
            .iter()
            .position(|a| a.id == tx)
            .unwrap_or_else(|| panic!("transmission {tx:?} not on the air"));
        let ActiveTx { id, frame, powers, .. } = self.active.swap_remove(idx);

        let src = frame.src.0;
        self.states[src].transmitting = None;

        let mut notes = Vec::new();
        for n in 0..self.positions.len() {
            if n == src {
                continue;
            }
            self.states[n].incoming = self.states[n].incoming - powers[n];
            if let Some(mut lock) = self.states[n].lock {
                if lock.tx == id {
                    // Close the final exposure span and draw survival.
                    lock.accrue(now);
                    self.states[n].lock = None;
                    let survive = (-lock.hazard).exp();
                    if survive >= 1.0 - 1e-12 || self.rng.gen::<f64>() < survive {
                        notes.push((
                            NodeId(n),
                            PhyNote::Rx { frame, rssi: lock.signal.to_dbm() },
                        ));
                    }
                } else {
                    // The locked frame's interference just dropped: close
                    // its span at the old level.
                    lock.accrue(now);
                    lock.interference =
                        NOISE_FLOOR.to_milliwatts() + self.states[n].incoming - lock.signal;
                    self.states[n].lock = Some(lock);
                }
            }
            notes.push((NodeId(n), PhyNote::Sense));
        }
        notes.push((NodeId(src), PhyNote::TxDone { frame }));
        notes
    }

    /// The scheduled end time of an active transmission.
    pub fn end_time(&self, tx: TxId) -> Option<SimTime> {
        self.active.iter().find(|a| a.id == tx).map(|a| a.end)
    }

    /// The propagation channel in force.
    pub fn channel(&self) -> &LogNormalShadowing {
        &self.channel
    }

    /// True position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::time::SimDuration;
    use comap_radio::rates::Rate;
    use comap_radio::units::Db;
    use rand::SeedableRng;

    use crate::frame::FrameBody;

    /// A deterministic (σ = 0) medium: A at 0, B at 10 m, C at 200 m.
    fn medium() -> Medium {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        Medium::new(
            chan,
            vec![Position::new(0.0, 0.0), Position::new(10.0, 0.0), Position::new(200.0, 0.0)],
            true,
            StdRng::seed_from_u64(1),
        )
    }

    fn data(src: usize, dst: usize) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            body: FrameBody::Data { seq: 0, payload_bytes: 500, retry: false },
            rate: Rate::Mbps11,
        }
    }

    fn end_at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn clean_frame_is_delivered() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx, end_at(1000));
        let rx = notes.iter().find(|(n, note)| {
            *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })
        });
        assert!(rx.is_some(), "B must receive: {notes:?}");
        assert!(notes
            .iter()
            .any(|(n, note)| *n == NodeId(0) && matches!(note, PhyNote::TxDone { .. })));
    }

    #[test]
    fn sensed_power_rises_and_falls() {
        let mut m = medium();
        let idle = m.sensed(NodeId(1));
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert!(m.sensed(NodeId(1)).value() > idle.value() * 100.0);
        m.end(tx, end_at(1000));
        let after = m.sensed(NodeId(1));
        assert!((after.value() - idle.value()).abs() < idle.value() * 1e-6);
    }

    #[test]
    fn remote_node_barely_senses() {
        let mut m = medium();
        let (_tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        // At 200 m with α = 2.9: ~ −107 dBm, far below the −95 dBm floor.
        let sensed = m.sensed(NodeId(2)).to_dbm();
        assert!(sensed.value() < -94.0, "sensed = {sensed}");
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = medium();
        let (tx_b, _) = m.begin(data(1, 2), SimTime::ZERO, end_at(1000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx_a, end_at(1000));
        assert!(
            !notes.iter().any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "B was transmitting and must miss A's frame"
        );
        m.end(tx_b, end_at(1000));
    }

    #[test]
    fn collision_corrupts_the_weaker_frame() {
        // C transmits to B from 190 m — far too weak; then A's strong
        // frame arrives and (with capture) steals the lock.
        let mut m = medium();
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            notes_a.iter().any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "A's frame captures: {notes_a:?}"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c.iter().any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "C's frame is lost"
        );
    }

    #[test]
    fn without_capture_the_first_lock_sticks_and_dies() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![Position::new(0.0, 0.0), Position::new(10.0, 0.0), Position::new(30.0, 0.0)],
            false,
            StdRng::seed_from_u64(1),
        );
        // C at 30 m from B(10 m): decodable alone. Then A's much stronger
        // frame arrives: no capture, so the lock stays with C and is
        // corrupted by A.
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            !notes_a.iter().any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "A must not be received without capture"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c.iter().any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "C was corrupted by A"
        );
    }

    #[test]
    fn interference_high_water_mark_outlives_the_interferer() {
        // Interferer overlaps only the first half of the frame; the frame
        // must still be judged by the worst-case overlap. Capture is off
        // so the lock provably stays with the first frame.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),   // A: sender
                Position::new(30.0, 0.0),  // B: receiver (30 m)
                Position::new(32.0, 0.0),  // C: close interferer
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(2000));
        let (tx_c, _) = m.begin(data(2, 0), SimTime::ZERO, end_at(500));
        m.end(tx_c, end_at(2000)); // interferer gone before the frame ends
        let notes = m.end(tx_a, end_at(1000));
        assert!(
            !notes.iter().any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "frame must be corrupted by the transient interferer"
        );
    }

    #[test]
    #[should_panic(expected = "second transmission")]
    fn double_transmit_panics() {
        let mut m = medium();
        let _ = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.begin(data(0, 2), SimTime::ZERO, end_at(1000));
    }
}
