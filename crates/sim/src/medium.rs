//! The shared radio medium: propagation, carrier sensing and reception.
//!
//! Every transmission draws one shadowing sample per receiver (paper
//! eq. 1); that same sample governs both carrier sensing and decoding of
//! the frame, so the channel is self-consistent for its duration.
//!
//! Reception follows the SINR-threshold capture model: a receiver locks
//! onto the first frame whose SINR against the current ambient power
//! clears the rate's minimum; the frame survives if its SINR against the
//! *worst* overlapping interference stays above that minimum. With
//! `capture` enabled, a later frame that is decodable *despite* the
//! currently locked signal steals the lock (preamble capture) — without
//! it, two saturated hidden flows annihilate each other completely, which
//! neither commodity hardware nor NS-2 reproduces.
//!
//! # The power ledger invariant
//!
//! The ambient power a node senses is a **pure function of the set of
//! transmissions currently on the air**: per-receiver powers are
//! quantized onto the exact integer grid of
//! [`QuantizedPower`](comap_radio::units::QuantizedPower) when a frame
//! starts, and the same grains are subtracted when it ends, so
//! [`Medium::sensed`] is bit-identical no matter how many frames have
//! come and gone in between. Debug builds verify the ledger against a
//! from-scratch recomputation after every [`Medium::begin`] /
//! [`Medium::end`]; release callers can do the same through
//! [`Medium::ledger_divergence_grains`].

use rand::rngs::StdRng;
use rand::Rng;

use comap_mac::time::SimTime;
use comap_radio::pathloss::{sample_standard_normal, LogNormalShadowing};
use comap_radio::units::{Db, Dbm, Meters, MilliWatts, QuantizedPower};
use comap_radio::{Position, NOISE_FLOOR};

use crate::frame::{Frame, NodeId, TxId};
use crate::observe::SimEvent;
use crate::stats::MediumStats;

/// A notification the medium hands back to the simulator for a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhyNote {
    /// The ambient power at the node changed; the MAC should re-evaluate
    /// carrier sense and any armed RSSI watchdog.
    Sense,
    /// A frame was received successfully (lock held to the end with
    /// sufficient SINR).
    Rx {
        /// The decoded frame.
        frame: Frame,
        /// Received signal strength of the frame.
        rssi: Dbm,
    },
    /// The node's own transmission left the air.
    TxDone {
        /// The transmitted frame.
        frame: Frame,
    },
    /// In-band announcement: the node locked onto a data frame whose
    /// MAC header (the paper's 4-byte-FCS variant) reveals the link and
    /// the remaining airtime.
    Announce {
        /// The announced link.
        link: (NodeId, NodeId),
        /// When the data frame ends.
        data_end: SimTime,
    },
}

#[derive(Debug, Clone, Copy)]
struct RxLock {
    tx: TxId,
    signal: MilliWatts,
    /// Interference power during the current exposure span.
    interference: MilliWatts,
    /// Accumulated expected bit errors (`Σ BER(SINR) · bitrate · dt`).
    hazard: f64,
    /// Start of the current exposure span.
    since: SimTime,
    /// Bit rate of the locked frame (for the hazard integral).
    rate: comap_radio::rates::Rate,
}

/// Bit-error rate at `delta_db` decibels below the rate\'s minimum SINR:
/// `1e-5` at the threshold, doubling per dB below it, vanishing above.
/// The 8 000-bit scale of a data frame turns this into a sharp-but-
/// duration-sensitive corruption model.
fn bit_error_rate(delta_db: f64) -> f64 {
    (1e-5 * 2f64.powf(delta_db)).min(0.5)
}

impl RxLock {
    /// Accrues hazard for the span ending `now`, then resets the span.
    fn accrue(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.since).as_secs_f64();
        if dt > 0.0 {
            let sinr_db = 10.0 * (self.signal.value() / self.interference.value()).log10();
            let delta = self.rate.min_sinr().value() - sinr_db;
            self.hazard += bit_error_rate(delta) * self.rate.bits_per_second() * dt;
        }
        self.since = now;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhyState {
    transmitting: Option<TxId>,
    /// Exact ledger of the ambient power arriving from every active
    /// transmission (own transmissions excluded).
    incoming: QuantizedPower,
    lock: Option<RxLock>,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    id: TxId,
    frame: Frame,
    end: SimTime,
    /// Received power of this transmission at every node (own entry 0),
    /// pre-quantized so begin/end move identical grains.
    powers: Vec<QuantizedPower>,
}

/// Cached mean received power of one ordered link: mean path loss at the
/// current distance plus the static per-run shadowing draw. Kept in both
/// domains so the σ = 0 fast path needs no `powf` at all.
#[derive(Debug, Clone, Copy)]
struct LinkMean {
    dbm: Dbm,
    quantized: QuantizedPower,
}

impl LinkMean {
    fn new(dbm: Dbm) -> Self {
        LinkMean {
            dbm,
            quantized: QuantizedPower::from_milliwatts(dbm.to_milliwatts()),
        }
    }
}

/// Per-frame fading deviation: for *static* nodes most of the shadowing
/// (obstructions, walls) does not change between frames; only a small
/// fast-fading component does. The per-link remainder is drawn once per
/// run, keeping the total variance at the channel\'s σ².
const FAST_SIGMA_DB: f64 = 1.5;

/// Bits of a [`TxId`] used for the slab slot; the rest hold a
/// never-reused generation count, so a stale id can never alias a live
/// transmission occupying the same slot.
const SLOT_BITS: u32 = 32;

impl TxId {
    fn slot(self) -> usize {
        (self.0 & ((1 << SLOT_BITS) - 1)) as usize
    }
}

/// The medium over a set of node positions.
#[derive(Debug)]
pub struct Medium {
    channel: LogNormalShadowing,
    positions: Vec<Position>,
    capture: bool,
    /// Emit [`PhyNote::Announce`] when a node locks onto a data frame
    /// (the paper\'s in-band header implementation, Section V method 1).
    inband_announce: bool,
    states: Vec<PhyState>,
    /// Active transmissions, slab-addressed by the slot encoded in their
    /// [`TxId`] — O(1) lookup instead of a linear scan.
    slots: Vec<Option<ActiveTx>>,
    /// Vacated slab slots available for reuse.
    free_slots: Vec<u32>,
    /// Number of occupied slots.
    live: usize,
    /// Generation counter feeding new [`TxId`]s.
    next_gen: u64,
    rng: StdRng,
    /// Mean received power per ordered link (`src * n + dst`): mean path
    /// loss plus the static shadowing draw. Invalidated only by
    /// [`Medium::set_position`], so `begin()` does one table lookup plus
    /// a fast-fading draw per receiver.
    link_mean: Vec<LinkMean>,
    fast_sigma: Db,
    stats: MediumStats,
    /// Instrumentation enabled — gates every event construction below,
    /// so an unobserved medium pays one predictable branch per site.
    observe: bool,
    /// CCA threshold for carrier-sense transition events.
    cs_threshold: MilliWatts,
    /// Last carrier-sense state emitted per node.
    cs_busy: Vec<bool>,
    /// Events accumulated since the last [`Medium::take_events`].
    events: Vec<SimEvent>,
    /// Wall-clock nanoseconds spent verifying the ledger. Kept outside
    /// [`MediumStats`] so wall-clock time never enters a [`SimReport`].
    ledger_check_nanos: u64,
}

impl Medium {
    /// Creates a medium for nodes at `positions` over `channel`. The
    /// channel\'s shadowing deviation is split into a static per-link
    /// component (drawn here, reciprocal, folded into the link cache)
    /// and a small per-frame fading component of at most
    /// [`FAST_SIGMA_DB`].
    pub fn new(
        channel: LogNormalShadowing,
        positions: Vec<Position>,
        capture: bool,
        mut rng: StdRng,
    ) -> Self {
        let n = positions.len();
        let states = vec![PhyState::default(); n];
        let sigma = channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        let mut link_mean = vec![LinkMean::new(Dbm::MIN); n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let draw = Db::new(slow * sample_standard_normal(&mut rng));
                let d = positions[a].distance_to(positions[b]).max(Meters::new(1.0));
                let mean = LinkMean::new(channel.mean_power(d) + draw);
                link_mean[a * n + b] = mean;
                link_mean[b * n + a] = mean;
            }
        }
        Medium {
            channel,
            positions,
            capture,
            inband_announce: false,
            states,
            slots: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            next_gen: 0,
            rng,
            link_mean,
            fast_sigma: Db::new(fast),
            stats: MediumStats::default(),
            observe: false,
            cs_threshold: Dbm::MIN.to_milliwatts(),
            cs_busy: vec![false; n],
            events: Vec::new(),
            ledger_check_nanos: 0,
        }
    }

    /// Enables in-band header announcements.
    pub fn set_inband_announce(&mut self, enabled: bool) {
        self.inband_announce = enabled;
    }

    /// Enables instrumentation-event emission; carrier-sense busy/idle
    /// transitions are judged against the CCA threshold `t_cs`.
    pub fn enable_observation(&mut self, t_cs: Dbm) {
        self.observe = true;
        self.cs_threshold = t_cs.to_milliwatts();
    }

    /// Drains the events accumulated since the last call (always empty
    /// unless [`Medium::enable_observation`] was called).
    pub fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Hands a drained buffer back so its capacity is reused.
    pub fn restore_event_buffer(&mut self, mut buf: Vec<SimEvent>) {
        if self.events.is_empty() {
            buf.clear();
            self.events = buf;
        }
    }

    /// Wall-clock nanoseconds spent in ledger verification (debug
    /// builds; 0 in release). Surfaced by the run profiler only — never
    /// part of a report.
    pub fn ledger_check_nanos(&self) -> u64 {
        self.ledger_check_nanos
    }

    /// Emits a carrier-sense transition event for every node whose
    /// sensed power crossed the CCA threshold since the last pass.
    fn emit_cs_transitions(&mut self) {
        for n in 0..self.states.len() {
            let busy = self.sensed(NodeId(n)).value() >= self.cs_threshold.value();
            if busy != self.cs_busy[n] {
                self.cs_busy[n] = busy;
                self.events.push(if busy {
                    SimEvent::CsBusy { node: NodeId(n) }
                } else {
                    SimEvent::CsIdle { node: NodeId(n) }
                });
            }
        }
    }

    /// Moves a node: future propagation uses the new position, and the
    /// static shadowing of every link involving the node is redrawn (a
    /// mover meets new walls); both invalidate exactly the moved node's
    /// rows of the link cache. Transmissions already on the air keep the
    /// powers they were drawn with.
    pub fn set_position(&mut self, node: NodeId, to: Position) {
        let n = self.positions.len();
        self.positions[node.0] = to;
        let sigma = self.channel.sigma().value();
        let fast = sigma.min(FAST_SIGMA_DB);
        let slow = (sigma * sigma - fast * fast).max(0.0).sqrt();
        for other in 0..n {
            if other != node.0 {
                let draw = Db::new(slow * sample_standard_normal(&mut self.rng));
                let d = self.positions[node.0]
                    .distance_to(self.positions[other])
                    .max(Meters::new(1.0));
                let mean = LinkMean::new(self.channel.mean_power(d) + draw);
                self.link_mean[node.0 * n + other] = mean;
                self.link_mean[other * n + node.0] = mean;
            }
        }
    }

    /// One received-power sample for the link `src → dst`: the cached
    /// mean link power plus fresh fast fading (skipped entirely when the
    /// fading deviation is zero — the cache already holds the exact
    /// quantized power).
    fn sample_link_power(&mut self, src: usize, dst: usize) -> QuantizedPower {
        let n = self.positions.len();
        let mean = self.link_mean[src * n + dst];
        // A fading deviation is non-negative; zero disables fast fading.
        if self.fast_sigma.value() <= 0.0 {
            return mean.quantized;
        }
        let fast = Db::new(self.fast_sigma.value() * sample_standard_normal(&mut self.rng));
        QuantizedPower::from_milliwatts((mean.dbm + fast).to_milliwatts())
    }

    /// Total ambient power currently sensed at `node` (noise floor plus
    /// every active transmission, excluding the node's own). A pure
    /// function of the active-transmission set — see the module docs.
    pub fn sensed(&self, node: NodeId) -> MilliWatts {
        NOISE_FLOOR.to_milliwatts() + self.states[node.0].incoming.to_milliwatts()
    }

    /// Whether `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.states[node.0].transmitting.is_some()
    }

    /// Whether `node` is currently locked onto (decoding) a frame —
    /// the preamble-detection component of carrier sensing.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.states[node.0].lock.is_some()
    }

    /// Number of transmissions currently on the air.
    pub fn active_count(&self) -> usize {
        self.live
    }

    /// Counters of capture, hazard and ledger-verification events.
    pub fn stats(&self) -> MediumStats {
        self.stats
    }

    /// Recomputes `node`'s incoming power from scratch over the active
    /// transmissions — the reference the incremental ledger must match.
    fn recomputed_incoming(&self, node: usize) -> QuantizedPower {
        self.slots
            .iter()
            .flatten()
            .filter(|a| a.frame.src.0 != node)
            .map(|a| a.powers[node])
            .sum()
    }

    /// Largest divergence (in ledger grains) between any node's
    /// incremental ledger and a from-scratch recomputation over the
    /// active set. The ledger invariant says this is always 0; the
    /// long-run drift test pins that down.
    pub fn ledger_divergence_grains(&self) -> u128 {
        (0..self.positions.len())
            .map(|n| {
                self.states[n]
                    .incoming
                    .abs_diff(self.recomputed_incoming(n))
            })
            .max()
            .unwrap_or(0)
    }

    /// Debug-build ledger verification, run after every mutation. The
    /// wall-clock cost is accumulated for the run profiler.
    fn debug_check_ledger(&mut self) {
        if cfg!(debug_assertions) {
            // simlint: allow(determinism) — wall clock only times the audit, never feeds sim state
            let started = std::time::Instant::now();
            self.stats.ledger_checks += 1;
            let divergence = self.ledger_divergence_grains();
            debug_assert_eq!(divergence, 0, "power ledger diverged from the active set");
            self.ledger_check_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Allocates a slab slot for a new transmission and returns its id.
    fn allocate(&mut self, active: ActiveTx) -> TxId {
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        assert!(slot < (1usize << SLOT_BITS), "transmission slab exhausted");
        let id = TxId((self.next_gen << SLOT_BITS) | slot as u64);
        self.next_gen += 1;
        self.slots[slot] = Some(ActiveTx { id, ..active });
        self.live += 1;
        id
    }

    /// Looks up an active transmission by id.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air.
    fn active(&self, tx: TxId) -> &ActiveTx {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            // simlint: allow(panic-policy) — documented invariant: ending a tx that is not on the air corrupts hazard integrals, so refuse loudly
            .unwrap_or_else(|| panic!("transmission {tx:?} not on the air"))
    }

    /// Puts `frame` on the air from its source at `now`, lasting until
    /// `end`. Returns the transmission id and the per-node notifications.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting, or if `end` is not
    /// after `now`.
    pub fn begin(
        &mut self,
        frame: Frame,
        now: SimTime,
        end: SimTime,
    ) -> (TxId, Vec<(NodeId, PhyNote)>) {
        let src = frame.src.0;
        assert!(
            self.states[src].transmitting.is_none(),
            "node {} started a second transmission",
            frame.src
        );
        assert!(
            end > now,
            "transmission must end after it begins ({now} .. {end})"
        );

        // One fading draw per receiver, consistent for the frame's whole
        // lifetime.
        let powers: Vec<QuantizedPower> = (0..self.positions.len())
            .map(|n| {
                if n == src {
                    QuantizedPower::ZERO
                } else {
                    self.sample_link_power(src, n)
                }
            })
            .collect();

        let id = self.allocate(ActiveTx {
            id: TxId(0),
            frame,
            end,
            powers: powers.clone(),
        });

        self.states[src].transmitting = Some(id);
        // A transmitting node cannot keep receiving: it loses any lock.
        self.states[src].lock = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxBegin {
                src: frame.src,
                dst: frame.dst,
                kind: frame.kind(),
                rate: frame.rate,
            });
        }

        let mut notes = Vec::new();
        let capture = self.capture;
        let mut captures = 0;
        // Captured receivers, recorded as events once the per-node
        // borrow below is released.
        let mut captured: Vec<usize> = Vec::new();
        for (n, &power) in powers.iter().enumerate() {
            if n == src {
                continue;
            }
            let p = power.to_milliwatts();
            let state = &mut self.states[n];
            let ambient = NOISE_FLOOR.to_milliwatts() + state.incoming.to_milliwatts();
            let threshold = frame.rate.min_sinr().to_linear();
            let decodable =
                state.transmitting.is_none() && p.value() / ambient.value() >= threshold;
            state.incoming += power;
            let incoming_now = state.incoming.to_milliwatts();
            let mut announced = false;
            state.lock = match state.lock {
                None if decodable => {
                    announced = true;
                    Some(RxLock {
                        tx: id,
                        signal: p,
                        interference: ambient,
                        hazard: 0.0,
                        since: now,
                        rate: frame.rate,
                    })
                }
                None => None,
                Some(mut lock) => {
                    // Close the exposure span at the old interference
                    // level, then raise it.
                    lock.accrue(now);
                    lock.interference = NOISE_FLOOR.to_milliwatts() + incoming_now - lock.signal;
                    // Preamble capture: the new frame is decodable even
                    // over the locked signal.
                    if capture && decodable {
                        announced = true;
                        captures += 1;
                        if observe {
                            captured.push(n);
                        }
                        Some(RxLock {
                            tx: id,
                            signal: p,
                            interference: ambient,
                            hazard: 0.0,
                            since: now,
                            rate: frame.rate,
                        })
                    } else {
                        Some(lock)
                    }
                }
            };
            if announced
                && self.inband_announce
                && matches!(frame.body, crate::frame::FrameBody::Data { .. })
            {
                notes.push((
                    NodeId(n),
                    PhyNote::Announce {
                        link: (frame.src, frame.dst),
                        data_end: end,
                    },
                ));
            }
            notes.push((NodeId(n), PhyNote::Sense));
        }

        self.stats.captures += captures;
        if observe {
            for n in captured {
                self.events.push(SimEvent::Capture {
                    node: NodeId(n),
                    src: frame.src,
                });
            }
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        (id, notes)
    }

    /// Takes a transmission off the air at `now`, resolving receptions.
    /// Returns per-node notifications (`Rx` for a successful receiver,
    /// `TxDone` for the sender, `Sense` for everyone whose ambient power
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not on the air, or if `now` differs from the
    /// end time the transmission was scheduled with — ending a frame at
    /// the wrong instant would corrupt every overlapping hazard
    /// integral, so the medium refuses instead of silently accepting it.
    pub fn end(&mut self, tx: TxId, now: SimTime) -> Vec<(NodeId, PhyNote)> {
        let scheduled = self.active(tx).end;
        assert_eq!(
            scheduled, now,
            "Medium::end({tx:?}) at {now}, but the transmission is scheduled to end at {scheduled}"
        );
        let slot = tx.slot();
        let ActiveTx {
            id, frame, powers, ..
            // simlint: allow(panic-policy) — active(tx) above already proved the slot is occupied
        } = self.slots[slot].take().expect("checked by active()");
        self.free_slots.push(slot as u32);
        self.live -= 1;

        let src = frame.src.0;
        self.states[src].transmitting = None;

        let observe = self.observe;
        if observe {
            self.events.push(SimEvent::TxEnd {
                src: frame.src,
                kind: frame.kind(),
            });
        }

        let mut notes = Vec::new();
        for (n, &power) in powers.iter().enumerate() {
            if n == src {
                continue;
            }
            self.states[n].incoming -= power;
            if let Some(mut lock) = self.states[n].lock {
                if lock.tx == id {
                    // Close the final exposure span and draw survival.
                    lock.accrue(now);
                    self.states[n].lock = None;
                    let survive = (-lock.hazard).exp();
                    if survive >= 1.0 - 1e-12 || self.rng.gen::<f64>() < survive {
                        if observe {
                            let sinr_db =
                                10.0 * (lock.signal.value() / lock.interference.value()).log10();
                            self.events.push(SimEvent::RxResolved {
                                node: NodeId(n),
                                src: frame.src,
                                rssi_dbm: lock.signal.to_dbm().value(),
                                sinr_db,
                            });
                        }
                        notes.push((
                            NodeId(n),
                            PhyNote::Rx {
                                frame,
                                rssi: lock.signal.to_dbm(),
                            },
                        ));
                    } else {
                        self.stats.hazard_drops += 1;
                        if observe {
                            self.events.push(SimEvent::HazardDrop {
                                node: NodeId(n),
                                src: frame.src,
                            });
                        }
                    }
                } else {
                    // The locked frame's interference just dropped: close
                    // its span at the old level.
                    lock.accrue(now);
                    lock.interference = NOISE_FLOOR.to_milliwatts()
                        + self.states[n].incoming.to_milliwatts()
                        - lock.signal;
                    self.states[n].lock = Some(lock);
                }
            }
            notes.push((NodeId(n), PhyNote::Sense));
        }
        notes.push((NodeId(src), PhyNote::TxDone { frame }));
        if observe {
            self.emit_cs_transitions();
        }
        self.debug_check_ledger();
        notes
    }

    /// The scheduled end time of an active transmission.
    pub fn end_time(&self, tx: TxId) -> Option<SimTime> {
        self.slots
            .get(tx.slot())
            .and_then(Option::as_ref)
            .filter(|a| a.id == tx)
            .map(|a| a.end)
    }

    /// The propagation channel in force.
    pub fn channel(&self) -> &LogNormalShadowing {
        &self.channel
    }

    /// True position of a node.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::time::SimDuration;
    use comap_radio::rates::Rate;
    use comap_radio::units::Db;
    use rand::SeedableRng;

    use crate::frame::FrameBody;

    /// A deterministic (σ = 0) medium: A at 0, B at 10 m, C at 200 m.
    fn medium() -> Medium {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(200.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        )
    }

    fn data(src: usize, dst: usize) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            body: FrameBody::Data {
                seq: 0,
                payload_bytes: 500,
                retry: false,
            },
            rate: Rate::Mbps11,
        }
    }

    fn end_at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn clean_frame_is_delivered() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx, end_at(1000));
        let rx = notes
            .iter()
            .find(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. }));
        assert!(rx.is_some(), "B must receive: {notes:?}");
        assert!(notes
            .iter()
            .any(|(n, note)| *n == NodeId(0) && matches!(note, PhyNote::TxDone { .. })));
    }

    #[test]
    fn sensed_power_rises_and_falls_exactly() {
        let mut m = medium();
        let idle = m.sensed(NodeId(1));
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert!(m.sensed(NodeId(1)).value() > idle.value() * 100.0);
        m.end(tx, end_at(1000));
        // The exact ledger restores the idle level bit for bit — not
        // merely within a tolerance.
        assert_eq!(m.sensed(NodeId(1)), idle);
    }

    #[test]
    fn remote_node_barely_senses() {
        let mut m = medium();
        let (_tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        // At 200 m with α = 2.9: ~ −107 dBm, far below the −95 dBm floor.
        let sensed = m.sensed(NodeId(2)).to_dbm();
        assert!(sensed.value() < -94.0, "sensed = {sensed}");
    }

    #[test]
    fn transmitting_node_cannot_receive() {
        let mut m = medium();
        let (tx_b, _) = m.begin(data(1, 2), SimTime::ZERO, end_at(1000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes = m.end(tx_a, end_at(1000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "B was transmitting and must miss A's frame"
        );
        m.end(tx_b, end_at(1000));
    }

    #[test]
    fn collision_corrupts_the_weaker_frame() {
        // C transmits to B from 190 m — far too weak; then A's strong
        // frame arrives and (with capture) steals the lock.
        let mut m = medium();
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            notes_a
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "A's frame captures: {notes_a:?}"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "C's frame is lost"
        );
    }

    #[test]
    fn without_capture_the_first_lock_sticks_and_dies() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(30.0, 0.0),
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        // C at 30 m from B(10 m): decodable alone. Then A's much stronger
        // frame arrives: no capture, so the lock stays with C and is
        // corrupted by A.
        let (tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let notes_a = m.end(tx_a, end_at(1000));
        assert!(
            !notes_a
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "A must not be received without capture"
        );
        let notes_c = m.end(tx_c, end_at(2000));
        assert!(
            !notes_c
                .iter()
                .any(|(_, note)| matches!(note, PhyNote::Rx { .. })),
            "C was corrupted by A"
        );
    }

    #[test]
    fn interference_high_water_mark_outlives_the_interferer() {
        // Interferer overlaps only the first quarter of the frame; the
        // frame must still be judged by the worst-case overlap. Capture
        // is off so the lock provably stays with the first frame.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),  // A: sender
                Position::new(30.0, 0.0), // B: receiver (30 m)
                Position::new(32.0, 0.0), // C: close interferer
            ],
            false,
            StdRng::seed_from_u64(1),
        );
        let (tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(2000));
        let (tx_c, _) = m.begin(data(2, 0), SimTime::ZERO, end_at(500));
        m.end(tx_c, end_at(500)); // interferer gone long before the frame ends
        let notes = m.end(tx_a, end_at(2000));
        assert!(
            !notes
                .iter()
                .any(|(n, note)| *n == NodeId(1) && matches!(note, PhyNote::Rx { .. })),
            "frame must be corrupted by the transient interferer"
        );
        assert!(
            m.stats().hazard_drops >= 1,
            "the corruption shows up in the counters"
        );
    }

    #[test]
    #[should_panic(expected = "second transmission")]
    fn double_transmit_panics() {
        let mut m = medium();
        let _ = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.begin(data(0, 2), SimTime::ZERO, end_at(1000));
    }

    #[test]
    #[should_panic(expected = "scheduled to end at")]
    fn ending_at_the_wrong_time_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        let _ = m.end(tx, end_at(900));
    }

    #[test]
    #[should_panic(expected = "not on the air")]
    fn ending_twice_panics() {
        let mut m = medium();
        let (tx, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx, end_at(1000));
        let _ = m.end(tx, end_at(1000));
    }

    #[test]
    fn slab_slots_are_reused_without_id_aliasing() {
        let mut m = medium();
        let (tx1, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        m.end(tx1, end_at(1000));
        let (tx2, _) = m.begin(data(0, 1), end_at(1000), end_at(2000));
        assert_ne!(tx1, tx2, "generations keep reused slots distinguishable");
        assert_eq!(m.end_time(tx1), None, "the ended id is stale");
        assert_eq!(m.end_time(tx2), Some(end_at(2000)));
        assert_eq!(m.active_count(), 1);
        m.end(tx2, end_at(2000));
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn capture_shows_up_in_the_counters() {
        // C at 40 m (30 m from B): decodable alone (≈ −83 dBm, 12 dB over
        // the floor) but weak enough that A's frame (−69 dBm from 10 m)
        // clears the 11 Mbps threshold over it and steals the lock.
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::ZERO);
        let mut m = Medium::new(
            chan,
            vec![
                Position::new(0.0, 0.0),
                Position::new(10.0, 0.0),
                Position::new(40.0, 0.0),
            ],
            true,
            StdRng::seed_from_u64(1),
        );
        let (_tx_c, _) = m.begin(data(2, 1), SimTime::ZERO, end_at(2000));
        assert_eq!(m.stats().captures, 0);
        let (_tx_a, _) = m.begin(data(0, 1), SimTime::ZERO, end_at(1000));
        assert_eq!(m.stats().captures, 1, "A's frame captures B's lock");
    }

    #[test]
    fn ledger_matches_recomputation_through_churn() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let positions: Vec<Position> = (0..6)
            .map(|i| Position::new(10.0 * i as f64, 3.0 * i as f64))
            .collect();
        let mut m = Medium::new(chan, positions, true, StdRng::seed_from_u64(3));
        let mut t = 0u64;
        for round in 0..200 {
            let src = round % 6;
            let dst = (round + 1) % 6;
            let (tx, _) = m.begin(data(src, dst), end_at(t), end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            m.end(tx, end_at(t + 100));
            assert_eq!(m.ledger_divergence_grains(), 0);
            t += 100;
        }
    }
}
