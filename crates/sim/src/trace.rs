//! Optional event tracing, used by the timeline example to reproduce the
//! paper's Fig. 6 communication-procedure diagrams.

use std::fmt;

use comap_mac::time::SimTime;

use crate::frame::NodeId;

/// One traced MAC/PHY event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A transmission started.
    TxStart {
        /// Transmitter.
        node: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Short label ("HDR", "DATA", "ACK").
        what: &'static str,
    },
    /// A transmission ended.
    TxEnd {
        /// Transmitter.
        node: NodeId,
    },
    /// A node froze its backoff because the channel went busy.
    Defer {
        /// The deferring node.
        node: NodeId,
    },
    /// A node entered the exposed-terminal opportunity window.
    EtOpportunity {
        /// The exposed terminal.
        node: NodeId,
    },
    /// A node abandoned its opportunity (RSSI watchdog).
    EtAbandon {
        /// The abandoning node.
        node: NodeId,
    },
    /// A frame was delivered.
    Delivered {
        /// Receiving node.
        node: NodeId,
        /// Originating node.
        from: NodeId,
    },
}

/// A time-stamped log of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<(SimTime, TraceEvent)>,
    enabled: bool,
}

impl TraceLog {
    /// Creates a log; a disabled log drops everything pushed into it.
    pub fn new(enabled: bool) -> Self {
        TraceLog {
            events: Vec::new(),
            enabled,
        }
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, time: SimTime, event: TraceEvent) {
        if self.enabled {
            self.events.push((time, event));
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (t, e) in &self.events {
            writeln!(f, "{t} {e:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_drops_events() {
        let mut log = TraceLog::new(false);
        log.push(SimTime::ZERO, TraceEvent::TxEnd { node: NodeId(0) });
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new(true);
        log.push(SimTime::ZERO, TraceEvent::Defer { node: NodeId(1) });
        log.push(
            SimTime::from_nanos(5),
            TraceEvent::TxEnd { node: NodeId(1) },
        );
        assert_eq!(log.events().len(), 2);
        assert!(log.to_string().contains("Defer"));
    }
}
