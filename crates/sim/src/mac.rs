//! The MAC state machine: 802.11 DCF with CO-MAP extensions.
//!
//! One implementation serves both the baseline and CO-MAP — exactly like
//! the paper's artifact, which extends the driver's DCF path — with each
//! CO-MAP behaviour behind a [`MacFeatures`] toggle:
//!
//! * **discovery headers**: a 22-byte announcement frame precedes every
//!   data frame back-to-back, carrying the link and the data airtime;
//! * **ET concurrency**: on decoding a header, a contending node asks its
//!   [`Protocol`] whether a concurrent transmission is safe; if so it
//!   *resumes* its backoff under the RSSI-delta watchdog instead of
//!   deferring (Fig. 6);
//! * **selective-repeat ARQ**: the stop-and-wait retransmission path is
//!   replaced by the sliding window of [`comap_mac::arq`];
//! * **HT adaptation**: payload size and (constant) contention window are
//!   installed from the protocol's adaptation table.
//!
//! The MAC is a pure state machine: the simulator feeds it [`MacEvent`]s
//! plus a context snapshot and applies the returned [`MacAction`]s.

use std::collections::BTreeMap;

use comap_radio::stream::CounterRng;

use comap_core::protocol::Protocol;
use comap_core::scheduler::{EtAction, EtScheduler};
use comap_mac::arq::{Ack, SelectiveRepeatReceiver, SelectiveRepeatSender};
use comap_mac::backoff::{Backoff, BackoffPolicy};
use comap_mac::frames::FrameKind;
use comap_mac::time::{SimDuration, SimTime};
use comap_mac::timing::PhyTiming;
use comap_radio::rates::Rate;
use comap_radio::units::{Dbm, MilliWatts};
use comap_radio::Position;

use crate::config::{MacFeatures, Traffic};
use crate::frame::{Frame, FrameBody, NodeId};
use crate::observe::SimEvent;
use crate::rate::{Minstrel, RateController};

/// Snapshot of the node's radio environment, passed with every event.
#[derive(Debug, Clone, Copy)]
pub struct MacCtx {
    /// Current simulation time.
    pub now: SimTime,
    /// Total ambient power (noise floor + active transmissions).
    pub sensed: MilliWatts,
    /// Whether this node's radio is transmitting right now.
    pub transmitting: bool,
    /// Whether this node's receiver is locked onto a decodable frame
    /// (preamble carrier sense).
    pub locked: bool,
    /// Whether an observer is attached — gates every
    /// [`MacAction::Emit`] so an unobserved run constructs no events.
    pub observing: bool,
}

/// Events delivered to the MAC.
#[derive(Debug, Clone, Copy)]
pub enum MacEvent {
    /// Ambient power changed.
    Sense,
    /// A frame was decoded (any kind, any addressee).
    Rx {
        /// The decoded frame.
        frame: Frame,
        /// Its received signal strength.
        rssi: Dbm,
    },
    /// Own transmission finished.
    TxDone {
        /// The frame that finished.
        frame: Frame,
    },
    /// The flow timer fired (DIFS elapsed / backoff expired / ACK timed
    /// out — meaning depends on the current state).
    FlowTimer,
    /// The responder (SIFS) timer fired: time to send a pending ACK.
    ResponderTimer,
    /// New traffic bytes are available.
    Traffic,
    /// An in-band header was decoded from a data frame on the air.
    Announce {
        /// The announced link.
        link: (NodeId, NodeId),
        /// When the announced data frame ends.
        data_end: SimTime,
    },
}

/// Side effects requested by the MAC.
#[derive(Debug, Clone, Copy)]
pub enum MacAction {
    /// (Re-)arm the flow timer at the given instant, invalidating any
    /// previously armed one.
    ArmFlowTimer(SimTime),
    /// Cancel the flow timer.
    CancelFlowTimer,
    /// Arm the responder timer.
    ArmResponderTimer(SimTime),
    /// Schedule a traffic wakeup.
    ScheduleTraffic(SimTime),
    /// Put a frame on the air.
    Transmit(Frame),
    /// A statistics event for the simulator to account.
    Stat(StatEvent),
    /// An instrumentation event for the attached observers (only ever
    /// produced when [`MacCtx::observing`] is set).
    Emit(SimEvent),
}

/// Statistics notifications.
#[derive(Debug, Clone, Copy)]
pub enum StatEvent {
    /// A data frame went on the air toward `dst`.
    DataTx {
        /// Flow destination.
        dst: NodeId,
    },
    /// Unique payload bytes arrived from `src`.
    Delivered {
        /// Flow source.
        src: NodeId,
        /// Payload bytes of the frame.
        bytes: u32,
    },
    /// An ACK timeout expired for a frame toward `dst`.
    AckTimeout {
        /// Flow destination.
        dst: NodeId,
    },
    /// A frame toward `dst` was dropped after the retry limit.
    Drop {
        /// Flow destination.
        dst: NodeId,
    },
    /// A concurrent (exposed-terminal) transmission started.
    ConcurrentTx,
    /// An exposed opportunity was abandoned by the RSSI watchdog.
    EtAbandon,
    /// A discovery header was decoded.
    HeaderHeard,
}

/// The frame currently in service.
#[derive(Debug, Clone, Copy)]
struct PendingFrame {
    dst: NodeId,
    seq: u64,
    payload: u32,
    retry: bool,
    /// Zero-based transmission attempt this service round corresponds
    /// to — carried so [`SimEvent::FrameTx`] can label the on-air try.
    attempt: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowState {
    /// No frame admitted.
    Idle,
    /// Contending for the channel with `pending`.
    Contend,
    /// Transmitting an RTS (RTS/CTS baseline).
    TxRts,
    /// Waiting for the CTS answering our RTS.
    WaitCts,
    /// Transmitting the discovery header (data follows back-to-back).
    TxHeader,
    /// Transmitting the data frame.
    TxData,
    /// Waiting for the ACK of the last data frame.
    WaitAck,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitPhase {
    /// Channel busy: backoff frozen.
    NeedIdle,
    /// Channel idle: waiting out DIFS (flow timer armed).
    Difs,
    /// Counting down backoff slots since the stored instant (flow timer
    /// armed at expiry).
    Counting(SimTime),
}

/// Exposed-terminal opportunity state.
#[derive(Debug, Clone, Copy)]
struct Opportunity {
    /// The ongoing link we validated against.
    link: (NodeId, NodeId),
    /// When the ongoing data transmission ends.
    until: SimTime,
    /// Ambient power at entry (before the announced data frame is on the
    /// air); the watchdog arms on the first clear rise above this.
    baseline: MilliWatts,
    /// RSSI watchdog; `None` until the data frame's power is observed.
    sched: Option<EtScheduler>,
}

#[derive(Debug)]
struct TrafficState {
    pattern: Traffic,
    /// Accumulated CBR bytes.
    bucket: f64,
    last: SimTime,
}

impl TrafficState {
    fn new(pattern: Traffic) -> Self {
        TrafficState {
            pattern,
            bucket: 0.0,
            last: SimTime::ZERO,
        }
    }

    fn refresh(&mut self, now: SimTime) {
        if let Traffic::Cbr { bps } = self.pattern {
            let dt = now.saturating_duration_since(self.last).as_secs_f64();
            self.bucket += dt * bps / 8.0;
        }
        self.last = now;
    }

    fn available(&self) -> f64 {
        match self.pattern {
            Traffic::Saturated => f64::INFINITY,
            Traffic::Cbr { .. } => self.bucket,
        }
    }

    fn take(&mut self, bytes: u32) {
        if let Traffic::Cbr { .. } = self.pattern {
            self.bucket -= f64::from(bytes);
        }
    }

    /// Time until `bytes` are available, `None` if they already are.
    fn eta(&self, bytes: u32) -> Option<SimDuration> {
        match self.pattern {
            Traffic::Saturated => None,
            Traffic::Cbr { bps } => {
                let missing = f64::from(bytes) - self.bucket;
                if missing <= 0.0 {
                    None
                } else {
                    Some(SimDuration::from_secs_f64(missing * 8.0 / bps))
                }
            }
        }
    }
}

#[derive(Debug)]
struct Flow {
    dst: NodeId,
    traffic: TrafficState,
    next_seq: u64,
}

/// Static wiring the MAC needs from the simulation.
#[derive(Debug)]
pub struct MacConfig {
    /// This node's id.
    pub id: NodeId,
    /// Feature toggles.
    pub features: MacFeatures,
    /// PHY timing profile.
    pub phy: PhyTiming,
    /// Rate-selection policy.
    pub rate_ctl: RateController,
    /// Propagation channel (for the rate genie's mean estimates).
    pub channel: comap_radio::pathloss::LogNormalShadowing,
    /// True node positions (rate genie only; CO-MAP decisions use the
    /// *reported* positions inside the protocol instance).
    pub true_positions: Vec<Position>,
    /// CCA threshold.
    pub t_cs: Dbm,
    /// Backoff policy when adaptation is off.
    pub backoff: BackoffPolicy,
    /// Payload size when adaptation is off.
    pub payload_bytes: u32,
    /// Per-frame retry limit.
    pub retry_limit: u32,
    /// ARQ window size.
    pub arq_window: usize,
    /// Whether a decodable frame counts as a busy channel.
    pub preamble_cs: bool,
}

/// The MAC instance of one node.
#[derive(Debug)]
pub struct Mac {
    cfg: MacConfig,
    /// Seed of this MAC's counter-keyed backoff streams: every draw is
    /// a pure function of `(seed, node id, attempt counter)`.
    seed: u64,
    /// Monotone count of backoff draws taken — the counter half of the
    /// stream key. Never reset, so no key is ever reused.
    backoff_ctr: u64,
    proto: Option<Protocol<NodeId>>,

    flows: Vec<Flow>,
    flow_rr: usize,

    state: FlowState,
    wait: WaitPhase,
    backoff: Backoff,
    retries: u32,
    pending: Option<PendingFrame>,
    current_flow: usize,

    pending_ack: Option<(NodeId, FrameBody)>,
    traffic_armed: bool,
    /// Virtual carrier sense: channel counts busy until this instant
    /// (set by overheard RTS/CTS NAVs).
    nav_until: SimTime,

    // Receiver-side state.
    rx_dedup: BTreeMap<NodeId, u64>,
    arq_rx: BTreeMap<NodeId, SelectiveRepeatReceiver>,

    // Sender-side ARQ.
    arq_tx: BTreeMap<NodeId, SelectiveRepeatSender>,
    /// Consecutive ACK timeouts per destination (selective repeat keeps
    /// the DCF collision-recovery escalation through this counter).
    sr_retries: BTreeMap<NodeId, u32>,

    /// Per-destination Minstrel state when that controller is selected.
    minstrel: BTreeMap<NodeId, Minstrel>,
    /// Rate of the in-flight data frame (Minstrel feedback).
    last_data_rate: Option<Rate>,

    // CO-MAP runtime.
    opportunity: Option<Opportunity>,
    /// The ongoing link the in-flight data frame rode alongside, if it
    /// was sent concurrently (for outcome feedback).
    concurrent_sent: Option<(NodeId, NodeId)>,
    /// Last discovered ongoing transmission: `(link, data start, data
    /// end)` — consulted when a frame is admitted mid-transmission.
    ongoing: Option<((NodeId, NodeId), SimTime, SimTime)>,
    adapted: BTreeMap<NodeId, comap_core::adapt::TxSetting>,
}

impl Mac {
    /// Creates the MAC. `proto` must be `Some` when any CO-MAP feature
    /// needing positions is enabled. `seed` roots the counter-keyed
    /// backoff streams.
    pub fn new(cfg: MacConfig, proto: Option<Protocol<NodeId>>, seed: u64) -> Self {
        Mac {
            cfg,
            seed,
            backoff_ctr: 0,
            proto,
            flows: Vec::new(),
            flow_rr: 0,
            state: FlowState::Idle,
            wait: WaitPhase::NeedIdle,
            backoff: Backoff::from_slots(0),
            retries: 0,
            pending: None,
            current_flow: 0,
            pending_ack: None,
            traffic_armed: false,
            nav_until: SimTime::ZERO,
            rx_dedup: BTreeMap::new(),
            arq_rx: BTreeMap::new(),
            arq_tx: BTreeMap::new(),
            sr_retries: BTreeMap::new(),
            minstrel: BTreeMap::new(),
            last_data_rate: None,
            opportunity: None,
            concurrent_sent: None,
            ongoing: None,
            adapted: BTreeMap::new(),
        }
    }

    /// Registers an outgoing flow.
    pub fn add_flow(&mut self, dst: NodeId, traffic: Traffic) {
        self.flows.push(Flow {
            dst,
            traffic: TrafficState::new(traffic),
            next_seq: 0,
        });
        if self.cfg.features.selective_repeat {
            self.arq_tx
                .insert(dst, SelectiveRepeatSender::new(self.cfg.arq_window));
        }
    }

    /// Read access to the protocol instance (reports, examples).
    pub fn protocol(&self) -> Option<&Protocol<NodeId>> {
        self.proto.as_ref()
    }

    /// This node moved: the true-position table (rate genie) always
    /// follows, while the *reported* position goes through the location
    /// service's mobility threshold. Returns the position to broadcast,
    /// if a report is due.
    pub fn on_moved(&mut self, true_pos: Position, reported_fix: Position) -> Option<Position> {
        self.cfg.true_positions[self.cfg.id.0] = true_pos;
        let proto = self.proto.as_mut()?;
        let report = proto.observe_position(reported_fix)?;
        // Our geometry changed: adapted settings must be re-censused.
        self.adapted.clear();
        Some(report)
    }

    /// A neighbor's position report arrived (disseminated by the APs).
    pub fn on_position_report(&mut self, from: NodeId, position: Position) {
        if let Some(proto) = &mut self.proto {
            if proto.on_position_report(from, position) {
                self.adapted.remove(&from);
            }
        }
    }

    /// Keeps the rate genie's view of a *neighbor's* true position fresh.
    pub fn on_neighbor_moved(&mut self, node: NodeId, true_pos: Position) {
        self.cfg.true_positions[node.0] = true_pos;
    }

    /// Handles one event, returning the actions to apply.
    pub fn handle(&mut self, event: MacEvent, ctx: MacCtx) -> Vec<MacAction> {
        let mut out = Vec::new();
        match event {
            MacEvent::Sense => self.on_sense(ctx, &mut out),
            MacEvent::Rx { frame, rssi } => self.on_rx(frame, rssi, ctx, &mut out),
            MacEvent::TxDone { frame } => self.on_tx_done(frame, ctx, &mut out),
            MacEvent::FlowTimer => self.on_flow_timer(ctx, &mut out),
            MacEvent::ResponderTimer => self.on_responder(ctx, &mut out),
            MacEvent::Traffic => {
                self.traffic_armed = false;
            }
            MacEvent::Announce { link, data_end } => {
                out.push(MacAction::Stat(StatEvent::HeaderHeard));
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::HeaderHeard {
                        node: self.cfg.id,
                        src: link.0,
                        dst: link.1,
                    }));
                }
                if self.cfg.features.et_concurrency {
                    // Unlike a separate header, the in-band announcement
                    // arrives once the data frame is already on the air.
                    self.ongoing = Some((link, ctx.now, data_end));
                    self.try_enter_opportunity(ctx, &mut out);
                }
            }
        }
        self.sync(ctx, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_sense(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        // Feed the RSSI watchdog of an armed opportunity.
        if let Some(op) = &mut self.opportunity {
            if ctx.now >= op.until {
                self.opportunity = None;
            } else {
                match &mut op.sched {
                    None => {
                        // The entry instant also carries the header's
                        // power *drop*; RSSI₁ must be the ongoing data
                        // frame, i.e. the first clear rise over the
                        // entry baseline.
                        if let Some(proto) = &self.proto {
                            if ctx.sensed.value() > op.baseline.value() * 1.5 {
                                op.sched = Some(proto.arm_scheduler(ctx.sensed.to_dbm()));
                            }
                        }
                    }
                    Some(sched) => {
                        if sched.on_rssi(ctx.sensed.to_dbm()) == EtAction::Abandon {
                            self.opportunity = None;
                            out.push(MacAction::Stat(StatEvent::EtAbandon));
                            if ctx.observing {
                                out.push(MacAction::Emit(SimEvent::EtAbandon {
                                    node: self.cfg.id,
                                }));
                            }
                        }
                    }
                }
            }
        }
        // sync() takes care of freeze/resume transitions.
    }

    fn on_rx(&mut self, frame: Frame, rssi: Dbm, ctx: MacCtx, out: &mut Vec<MacAction>) {
        match frame.body {
            FrameBody::Discovery { data_duration } => {
                out.push(MacAction::Stat(StatEvent::HeaderHeard));
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::HeaderHeard {
                        node: self.cfg.id,
                        src: frame.src,
                        dst: frame.dst,
                    }));
                }
                self.consider_opportunity(frame, data_duration, rssi, ctx, out);
            }
            FrameBody::Data {
                seq,
                payload_bytes,
                retry,
            } => {
                if frame.dst != self.cfg.id {
                    return;
                }
                let (is_new, ack_body) = if self.cfg.features.selective_repeat {
                    let rx = self.arq_rx.entry(frame.src).or_default();
                    let new = rx.on_frame(seq);
                    (
                        new,
                        FrameBody::Ack {
                            seq,
                            sr: Some(rx.ack()),
                        },
                    )
                } else {
                    let new = !retry || self.rx_dedup.get(&frame.src) != Some(&seq);
                    self.rx_dedup.insert(frame.src, seq);
                    (new, FrameBody::Ack { seq, sr: None })
                };
                if is_new {
                    out.push(MacAction::Stat(StatEvent::Delivered {
                        src: frame.src,
                        bytes: payload_bytes,
                    }));
                    if ctx.observing {
                        out.push(MacAction::Emit(SimEvent::Delivered {
                            node: self.cfg.id,
                            from: frame.src,
                            bytes: payload_bytes,
                        }));
                    }
                }
                self.pending_ack = Some((frame.src, ack_body));
                out.push(MacAction::ArmResponderTimer(ctx.now + self.cfg.phy.sifs()));
            }
            FrameBody::Ack { seq, sr } => {
                if frame.dst != self.cfg.id {
                    return;
                }
                self.on_ack(frame.src, seq, sr, ctx, out);
            }
            FrameBody::Rts { nav } => {
                if frame.dst == self.cfg.id {
                    // Answer with a CTS after SIFS; its NAV covers the
                    // rest of the exchange.
                    let cts_air = self
                        .cfg
                        .phy
                        .frame_duration(comap_mac::frames::CTS_BYTES, self.cfg.phy.control_rate());
                    let cts_nav = nav - self.cfg.phy.sifs() - cts_air;
                    self.pending_ack = Some((frame.src, FrameBody::Cts { nav: cts_nav }));
                    out.push(MacAction::ArmResponderTimer(ctx.now + self.cfg.phy.sifs()));
                } else {
                    self.set_nav(ctx.now + nav, out);
                }
            }
            FrameBody::Cts { nav } => {
                if frame.dst == self.cfg.id {
                    if self.state == FlowState::WaitCts {
                        if let Some(p) = self.pending {
                            out.push(MacAction::CancelFlowTimer);
                            self.state = FlowState::TxData;
                            let data = self.data_frame(p, ctx, out);
                            out.push(MacAction::Stat(StatEvent::DataTx { dst: p.dst }));
                            out.push(MacAction::Transmit(data));
                        }
                    }
                } else {
                    self.set_nav(ctx.now + nav, out);
                }
            }
        }
    }

    /// Extends the NAV and schedules a re-evaluation at its expiry —
    /// NAV expiry produces no medium event, so without the wakeup a node
    /// whose channel is otherwise quiet would stay frozen forever.
    fn set_nav(&mut self, until: SimTime, out: &mut Vec<MacAction>) {
        if until > self.nav_until {
            self.nav_until = until;
            out.push(MacAction::ScheduleTraffic(
                until + SimDuration::from_nanos(1),
            ));
        }
    }

    fn on_ack(
        &mut self,
        from: NodeId,
        seq: u64,
        sr: Option<Ack>,
        ctx: MacCtx,
        out: &mut Vec<MacAction>,
    ) {
        if self.state == FlowState::WaitAck {
            if let (Some(rate), Some(p)) = (self.last_data_rate, self.pending) {
                if p.dst == from {
                    if let Some(m) = self.minstrel.get_mut(&from) {
                        m.report(rate, true);
                    }
                }
            }
        }
        if let (Some(link), Some(p)) = (self.concurrent_sent, self.pending) {
            if p.dst == from && self.state == FlowState::WaitAck {
                if let Some(proto) = &mut self.proto {
                    proto.record_concurrency_outcome(link, from, true);
                }
                self.concurrent_sent = None;
            }
        }
        if self.cfg.features.selective_repeat {
            self.sr_retries.insert(from, 0);
            let node = self.cfg.id;
            if let (Some(window), Some(sr)) = (self.arq_tx.get_mut(&from), sr) {
                // Goodput is accounted at the receiver; the window only
                // needs the ACK to slide.
                let acked = if ctx.observing {
                    window.on_ack_with(sr, |seq| {
                        out.push(MacAction::Emit(SimEvent::FrameAcked {
                            node,
                            dst: from,
                            seq,
                        }));
                    })
                } else {
                    window.on_ack(sr)
                };
                if ctx.observing && acked > 0 {
                    out.push(MacAction::Emit(SimEvent::Dequeue {
                        node: self.cfg.id,
                        dst: from,
                        depth: window.outstanding() as u32,
                    }));
                }
            }
            if self.state == FlowState::WaitAck && self.pending.map(|p| p.dst) == Some(from) {
                self.state = FlowState::Idle;
                self.pending = None;
                self.retries = 0;
                out.push(MacAction::CancelFlowTimer);
            }
        } else if self.state == FlowState::WaitAck {
            if let Some(p) = self.pending {
                if p.dst == from && p.seq == seq {
                    self.state = FlowState::Idle;
                    self.pending = None;
                    self.retries = 0;
                    out.push(MacAction::CancelFlowTimer);
                    if ctx.observing {
                        out.push(MacAction::Emit(SimEvent::FrameAcked {
                            node: self.cfg.id,
                            dst: from,
                            seq,
                        }));
                        out.push(MacAction::Emit(SimEvent::Dequeue {
                            node: self.cfg.id,
                            dst: from,
                            depth: 0,
                        }));
                    }
                }
            }
        }
    }

    fn on_tx_done(&mut self, frame: Frame, ctx: MacCtx, out: &mut Vec<MacAction>) {
        match frame.kind() {
            FrameKind::DiscoveryHeader => {
                // Data follows back-to-back.
                if let Some(p) = self.pending {
                    self.state = FlowState::TxData;
                    let data = self.data_frame(p, ctx, out);
                    out.push(MacAction::Stat(StatEvent::DataTx { dst: p.dst }));
                    out.push(MacAction::Transmit(data));
                } else {
                    self.state = FlowState::Idle;
                }
            }
            FrameKind::Data => {
                self.state = FlowState::WaitAck;
                out.push(MacAction::ArmFlowTimer(
                    ctx.now + self.cfg.phy.ack_timeout(),
                ));
            }
            FrameKind::Rts => {
                self.state = FlowState::WaitCts;
                let timeout = self.cfg.phy.sifs()
                    + self
                        .cfg
                        .phy
                        .frame_duration(comap_mac::frames::CTS_BYTES, self.cfg.phy.control_rate())
                    + self.cfg.phy.slot();
                out.push(MacAction::ArmFlowTimer(ctx.now + timeout));
            }
            FrameKind::Ack | FrameKind::Cts => {
                // Responder duty done; flow state untouched.
            }
        }
    }

    fn on_flow_timer(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        match self.state {
            FlowState::WaitAck => self.on_ack_timeout(ctx, out),
            FlowState::WaitCts => self.on_ack_timeout(ctx, out),
            FlowState::Contend => match self.wait {
                WaitPhase::Difs => {
                    if self.effective_busy(ctx) {
                        self.wait = WaitPhase::NeedIdle;
                    } else if self.backoff.is_expired() {
                        self.start_transmission(ctx, out);
                    } else {
                        self.wait = WaitPhase::Counting(ctx.now);
                        if ctx.observing {
                            out.push(MacAction::Emit(SimEvent::Resume { node: self.cfg.id }));
                        }
                        out.push(MacAction::ArmFlowTimer(
                            ctx.now
                                + self.cfg.phy.slot() * u64::from(self.backoff.slots_remaining()),
                        ));
                    }
                }
                WaitPhase::Counting(since) => {
                    if self.effective_busy(ctx) {
                        // The channel (possibly our own responder ACK)
                        // went busy after the timer was armed: freeze
                        // instead of transmitting blind.
                        let elapsed = ctx.now.saturating_duration_since(since);
                        let slots = (elapsed / self.cfg.phy.slot()) as u32;
                        self.backoff.consume(slots);
                        self.wait = WaitPhase::NeedIdle;
                    } else {
                        self.backoff.consume(self.backoff.slots_remaining());
                        self.start_transmission(ctx, out);
                    }
                }
                WaitPhase::NeedIdle => {
                    // Stale timer that raced a freeze; ignore.
                }
            },
            _ => {}
        }
    }

    fn on_ack_timeout(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        let Some(p) = self.pending else {
            self.state = FlowState::Idle;
            return;
        };
        out.push(MacAction::Stat(StatEvent::AckTimeout { dst: p.dst }));
        if ctx.observing {
            out.push(MacAction::Emit(SimEvent::AckTimeout {
                node: self.cfg.id,
                dst: p.dst,
            }));
        }
        if let Some(rate) = self.last_data_rate {
            if let Some(m) = self.minstrel.get_mut(&p.dst) {
                m.report(rate, false);
            }
        }
        if let Some(link) = self.concurrent_sent.take() {
            if let Some(proto) = &mut self.proto {
                proto.record_concurrency_outcome(link, p.dst, false);
            }
        }
        if self.cfg.features.selective_repeat {
            // Selective repeat: move on; the window decides what to send
            // next, retransmitting swept losses. Keep DCF's collision
            // recovery: consecutive timeouts escalate the next backoff.
            *self.sr_retries.entry(p.dst).or_insert(0) += 1;
            self.state = FlowState::Idle;
            self.pending = None;
            self.retries = 0;
        } else {
            self.retries += 1;
            if self.retries > self.cfg.retry_limit {
                out.push(MacAction::Stat(StatEvent::Drop { dst: p.dst }));
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::Drop {
                        node: self.cfg.id,
                        dst: p.dst,
                    }));
                    out.push(MacAction::Emit(SimEvent::FrameDropped {
                        node: self.cfg.id,
                        dst: p.dst,
                        seq: p.seq,
                    }));
                    out.push(MacAction::Emit(SimEvent::Dequeue {
                        node: self.cfg.id,
                        dst: p.dst,
                        depth: 0,
                    }));
                }
                self.pending = None;
                self.retries = 0;
                self.state = FlowState::Idle;
            } else {
                self.pending = Some(PendingFrame {
                    retry: true,
                    attempt: self.retries,
                    ..p
                });
                self.backoff = self.draw_backoff(p.dst, self.retries);
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::Retry {
                        node: self.cfg.id,
                        dst: p.dst,
                        attempt: self.retries,
                    }));
                    out.push(MacAction::Emit(SimEvent::BackoffDraw {
                        node: self.cfg.id,
                        stage: self.retries,
                        slots: self.backoff.slots_remaining(),
                    }));
                }
                self.state = FlowState::Contend;
                self.wait = WaitPhase::NeedIdle;
            }
        }
    }

    fn on_responder(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        let Some((to, body)) = self.pending_ack.take() else {
            return;
        };
        if ctx.transmitting {
            // Radio occupied (rare): the ACK is lost, as on real hardware.
            return;
        }
        let ack = Frame {
            src: self.cfg.id,
            dst: to,
            body,
            rate: self.cfg.phy.control_rate(),
        };
        out.push(MacAction::Transmit(ack));
    }

    // ------------------------------------------------------------------
    // The catch-all synchronizer
    // ------------------------------------------------------------------

    /// Reconciles the flow state with the channel after any event.
    fn sync(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        // Expire a stale opportunity.
        if let Some(op) = &self.opportunity {
            if ctx.now >= op.until {
                self.opportunity = None;
            }
        }
        if ctx.transmitting {
            return;
        }
        if self.state == FlowState::Idle {
            self.admit_frame(ctx, out);
        }
        if self.state != FlowState::Contend {
            return;
        }
        let busy = self.effective_busy(ctx);
        match self.wait {
            WaitPhase::NeedIdle => {
                if !busy {
                    if self.opportunity.is_some() {
                        // Resume backoff straight away (paper Fig. 6):
                        // the "idle" verdict comes from the watchdog.
                        self.begin_counting(ctx, out);
                    } else {
                        self.wait = WaitPhase::Difs;
                        out.push(MacAction::ArmFlowTimer(ctx.now + self.cfg.phy.difs()));
                    }
                }
            }
            WaitPhase::Difs => {
                if busy {
                    self.wait = WaitPhase::NeedIdle;
                    out.push(MacAction::CancelFlowTimer);
                }
            }
            WaitPhase::Counting(since) => {
                if busy {
                    let elapsed = ctx.now.saturating_duration_since(since);
                    let slots = (elapsed / self.cfg.phy.slot()) as u32;
                    self.backoff.consume(slots);
                    self.wait = WaitPhase::NeedIdle;
                    out.push(MacAction::CancelFlowTimer);
                    if ctx.observing {
                        out.push(MacAction::Emit(SimEvent::Defer { node: self.cfg.id }));
                    }
                }
            }
        }
    }

    fn begin_counting(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        self.wait = WaitPhase::Counting(ctx.now);
        if ctx.observing {
            out.push(MacAction::Emit(SimEvent::Resume { node: self.cfg.id }));
        }
        out.push(MacAction::ArmFlowTimer(
            ctx.now + self.cfg.phy.slot() * u64::from(self.backoff.slots_remaining()),
        ));
    }

    // ------------------------------------------------------------------
    // Frame admission and transmission
    // ------------------------------------------------------------------

    /// Picks the next frame to serve, if any traffic is ready.
    fn admit_frame(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        if self.flows.is_empty() {
            return;
        }
        let n = self.flows.len();
        for probe in 0..n {
            let idx = (self.flow_rr + probe) % n;
            if let Some(p) = self.try_flow(idx, ctx, out) {
                self.flow_rr = (idx + 1) % n;
                self.current_flow = idx;
                self.pending = Some(p);
                self.retries = 0;
                let escalation = self.sr_retries.get(&p.dst).copied().unwrap_or(0);
                self.backoff = self.draw_backoff(p.dst, escalation);
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::BackoffDraw {
                        node: self.cfg.id,
                        stage: escalation,
                        slots: self.backoff.slots_remaining(),
                    }));
                }
                self.state = FlowState::Contend;
                self.wait = WaitPhase::NeedIdle;
                self.try_enter_opportunity(ctx, out);
                return;
            }
        }
        // Nothing ready: schedule the earliest CBR wakeup.
        if !self.traffic_armed {
            let dsts: Vec<NodeId> = self.flows.iter().map(|f| f.dst).collect();
            let mut min_eta: Option<SimDuration> = None;
            for (i, dst) in dsts.into_iter().enumerate() {
                let payload = self.payload_for(dst, ctx.observing, out);
                if let Some(eta) = self.flows[i].traffic.eta(payload) {
                    min_eta = Some(min_eta.map_or(eta, |m: SimDuration| m.min(eta)));
                }
            }
            if let Some(min) = min_eta {
                self.traffic_armed = true;
                out.push(MacAction::ScheduleTraffic(
                    ctx.now + min.max(SimDuration::from_micros(1)),
                ));
            }
        }
    }

    fn try_flow(
        &mut self,
        idx: usize,
        ctx: MacCtx,
        out: &mut Vec<MacAction>,
    ) -> Option<PendingFrame> {
        let payload = self.payload_for(self.flows[idx].dst, ctx.observing, out);
        let dst = self.flows[idx].dst;
        let node = self.cfg.id;
        let flow = &mut self.flows[idx];
        flow.traffic.refresh(ctx.now);

        if self.cfg.features.selective_repeat {
            let window = self
                .arq_tx
                .get_mut(&dst)
                // simlint: allow(panic-policy) — windows are created for every flow at setup; a miss is a wiring bug
                .expect("ARQ window exists per flow");
            // Keep the window full.
            while window.has_room() && flow.traffic.available() >= f64::from(payload) {
                flow.traffic.take(payload);
                let seq = window.enqueue(payload);
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::Enqueue {
                        node,
                        dst,
                        depth: window.outstanding() as u32,
                    }));
                    if let Some(seq) = seq {
                        out.push(MacAction::Emit(SimEvent::FrameQueued { node, dst, seq }));
                    }
                }
            }
            loop {
                let seq = window.next_to_send()?;
                let attempts = window.attempts_of(seq).unwrap_or(0);
                if attempts > self.cfg.retry_limit {
                    window.abandon(seq);
                    out.push(MacAction::Stat(StatEvent::Drop { dst }));
                    if ctx.observing {
                        out.push(MacAction::Emit(SimEvent::Drop { node, dst }));
                        out.push(MacAction::Emit(SimEvent::FrameDropped { node, dst, seq }));
                        out.push(MacAction::Emit(SimEvent::Dequeue {
                            node,
                            dst,
                            depth: window.outstanding() as u32,
                        }));
                    }
                    continue;
                }
                let payload = window.payload_of(seq).unwrap_or(payload);
                if ctx.observing && attempts > 0 {
                    out.push(MacAction::Emit(SimEvent::Retry {
                        node,
                        dst,
                        attempt: attempts,
                    }));
                }
                return Some(PendingFrame {
                    dst,
                    seq,
                    payload,
                    retry: attempts > 0,
                    attempt: attempts,
                });
            }
        } else {
            if flow.traffic.available() >= f64::from(payload) {
                flow.traffic.take(payload);
                let seq = flow.next_seq;
                flow.next_seq += 1;
                if ctx.observing {
                    out.push(MacAction::Emit(SimEvent::Enqueue {
                        node,
                        dst,
                        depth: 1,
                    }));
                    out.push(MacAction::Emit(SimEvent::FrameQueued { node, dst, seq }));
                }
                return Some(PendingFrame {
                    dst,
                    seq,
                    payload,
                    retry: false,
                    attempt: 0,
                });
            }
            None
        }
    }

    /// Payload size for a destination: adapted when the census says so.
    /// A fresh census result is announced as an [`SimEvent::Adapt`].
    fn payload_for(&mut self, dst: NodeId, observing: bool, out: &mut Vec<MacAction>) -> u32 {
        if !self.cfg.features.ht_adaptation {
            return self.cfg.payload_bytes;
        }
        if let Some(s) = self.adapted.get(&dst) {
            return s.payload_bytes;
        }
        if let Some(proto) = &self.proto {
            if let Ok(setting) = proto.tx_setting(dst) {
                self.adapted.insert(dst, setting);
                if observing {
                    out.push(MacAction::Emit(SimEvent::Adapt {
                        node: self.cfg.id,
                        dst,
                        cw: setting.cw,
                        payload_bytes: setting.payload_bytes,
                    }));
                }
                return setting.payload_bytes;
            }
        }
        self.cfg.payload_bytes
    }

    /// Backoff policy for a destination: the adaptation table's constant
    /// window when installed.
    /// One backoff draw from this MAC's counter-keyed stream: a pure
    /// function of `(seed, node id, draw counter)`, so the slot count
    /// is independent of anything another node — or the medium — draws.
    fn draw_backoff(&mut self, dst: NodeId, stage: u32) -> Backoff {
        let rng = &mut CounterRng::from_key(self.seed, self.cfg.id.0 as u64, self.backoff_ctr);
        self.backoff_ctr += 1;
        Backoff::draw(self.effective_policy(dst), stage, rng)
    }

    fn effective_policy(&self, dst: NodeId) -> BackoffPolicy {
        if self.cfg.features.ht_adaptation {
            if let Some(s) = self.adapted.get(&dst) {
                // The adaptation table's window is installed as the
                // *initial* window; collisions still escalate it, as
                // 802.11 requires.
                return BackoffPolicy::Beb {
                    cw_min: s.cw,
                    cw_max: 1023,
                };
            }
        }
        self.cfg.backoff
    }

    fn start_transmission(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        let Some(p) = self.pending else {
            self.state = FlowState::Idle;
            return;
        };
        self.concurrent_sent = self.opportunity.map(|op| op.link);
        if let Some(link) = self.concurrent_sent {
            out.push(MacAction::Stat(StatEvent::ConcurrentTx));
            if ctx.observing {
                out.push(MacAction::Emit(SimEvent::ConcurrentTx {
                    node: self.cfg.id,
                    src: link.0,
                    dst: link.1,
                }));
            }
        }
        if self.cfg.features.selective_repeat {
            if let Some(w) = self.arq_tx.get_mut(&p.dst) {
                // A frame acked or abandoned between queueing and airtime
                // has left the window; it needs no attempt bookkeeping.
                let _ = w.mark_sent(p.seq);
            }
        }
        if self.cfg.features.rts_cts {
            self.state = FlowState::TxRts;
            let data_rate = self.rate_for(p.dst);
            let data_bytes = comap_mac::frames::DATA_HEADER_BYTES + p.payload;
            // NAV from the end of the RTS: SIFS + CTS + SIFS + data +
            // SIFS + ACK.
            let nav = self.cfg.phy.sifs()
                + self
                    .cfg
                    .phy
                    .frame_duration(comap_mac::frames::CTS_BYTES, self.cfg.phy.control_rate())
                + self.cfg.phy.sifs()
                + self.cfg.phy.frame_duration(data_bytes, data_rate)
                + self.cfg.phy.sifs()
                + self.cfg.phy.ack_duration();
            let rts = Frame {
                src: self.cfg.id,
                dst: p.dst,
                body: FrameBody::Rts { nav },
                rate: self.cfg.phy.control_rate(),
            };
            out.push(MacAction::Transmit(rts));
            return;
        }
        if self.cfg.features.discovery_header {
            self.state = FlowState::TxHeader;
            let data_rate = self.rate_for(p.dst);
            let data_bytes = comap_mac::frames::DATA_HEADER_BYTES + p.payload;
            let data_duration = self.cfg.phy.frame_duration(data_bytes, data_rate);
            let header = Frame {
                src: self.cfg.id,
                dst: p.dst,
                body: FrameBody::Discovery { data_duration },
                rate: self.cfg.phy.header_rate(),
            };
            out.push(MacAction::Transmit(header));
        } else {
            self.state = FlowState::TxData;
            let frame = self.data_frame(p, ctx, out);
            out.push(MacAction::Stat(StatEvent::DataTx { dst: p.dst }));
            out.push(MacAction::Transmit(frame));
        }
    }

    fn data_frame(&mut self, p: PendingFrame, ctx: MacCtx, out: &mut Vec<MacAction>) -> Frame {
        if ctx.observing {
            out.push(MacAction::Emit(SimEvent::FrameTx {
                node: self.cfg.id,
                dst: p.dst,
                seq: p.seq,
                attempt: p.attempt,
            }));
        }
        let rate = self.rate_for(p.dst);
        self.last_data_rate = Some(rate);
        Frame {
            src: self.cfg.id,
            dst: p.dst,
            body: FrameBody::Data {
                seq: p.seq,
                payload_bytes: p.payload,
                retry: p.retry,
            },
            rate,
        }
    }

    fn rate_for(&mut self, dst: NodeId) -> Rate {
        if matches!(self.cfg.rate_ctl, RateController::Minstrel) {
            let standard = self.cfg.phy.standard();
            return self
                .minstrel
                .entry(dst)
                .or_insert_with(|| Minstrel::new(standard))
                .select();
        }
        let interferer = self
            .opportunity
            .map(|op| self.cfg.true_positions[op.link.0 .0]);
        self.cfg.rate_ctl.select(
            &self.cfg.channel,
            self.cfg.phy.standard(),
            self.cfg.true_positions[self.cfg.id.0],
            self.cfg.true_positions[dst.0],
            interferer,
        )
    }

    // ------------------------------------------------------------------
    // Exposed-terminal logic
    // ------------------------------------------------------------------

    fn consider_opportunity(
        &mut self,
        header: Frame,
        data_duration: SimDuration,
        _rssi: Dbm,
        ctx: MacCtx,
        out: &mut Vec<MacAction>,
    ) {
        if !self.cfg.features.et_concurrency {
            return;
        }
        // Remember the discovery even when we cannot act on it right now:
        // a frame admitted mid-transmission re-checks it.
        self.ongoing = Some(((header.src, header.dst), ctx.now, ctx.now + data_duration));
        self.try_enter_opportunity(ctx, out);
    }

    /// Attempts to convert the last discovered ongoing transmission into
    /// an exposed-terminal opportunity for the pending frame.
    fn try_enter_opportunity(&mut self, ctx: MacCtx, out: &mut Vec<MacAction>) {
        if !self.cfg.features.et_concurrency || self.opportunity.is_some() {
            return;
        }
        if self.state != FlowState::Contend {
            return;
        }
        let Some(((src, dst), data_start, until)) = self.ongoing else {
            return;
        };
        if ctx.now >= until {
            self.ongoing = None;
            return;
        }
        let Some(p) = self.pending else { return };
        // The announced data is addressed to us: we are its receiver, not
        // an exposed terminal.
        if dst == self.cfg.id || src == self.cfg.id {
            return;
        }
        let Some(proto) = &mut self.proto else { return };
        let allowed = proto
            .concurrency_allowed((src, dst), p.dst)
            .unwrap_or(false);
        if !allowed {
            return;
        }
        // Joining after the data frame is already on the air: the current
        // ambient power *is* RSSI₁. Joining at discovery time: the data
        // has not started, so the watchdog arms on the first clear rise.
        let sched = if ctx.now > data_start {
            self.proto
                .as_ref()
                .map(|pr| pr.arm_scheduler(ctx.sensed.to_dbm()))
        } else {
            None
        };
        self.opportunity = Some(Opportunity {
            link: (src, dst),
            until,
            baseline: ctx.sensed,
            sched,
        });
        if ctx.observing {
            out.push(MacAction::Emit(SimEvent::EtOpportunity {
                node: self.cfg.id,
                src,
                dst,
            }));
        }
        // sync() will resume the backoff under the watchdog.
    }

    /// Whether the channel blocks this node's countdown.
    fn effective_busy(&self, ctx: MacCtx) -> bool {
        if ctx.transmitting {
            return true;
        }
        match &self.opportunity {
            Some(op) => match &op.sched {
                // Armed: the watchdog alone decides (abandon is handled in
                // on_sense; if we are still in the opportunity, the
                // channel counts as clear).
                Some(_) => false,
                // Header decoded but data not yet on the air: clear.
                None => false,
            },
            None => {
                ctx.now < self.nav_until
                    || ctx.sensed.to_dbm() >= self.cfg.t_cs
                    || (self.cfg.preamble_cs && ctx.locked)
            }
        }
    }
}
