//! Data-rate selection.
//!
//! The testbed runs Minstrel; its role in the paper's results is simple —
//! links pick higher rates when the SINR headroom allows (Fig. 8's rising
//! goodput as the interferer recedes). Three controllers cover that:
//!
//! * [`RateController::Fixed`] — the NS-2 experiments' fixed 6 Mbps,
//! * [`RateController::IdealSinr`] — a converged-Minstrel stand-in that
//!   picks the fastest rate whose minimum SINR clears the link's mean SNR
//!   (and, for CO-MAP concurrent transmissions, the mean SIR against the
//!   known ongoing interferer) by a configurable margin,
//! * [`RateController::Minstrel`] — the full sampling adapter
//!   ([`Minstrel`]): per-rate EWMA delivery probability learned from ACK
//!   feedback, used when rate convergence itself is under study.

use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::rates::{PhyStandard, Rate};
use comap_radio::units::{Db, Meters};
use comap_radio::{Position, NOISE_FLOOR};

/// How senders choose their modulation rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateController {
    /// Always use one rate.
    Fixed(Rate),
    /// Pick the fastest decodable rate from the link's mean SNR/SIR.
    IdealSinr {
        /// Safety margin subtracted from the estimated SINR before the
        /// table lookup (absorbs shadowing spread).
        margin: Db,
    },
    /// Minstrel-style sampling adaptation: the MAC keeps one [`Minstrel`]
    /// instance per destination and learns from ACK feedback.
    Minstrel,
}

impl RateController {
    /// The rate for a transmission from `src` to `dst`, optionally
    /// accounting for a concurrent interferer at `interferer` (CO-MAP
    /// exposed-terminal transmissions know who else is on the air).
    ///
    /// Falls back to the base rate when even that cannot be decoded —
    /// the MAC will try, and the PHY will sort out the loss.
    pub fn select(
        &self,
        channel: &LogNormalShadowing,
        standard: PhyStandard,
        src: Position,
        dst: Position,
        interferer: Option<Position>,
    ) -> Rate {
        match *self {
            RateController::Fixed(rate) => rate,
            // The Minstrel variant is resolved statefully by the MAC; this
            // stateless path only provides its optimistic starting point.
            // simlint: allow(panic-policy) — Rate::all is a non-empty static table for every standard
            RateController::Minstrel => *Rate::all(standard).last().expect("non-empty rate set"),
            RateController::IdealSinr { margin } => {
                let signal = channel.mean_power(src.distance_to(dst));
                let mut floor_mw = NOISE_FLOOR.to_milliwatts();
                if let Some(i) = interferer {
                    let d = i.distance_to(dst).max(Meters::new(1.0));
                    floor_mw += channel.mean_power(d).to_milliwatts();
                }
                let sinr = (signal - floor_mw.to_dbm()) - margin;
                Rate::best_for_sinr(standard, sinr).unwrap_or(match standard {
                    PhyStandard::Dsss => Rate::Mbps1,
                    PhyStandard::ErpOfdm => Rate::Mbps6,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_radio::units::Dbm;

    fn chan() -> LogNormalShadowing {
        LogNormalShadowing::testbed(Dbm::new(0.0))
    }

    #[test]
    fn fixed_is_fixed() {
        let rc = RateController::Fixed(Rate::Mbps6);
        let r = rc.select(
            &chan(),
            PhyStandard::ErpOfdm,
            Position::ORIGIN,
            Position::new(500.0, 0.0),
            None,
        );
        assert_eq!(r, Rate::Mbps6);
    }

    #[test]
    fn ideal_rate_decreases_with_distance() {
        let rc = RateController::IdealSinr {
            margin: Db::new(5.0),
        };
        let mut prev = Rate::Mbps11;
        for d in [5.0, 20.0, 40.0, 60.0, 90.0] {
            let r = rc.select(
                &chan(),
                PhyStandard::Dsss,
                Position::ORIGIN,
                Position::new(d, 0.0),
                None,
            );
            assert!(r <= prev, "rate must not increase with distance (d = {d})");
            prev = r;
        }
        assert_eq!(prev, Rate::Mbps1, "very long links fall to the base rate");
    }

    #[test]
    fn close_links_use_top_rate() {
        let rc = RateController::IdealSinr {
            margin: Db::new(5.0),
        };
        let r = rc.select(
            &chan(),
            PhyStandard::Dsss,
            Position::ORIGIN,
            Position::new(3.0, 0.0),
            None,
        );
        assert_eq!(r, Rate::Mbps11);
    }

    #[test]
    fn known_interferer_lowers_the_rate() {
        let rc = RateController::IdealSinr {
            margin: Db::new(3.0),
        };
        let clean = rc.select(
            &chan(),
            PhyStandard::Dsss,
            Position::ORIGIN,
            Position::new(8.0, 0.0),
            None,
        );
        let jammed = rc.select(
            &chan(),
            PhyStandard::Dsss,
            Position::ORIGIN,
            Position::new(8.0, 0.0),
            Some(Position::new(20.0, 0.0)),
        );
        assert!(jammed < clean, "{jammed} vs {clean}");
    }

    #[test]
    fn receding_interferer_restores_the_rate() {
        let rc = RateController::IdealSinr {
            margin: Db::new(3.0),
        };
        let mut prev = Rate::Mbps1;
        for d in [15.0, 30.0, 60.0, 120.0, 400.0] {
            let r = rc.select(
                &chan(),
                PhyStandard::Dsss,
                Position::ORIGIN,
                Position::new(8.0, 0.0),
                Some(Position::new(d, 0.0)),
            );
            assert!(r >= prev, "rate must not drop as interferer recedes");
            prev = r;
        }
    }
}

/// Minstrel-style sampling rate adaptation: per-rate EWMA of delivery
/// probability, throughput-ordered selection, periodic sampling of
/// non-best rates — a compact model of mac80211's Minstrel, which the
/// paper's testbed runs.
///
/// Unlike [`RateController::IdealSinr`] this learns purely from ACK
/// feedback, so it converges to whatever the channel actually supports.
#[derive(Debug, Clone)]
pub struct Minstrel {
    rates: Vec<Rate>,
    /// EWMA delivery probability per rate.
    ewma: Vec<f64>,
    /// Frames since the last sampling transmission.
    since_sample: u32,
    /// Rotating index of the next rate to sample.
    sample_cursor: usize,
}

/// Smoothing factor of the delivery-probability EWMA.
const MINSTREL_ALPHA: f64 = 0.25;
/// Every Nth frame samples a non-best rate.
const MINSTREL_SAMPLE_PERIOD: u32 = 10;

impl Minstrel {
    /// Creates a controller over a PHY family's rate set, optimistically
    /// initialized (all rates assumed perfect until proven otherwise, as
    /// Minstrel does on association).
    pub fn new(standard: PhyStandard) -> Self {
        let rates = Rate::all(standard).to_vec();
        let n = rates.len();
        Minstrel {
            rates,
            ewma: vec![1.0; n],
            since_sample: 0,
            sample_cursor: 0,
        }
    }

    /// Expected throughput of rate index `i` (probability × bit rate).
    fn throughput(&self, i: usize) -> f64 {
        self.ewma[i] * self.rates[i].bits_per_second()
    }

    /// Index of the current best rate by expected throughput.
    fn best_index(&self) -> usize {
        (0..self.rates.len())
            .max_by(|&a, &b| self.throughput(a).total_cmp(&self.throughput(b)))
            .unwrap_or(0)
    }

    /// Picks the rate for the next transmission: usually the
    /// throughput-best rate, periodically a sampled alternative.
    pub fn select(&mut self) -> Rate {
        self.since_sample += 1;
        let best = self.best_index();
        if self.since_sample >= MINSTREL_SAMPLE_PERIOD && self.rates.len() > 1 {
            self.since_sample = 0;
            // Rotate through the other rates.
            self.sample_cursor = (self.sample_cursor + 1) % self.rates.len();
            if self.sample_cursor == best {
                self.sample_cursor = (self.sample_cursor + 1) % self.rates.len();
            }
            return self.rates[self.sample_cursor];
        }
        self.rates[best]
    }

    /// Feeds back the outcome of a transmission at `rate`.
    pub fn report(&mut self, rate: Rate, success: bool) {
        if let Some(i) = self.rates.iter().position(|&r| r == rate) {
            let x = if success { 1.0 } else { 0.0 };
            self.ewma[i] = (1.0 - MINSTREL_ALPHA) * self.ewma[i] + MINSTREL_ALPHA * x;
        }
    }

    /// The current best rate (no sampling side effects).
    pub fn current_best(&self) -> Rate {
        self.rates[self.best_index()]
    }
}

#[cfg(test)]
mod minstrel_tests {
    use super::*;

    /// Deterministic channel stub: rates above a cutoff always fail.
    fn drive(m: &mut Minstrel, cutoff: Rate, frames: usize) {
        for _ in 0..frames {
            let r = m.select();
            m.report(r, r <= cutoff);
        }
    }

    #[test]
    fn starts_optimistic_at_top_rate() {
        let mut m = Minstrel::new(PhyStandard::Dsss);
        assert_eq!(m.select(), Rate::Mbps11);
    }

    #[test]
    fn converges_down_to_the_supported_rate() {
        let mut m = Minstrel::new(PhyStandard::Dsss);
        drive(&mut m, Rate::Mbps5_5, 200);
        assert_eq!(m.current_best(), Rate::Mbps5_5);
    }

    #[test]
    fn recovers_when_the_channel_improves() {
        let mut m = Minstrel::new(PhyStandard::Dsss);
        drive(&mut m, Rate::Mbps2, 200);
        assert_eq!(m.current_best(), Rate::Mbps2);
        // Channel clears: sampling rediscovers the top rate.
        drive(&mut m, Rate::Mbps11, 400);
        assert_eq!(m.current_best(), Rate::Mbps11);
    }

    #[test]
    fn sampling_occurs_periodically() {
        let mut m = Minstrel::new(PhyStandard::Dsss);
        let mut non_best = 0;
        for _ in 0..100 {
            let best = m.current_best();
            if m.select() != best {
                non_best += 1;
            }
            // No feedback: distribution driven purely by the sampler.
        }
        assert!((8..=15).contains(&non_best), "sampled {non_best} of 100");
    }

    #[test]
    fn ofdm_family_works_too() {
        let mut m = Minstrel::new(PhyStandard::ErpOfdm);
        drive(&mut m, Rate::Mbps12, 300);
        assert_eq!(m.current_best(), Rate::Mbps12);
    }
}
