//! Per-link and per-node statistics, aggregated into a [`SimReport`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comap_mac::time::SimDuration;

use crate::frame::NodeId;
use crate::json::{check_schema_version, Json, SchemaError, SCHEMA_VERSION};
use crate::metrics::Metrics;

/// Counters of one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Unique payload bytes delivered (duplicates excluded).
    pub delivered_bytes: u64,
    /// Unique data frames delivered.
    pub delivered_frames: u64,
    /// Data-frame transmissions attempted (including retransmissions).
    pub data_tx: u64,
    /// ACK timeouts observed by the sender.
    pub ack_timeouts: u64,
    /// Frames abandoned after the retry limit.
    pub drops: u64,
}

/// Counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Time spent transmitting anything.
    pub airtime: SimDuration,
    /// Concurrent (exposed-terminal) transmissions started by CO-MAP.
    pub concurrent_tx: u64,
    /// Exposed opportunities abandoned by the RSSI watchdog.
    pub et_abandons: u64,
    /// Discovery headers decoded.
    pub headers_heard: u64,
}

/// Counters kept by the radio medium itself — physical-layer outcomes
/// that per-link MAC counters cannot see.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumStats {
    /// Receiver locks stolen by preamble capture (a stronger frame
    /// arrived mid-reception and was decodable over the locked one).
    pub captures: u64,
    /// Frames held to the end of their lock but killed by the accrued
    /// bit-error hazard (collision / interference losses).
    pub hazard_drops: u64,
    /// Times the incremental power ledger was verified against a
    /// from-scratch recomputation (debug builds only; 0 in release).
    pub ledger_checks: u64,
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-directed-link counters.
    pub links: BTreeMap<(NodeId, NodeId), LinkStats>,
    /// Per-node counters.
    pub nodes: BTreeMap<NodeId, NodeStats>,
    /// Total events processed (diagnostics).
    pub events: u64,
    /// Position reports broadcast by moving nodes (the protocol's
    /// location-sharing overhead).
    pub position_reports: u64,
    /// Physical-layer counters from the medium.
    pub medium: MediumStats,
    /// Per-node metrics, present when a
    /// [`MetricsSink`](crate::metrics::MetricsSink) was attached.
    pub metrics: Option<Metrics>,
}

impl SimReport {
    /// Goodput of the directed link `src → dst` in payload bits/s.
    pub fn link_goodput_bps(&self, src: NodeId, dst: NodeId) -> f64 {
        let secs = self.duration.as_secs_f64();
        // Durations are non-negative, so this is exactly the zero check.
        if secs <= 0.0 {
            return 0.0;
        }
        self.links
            .get(&(src, dst))
            .map(|l| l.delivered_bytes as f64 * 8.0 / secs)
            .unwrap_or(0.0)
    }

    /// Sum of goodput over every link, in bits/s.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        // Durations are non-negative, so this is exactly the zero check.
        if secs <= 0.0 {
            return 0.0;
        }
        self.links
            .values()
            .map(|l| l.delivered_bytes as f64)
            .sum::<f64>()
            * 8.0
            / secs
    }

    /// Goodput of every link, ordered by `(src, dst)`.
    pub fn per_link_goodputs(&self) -> Vec<((NodeId, NodeId), f64)> {
        self.links
            .keys()
            .map(|&(s, d)| ((s, d), self.link_goodput_bps(s, d)))
            .collect()
    }

    /// Frame delivery ratio of one link (`delivered / attempted`, counting
    /// retransmissions as attempts).
    pub fn link_delivery_ratio(&self, src: NodeId, dst: NodeId) -> f64 {
        match self.links.get(&(src, dst)) {
            Some(l) if l.data_tx > 0 => l.delivered_frames as f64 / l.data_tx as f64,
            _ => 0.0,
        }
    }

    /// Mutable access to a link's counters, creating them if absent.
    pub fn link_mut(&mut self, src: NodeId, dst: NodeId) -> &mut LinkStats {
        self.links.entry((src, dst)).or_default()
    }

    /// Mutable access to a node's counters, creating them if absent.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeStats {
        self.nodes.entry(node).or_default()
    }

    /// Serializes the report (including the metrics section, when
    /// present) as a JSON object.
    pub fn to_json(&self) -> Json {
        let links = self
            .links
            .iter()
            .map(|(&(src, dst), l)| {
                Json::obj(vec![
                    ("src", Json::Uint(src.0 as u64)),
                    ("dst", Json::Uint(dst.0 as u64)),
                    ("delivered_bytes", Json::Uint(l.delivered_bytes)),
                    ("delivered_frames", Json::Uint(l.delivered_frames)),
                    ("data_tx", Json::Uint(l.data_tx)),
                    ("ack_timeouts", Json::Uint(l.ack_timeouts)),
                    ("drops", Json::Uint(l.drops)),
                ])
            })
            .collect();
        let nodes = self
            .nodes
            .iter()
            .map(|(&node, n)| {
                Json::obj(vec![
                    ("node", Json::Uint(node.0 as u64)),
                    ("airtime_ns", Json::Uint(n.airtime.as_nanos())),
                    ("concurrent_tx", Json::Uint(n.concurrent_tx)),
                    ("et_abandons", Json::Uint(n.et_abandons)),
                    ("headers_heard", Json::Uint(n.headers_heard)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::Uint(SCHEMA_VERSION)),
            ("duration_ns", Json::Uint(self.duration.as_nanos())),
            ("events", Json::Uint(self.events)),
            ("position_reports", Json::Uint(self.position_reports)),
            ("links", Json::Arr(links)),
            ("nodes", Json::Arr(nodes)),
            (
                "medium",
                Json::obj(vec![
                    ("captures", Json::Uint(self.medium.captures)),
                    ("hazard_drops", Json::Uint(self.medium.hazard_drops)),
                    ("ledger_checks", Json::Uint(self.medium.ledger_checks)),
                ]),
            ),
            (
                "metrics",
                match &self.metrics {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a report from its [`SimReport::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] when the `schema_version` stamp is
    /// missing or mismatched, or when a required field is absent or
    /// malformed.
    pub fn from_json(v: &Json) -> Result<SimReport, SchemaError> {
        check_schema_version(v, "sim report")?;
        let malformed = || SchemaError::new("sim report: missing or malformed field");
        let arr = |key: &str| v.get(key).and_then(Json::as_arr).ok_or_else(malformed);
        let field = |obj: &Json, key: &str| -> Result<u64, SchemaError> {
            obj.get(key).and_then(Json::as_u64).ok_or_else(malformed)
        };
        let mut links = BTreeMap::new();
        for l in arr("links")? {
            let key = (
                NodeId(field(l, "src")? as usize),
                NodeId(field(l, "dst")? as usize),
            );
            links.insert(
                key,
                LinkStats {
                    delivered_bytes: field(l, "delivered_bytes")?,
                    delivered_frames: field(l, "delivered_frames")?,
                    data_tx: field(l, "data_tx")?,
                    ack_timeouts: field(l, "ack_timeouts")?,
                    drops: field(l, "drops")?,
                },
            );
        }
        let mut nodes = BTreeMap::new();
        for n in arr("nodes")? {
            nodes.insert(
                NodeId(field(n, "node")? as usize),
                NodeStats {
                    airtime: SimDuration::from_nanos(field(n, "airtime_ns")?),
                    concurrent_tx: field(n, "concurrent_tx")?,
                    et_abandons: field(n, "et_abandons")?,
                    headers_heard: field(n, "headers_heard")?,
                },
            );
        }
        let medium = v.get("medium").ok_or_else(malformed)?;
        let metrics = match v.get("metrics").ok_or_else(malformed)? {
            Json::Null => None,
            m => Some(Metrics::from_json(m)?),
        };
        Ok(SimReport {
            duration: SimDuration::from_nanos(field(v, "duration_ns")?),
            links,
            nodes,
            events: field(v, "events")?,
            position_reports: field(v, "position_reports")?,
            medium: MediumStats {
                captures: field(medium, "captures")?,
                hazard_drops: field(medium, "hazard_drops")?,
                ledger_checks: field(medium, "ledger_checks")?,
            },
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_accounts_bits_per_second() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(2),
            ..Default::default()
        };
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 250_000;
        assert_eq!(r.link_goodput_bps(NodeId(0), NodeId(1)), 1_000_000.0);
        assert_eq!(r.link_goodput_bps(NodeId(1), NodeId(0)), 0.0);
        assert_eq!(r.aggregate_goodput_bps(), 1_000_000.0);
    }

    #[test]
    fn zero_duration_is_zero_goodput() {
        let mut r = SimReport::default();
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 100;
        assert_eq!(r.link_goodput_bps(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn delivery_ratio() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        let l = r.link_mut(NodeId(0), NodeId(1));
        l.data_tx = 10;
        l.delivered_frames = 7;
        assert_eq!(r.link_delivery_ratio(NodeId(0), NodeId(1)), 0.7);
        assert_eq!(r.link_delivery_ratio(NodeId(2), NodeId(3)), 0.0);
    }

    #[test]
    fn per_link_listing_is_ordered() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        r.link_mut(NodeId(2), NodeId(0)).delivered_bytes = 1;
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 1;
        let keys: Vec<_> = r.per_link_goodputs().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(0))]);
    }
}
