//! Per-link and per-node statistics, aggregated into a [`SimReport`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use comap_mac::time::SimDuration;

use crate::frame::NodeId;

/// Counters of one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Unique payload bytes delivered (duplicates excluded).
    pub delivered_bytes: u64,
    /// Unique data frames delivered.
    pub delivered_frames: u64,
    /// Data-frame transmissions attempted (including retransmissions).
    pub data_tx: u64,
    /// ACK timeouts observed by the sender.
    pub ack_timeouts: u64,
    /// Frames abandoned after the retry limit.
    pub drops: u64,
}

/// Counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Time spent transmitting anything.
    pub airtime: SimDuration,
    /// Concurrent (exposed-terminal) transmissions started by CO-MAP.
    pub concurrent_tx: u64,
    /// Exposed opportunities abandoned by the RSSI watchdog.
    pub et_abandons: u64,
    /// Discovery headers decoded.
    pub headers_heard: u64,
}

/// Counters kept by the radio medium itself — physical-layer outcomes
/// that per-link MAC counters cannot see.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumStats {
    /// Receiver locks stolen by preamble capture (a stronger frame
    /// arrived mid-reception and was decodable over the locked one).
    pub captures: u64,
    /// Frames held to the end of their lock but killed by the accrued
    /// bit-error hazard (collision / interference losses).
    pub hazard_drops: u64,
    /// Times the incremental power ledger was verified against a
    /// from-scratch recomputation (debug builds only; 0 in release).
    pub ledger_checks: u64,
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated duration.
    pub duration: SimDuration,
    /// Per-directed-link counters.
    pub links: BTreeMap<(NodeId, NodeId), LinkStats>,
    /// Per-node counters.
    pub nodes: BTreeMap<NodeId, NodeStats>,
    /// Total events processed (diagnostics).
    pub events: u64,
    /// Position reports broadcast by moving nodes (the protocol's
    /// location-sharing overhead).
    pub position_reports: u64,
    /// Physical-layer counters from the medium.
    pub medium: MediumStats,
}

impl SimReport {
    /// Goodput of the directed link `src → dst` in payload bits/s.
    pub fn link_goodput_bps(&self, src: NodeId, dst: NodeId) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.links
            .get(&(src, dst))
            .map(|l| l.delivered_bytes as f64 * 8.0 / secs)
            .unwrap_or(0.0)
    }

    /// Sum of goodput over every link, in bits/s.
    pub fn aggregate_goodput_bps(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.links
            .values()
            .map(|l| l.delivered_bytes as f64)
            .sum::<f64>()
            * 8.0
            / secs
    }

    /// Goodput of every link, ordered by `(src, dst)`.
    pub fn per_link_goodputs(&self) -> Vec<((NodeId, NodeId), f64)> {
        self.links
            .keys()
            .map(|&(s, d)| ((s, d), self.link_goodput_bps(s, d)))
            .collect()
    }

    /// Frame delivery ratio of one link (`delivered / attempted`, counting
    /// retransmissions as attempts).
    pub fn link_delivery_ratio(&self, src: NodeId, dst: NodeId) -> f64 {
        match self.links.get(&(src, dst)) {
            Some(l) if l.data_tx > 0 => l.delivered_frames as f64 / l.data_tx as f64,
            _ => 0.0,
        }
    }

    /// Mutable access to a link's counters, creating them if absent.
    pub fn link_mut(&mut self, src: NodeId, dst: NodeId) -> &mut LinkStats {
        self.links.entry((src, dst)).or_default()
    }

    /// Mutable access to a node's counters, creating them if absent.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeStats {
        self.nodes.entry(node).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_accounts_bits_per_second() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(2),
            ..Default::default()
        };
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 250_000;
        assert_eq!(r.link_goodput_bps(NodeId(0), NodeId(1)), 1_000_000.0);
        assert_eq!(r.link_goodput_bps(NodeId(1), NodeId(0)), 0.0);
        assert_eq!(r.aggregate_goodput_bps(), 1_000_000.0);
    }

    #[test]
    fn zero_duration_is_zero_goodput() {
        let mut r = SimReport::default();
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 100;
        assert_eq!(r.link_goodput_bps(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn delivery_ratio() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        let l = r.link_mut(NodeId(0), NodeId(1));
        l.data_tx = 10;
        l.delivered_frames = 7;
        assert_eq!(r.link_delivery_ratio(NodeId(0), NodeId(1)), 0.7);
        assert_eq!(r.link_delivery_ratio(NodeId(2), NodeId(3)), 0.0);
    }

    #[test]
    fn per_link_listing_is_ordered() {
        let mut r = SimReport {
            duration: SimDuration::from_secs(1),
            ..Default::default()
        };
        r.link_mut(NodeId(2), NodeId(0)).delivered_bytes = 1;
        r.link_mut(NodeId(0), NodeId(1)).delivered_bytes = 1;
        let keys: Vec<_> = r.per_link_goodputs().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(0))]);
    }
}
