//! Minimal JSON tree, writer and parser.
//!
//! The workspace's `serde` is an offline no-op stand-in (see
//! `vendor/serde`), so the observability layer's machine-readable exports
//! — JSONL event streams, [`crate::stats::SimReport`] dumps and
//! [`crate::profile::RunProfile`] artifacts — serialize through this
//! hand-rolled module instead. It supports exactly the JSON subset those
//! schemas need: objects with ordered keys, arrays, strings, booleans,
//! `null`, exact unsigned integers and finite floats. The parser exists
//! so round-trip tests and CI smoke checks can read the artifacts back
//! without any external dependency.

use std::fmt::Write as _;

/// Version stamped into every JSON artifact this crate emits
/// ([`crate::stats::SimReport`], [`crate::metrics::Metrics`],
/// [`crate::profile::RunProfile`] and the `results/BENCH_*.json` files
/// built from them). Bump it whenever a schema changes shape so stale
/// artifacts are rejected with a clear error instead of misparsed.
///
/// History: v1 = unstamped pre-latency artifacts (through the mobility
/// rewrite); v2 = `schema_version` stamps + the latency section.
pub const SCHEMA_VERSION: u64 = 2;

/// An artifact failed schema validation: wrong or missing
/// `schema_version`, or a malformed/absent required field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl SchemaError {
    /// Builds an error from any printable message.
    pub fn new(message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Validates the `schema_version` stamp of an artifact object named
/// `what` (used in the error text).
///
/// # Errors
///
/// Returns a [`SchemaError`] naming the artifact when the stamp is
/// missing (a pre-v2 artifact) or does not equal [`SCHEMA_VERSION`] —
/// the fix is to regenerate the artifact with the current binaries.
pub fn check_schema_version(v: &Json, what: &str) -> Result<(), SchemaError> {
    match v.get("schema_version").and_then(Json::as_u64) {
        Some(found) if found == SCHEMA_VERSION => Ok(()),
        Some(found) => Err(SchemaError::new(format!(
            "{what}: schema_version {found}, expected {SCHEMA_VERSION} — \
             regenerate the artifact with the current binaries"
        ))),
        None => Err(SchemaError::new(format!(
            "{what}: missing schema_version (pre-v{SCHEMA_VERSION} artifact) — \
             regenerate the artifact with the current binaries"
        ))),
    }
}

/// A JSON value.
///
/// Unsigned integers get their own variant so `u64` counters survive a
/// round trip exactly — an `f64` mantissa only holds 53 bits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, written without a decimal point.
    Uint(u64),
    /// A finite floating-point number (non-finite values write `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting only exact integers.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(u) => Some(u),
            // simlint: allow(float-eq) — fract() == 0.0 is the exact "is an integer" test
            Json::Num(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Uint(u) => Some(u as f64),
            Json::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value on one line (no trailing newline).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // `{}` prints the shortest representation that parses
                    // back to the same f64; force a decimal point so the
                    // reader can tell floats from integers.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first offending byte.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at("trailing characters", pos));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was expected and the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What the parser expected.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::at(format!("expected `{lit}`"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::at("expected `,` or `]`", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::at("expected `:`", *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(JsonError::at("expected `,` or `}`", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed by our schemas;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| JsonError::at("invalid UTF-8", start))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at("invalid number", start))?;
    if *pos == start {
        return Err(JsonError::at("expected value", start));
    }
    if !is_float && !text.starts_with('-') {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::Uint(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at("invalid number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::str("fig02")),
            ("events", Json::Uint(u64::MAX)),
            ("rate", Json::Num(5.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::Uint(0))])),
        ]);
        let text = v.to_string_compact();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, v);
        assert_eq!(back.get("events").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(back.get("rate").and_then(Json::as_f64), Some(5.5));
    }

    #[test]
    fn escapes_special_characters() {
        let v = Json::str("a\"b\\c\nd\u{0001}");
        let text = v.to_string_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let text = Json::Num(3.0).to_string_compact();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Num(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers_parse_as_floats() {
        assert_eq!(Json::parse("-4.5").unwrap(), Json::Num(-4.5));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("42").unwrap(), Json::Uint(42));
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }
}
