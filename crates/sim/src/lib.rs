//! # comap-sim — a discrete-event wireless network simulator
//!
//! The NS-2 substitute of this reproduction: an event-driven simulation of
//! 802.11 DCF cells over a log-normal-shadowing channel, with the CO-MAP
//! protocol switchable per node.
//!
//! ## Physics
//!
//! * Per-transmission, per-receiver shadowing draws (paper eq. 1) — the
//!   same draw governs carrier sensing and reception of a frame, so the
//!   channel is self-consistent.
//! * SINR-threshold reception with capture: a receiver locks onto the
//!   first decodable preamble and the frame survives iff its SINR against
//!   the *worst* overlapping interference stays above the rate's
//!   threshold. A stronger late frame can steal the lock (preamble
//!   capture), as commodity 802.11 receivers do.
//! * Carrier sense compares total ambient power (noise floor + every
//!   active transmission) against the CCA threshold.
//!
//! ## MAC
//!
//! One state machine ([`mac::Mac`]) implements plain DCF and, behind
//! [`config::MacFeatures`] toggles, every CO-MAP extension: discovery
//! headers, co-occurrence-map concurrency, the enhanced multi-ET
//! scheduler, selective-repeat ARQ and packet-size/CW adaptation. This
//! mirrors the paper's implementation, which extends a driver's DCF path.
//!
//! ## Determinism
//!
//! Integer-nanosecond clock, a tie-broken binary-heap event queue and
//! seed-derived RNG streams make every run bit-reproducible; see
//! `tests/determinism.rs`.
//!
//! ## Observability
//!
//! Attach [`observe::Observer`] sinks via [`Simulator::attach_sink`] to
//! receive typed, timestamped [`observe::SimEvent`]s from the medium,
//! the MAC and the CO-MAP logic — a JSONL exporter, an in-memory
//! metrics aggregator and a human-readable timeline ship with the
//! crate, and [`Simulator::run_profiled`] times the event loop itself.
//! With no sink attached no event is ever constructed, and sinks can
//! never perturb results (see `tests/observability.rs`).
//!
//! # Example
//!
//! Two nodes, one saturated link, one second of air time:
//!
//! ```rust
//! use comap_sim::{NodeSpec, SimConfig, Simulator, Traffic};
//! use comap_radio::Position;
//! use comap_mac::SimDuration;
//!
//! let mut cfg = SimConfig::testbed(42);
//! let a = cfg.add_node(NodeSpec::client("A", Position::new(0.0, 0.0)));
//! let b = cfg.add_node(NodeSpec::ap("B", Position::new(10.0, 0.0)));
//! cfg.add_flow(a, b, Traffic::Saturated);
//!
//! let report = Simulator::new(cfg).run(SimDuration::from_millis(500));
//! assert!(report.link_goodput_bps(a, b) > 1e6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod event;
pub mod frame;
pub mod json;
pub mod latency;
pub mod mac;
pub mod medium;
pub mod metrics;
pub mod observe;
pub mod profile;
pub mod rate;
pub mod sim;
pub mod stats;

pub use config::{MacFeatures, NodeSpec, SimConfig, Traffic};
pub use frame::{Frame, NodeId};
pub use json::Json;
pub use latency::{Latency, LatencyHistogram, LatencySink, NodeLatency};
pub use medium::{MediumBackend, MediumCounters};
pub use metrics::{Metrics, MetricsSink};
pub use observe::{JsonlSink, NoopSink, Observer, SimEvent, TimelineHandle, TimelineSink};
pub use profile::RunProfile;
pub use rate::RateController;
pub use sim::Simulator;
pub use stats::SimReport;
