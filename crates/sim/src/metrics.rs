//! In-memory metrics aggregation: per-node time series and histograms
//! built from the instrumentation event stream.
//!
//! [`MetricsSink`] folds [`SimEvent`](crate::observe::SimEvent)s into a
//! [`Metrics`] section that it installs into
//! [`SimReport::metrics`](crate::stats::SimReport) when the run
//! finishes. Everything is stored in exact integer grains (nanoseconds
//! of busy airtime per bucket, histogram counts) so the section
//! round-trips through JSON losslessly and compares with `==`.

use std::collections::BTreeMap;
use std::fmt;
use std::mem;

use comap_mac::time::SimTime;

use crate::frame::NodeId;
use crate::json::{check_schema_version, Json, SchemaError, SCHEMA_VERSION};
use crate::latency::Latency;
use crate::observe::{Observer, SimEvent};
use crate::stats::SimReport;

/// Highest backoff escalation stage tracked individually; draws beyond
/// it are folded into the last bin.
pub const MAX_BACKOFF_STAGE: usize = 15;

/// Error returned by [`Histogram::merge`] when the two histograms do
/// not share the same binning (`lo`, `bin_width`, bin count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinningMismatch;

impl fmt::Display for BinningMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "histograms have different binnings and cannot merge")
    }
}

impl std::error::Error for BinningMismatch {}

/// A fixed-bin histogram over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Count per bin.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bin's upper edge.
    pub overflow: u64,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (for the mean).
    pub sum: f64,
    /// Exact smallest sample, `None` when empty.
    pub min: Option<f64>,
    /// Exact largest sample, `None` when empty.
    pub max: Option<f64>,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins of `bin_width`
    /// starting at `lo`.
    pub fn new(lo: f64, bin_width: f64, bins: usize) -> Self {
        Histogram {
            lo,
            bin_width,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        self.sum += sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
        if sample < self.lo {
            self.underflow += 1;
            return;
        }
        let bin = ((sample - self.lo) / self.bin_width) as usize;
        match self.counts.get_mut(bin) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Mean of all recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `p`-quantile (`p` clamped into `[0, 1]`) by exact sample
    /// rank. Ranks landing in the underflow mass report the exact
    /// `min`, ranks in the overflow mass the exact `max`, and in-range
    /// ranks their bin's midpoint clamped into `[min, max]`. `None`
    /// when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count) - 1;
        if rank < self.underflow {
            return Some(min);
        }
        let mut cum = self.underflow;
        for (bin, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let mid = self.lo + (bin as f64 + 0.5) * self.bin_width;
                return Some(mid.clamp(min, max));
            }
        }
        Some(max)
    }

    /// Adds every sample of `other` into `self` — exact bin-wise
    /// addition, equivalent to having recorded the concatenated
    /// streams.
    ///
    /// # Errors
    ///
    /// Returns [`BinningMismatch`] (leaving `self` untouched) unless
    /// both histograms share `lo`, `bin_width` and bin count exactly.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), BinningMismatch> {
        if self.lo.to_bits() != other.lo.to_bits()
            || self.bin_width.to_bits() != other.bin_width.to_bits()
            || self.counts.len() != other.counts.len()
        {
            return Err(BinningMismatch);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(())
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("lo", Json::Num(self.lo)),
            ("bin_width", Json::Num(self.bin_width)),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::Uint(c)).collect()),
            ),
            ("underflow", Json::Uint(self.underflow)),
            ("overflow", Json::Uint(self.overflow)),
            ("count", Json::Uint(self.count)),
            ("sum", Json::Num(self.sum)),
        ];
        if let Some(min) = self.min {
            fields.push(("min", Json::Num(min)));
        }
        if let Some(max) = self.max {
            fields.push(("max", Json::Num(max)));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Option<Histogram> {
        Some(Histogram {
            lo: v.get("lo")?.as_f64()?,
            bin_width: v.get("bin_width")?.as_f64()?,
            counts: v
                .get("counts")?
                .as_arr()?
                .iter()
                .map(|c| c.as_u64())
                .collect::<Option<Vec<_>>>()?,
            underflow: v.get("underflow")?.as_u64()?,
            overflow: v.get("overflow")?.as_u64()?,
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_f64()?,
            min: v.get("min").and_then(Json::as_f64),
            max: v.get("max").and_then(Json::as_f64),
        })
    }
}

/// Per-node aggregates built from the event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMetrics {
    /// Nanoseconds this node spent transmitting, per time bucket
    /// (bucket width is [`Metrics::bucket_ns`]).
    pub airtime_busy_ns: Vec<u64>,
    /// Highest queue depth observed.
    pub queue_depth_peak: u32,
    /// Sum of sampled queue depths (for the mean).
    pub queue_depth_sum: u64,
    /// Number of queue-depth samples.
    pub queue_depth_samples: u64,
    /// Backoff draws per escalation stage (last bin collects
    /// ≥ [`MAX_BACKOFF_STAGE`]).
    pub backoff_stage: Vec<u64>,
    /// SINR of successful receptions at this node, in dB.
    pub sinr: Histogram,
}

impl Default for NodeMetrics {
    fn default() -> Self {
        NodeMetrics {
            airtime_busy_ns: Vec::new(),
            queue_depth_peak: 0,
            queue_depth_sum: 0,
            queue_depth_samples: 0,
            backoff_stage: vec![0; MAX_BACKOFF_STAGE + 1],
            // 1 dB bins over −10..40 dB covers noise-limited through
            // interference-free receptions.
            sinr: Histogram::new(-10.0, 1.0, 50),
        }
    }
}

impl NodeMetrics {
    /// Mean sampled queue depth, or `None` when never sampled.
    pub fn mean_queue_depth(&self) -> Option<f64> {
        (self.queue_depth_samples > 0)
            .then(|| self.queue_depth_sum as f64 / self.queue_depth_samples as f64)
    }

    /// Fraction of each bucket this node spent transmitting.
    pub fn airtime_utilization(&self, bucket_ns: u64) -> Vec<f64> {
        self.airtime_busy_ns
            .iter()
            .map(|&busy| busy as f64 / bucket_ns as f64)
            .collect()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "airtime_busy_ns",
                Json::Arr(
                    self.airtime_busy_ns
                        .iter()
                        .map(|&b| Json::Uint(b))
                        .collect(),
                ),
            ),
            (
                "queue_depth_peak",
                Json::Uint(u64::from(self.queue_depth_peak)),
            ),
            ("queue_depth_sum", Json::Uint(self.queue_depth_sum)),
            ("queue_depth_samples", Json::Uint(self.queue_depth_samples)),
            (
                "backoff_stage",
                Json::Arr(self.backoff_stage.iter().map(|&c| Json::Uint(c)).collect()),
            ),
            ("sinr", self.sinr.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Option<NodeMetrics> {
        let uints = |key: &str| -> Option<Vec<u64>> {
            v.get(key)?.as_arr()?.iter().map(|c| c.as_u64()).collect()
        };
        Some(NodeMetrics {
            airtime_busy_ns: uints("airtime_busy_ns")?,
            queue_depth_peak: u32::try_from(v.get("queue_depth_peak")?.as_u64()?).ok()?,
            queue_depth_sum: v.get("queue_depth_sum")?.as_u64()?,
            queue_depth_samples: v.get("queue_depth_samples")?.as_u64()?,
            backoff_stage: uints("backoff_stage")?,
            sinr: Histogram::from_json(v.get("sinr")?)?,
        })
    }
}

/// The metrics section of a [`SimReport`], produced by [`MetricsSink`]
/// (and extended with a latency section by
/// [`LatencySink`](crate::latency::LatencySink)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Width of each airtime bucket, in nanoseconds.
    pub bucket_ns: u64,
    /// Aggregates per node.
    pub nodes: BTreeMap<NodeId, NodeMetrics>,
    /// Frame-lifecycle latency spans, when a
    /// [`LatencySink`](crate::latency::LatencySink) ran.
    pub latency: Option<Latency>,
}

impl Metrics {
    /// Serializes the section as a JSON object (stamped with
    /// [`SCHEMA_VERSION`]).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::Uint(SCHEMA_VERSION)),
            ("bucket_ns", Json::Uint(self.bucket_ns)),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|(n, m)| {
                            let Json::Obj(mut fields) = m.to_json() else {
                                unreachable!("NodeMetrics::to_json returns an object")
                            };
                            fields.insert(0, ("node".to_string(), Json::Uint(n.0 as u64)));
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(latency) = &self.latency {
            fields.push(("latency", latency.to_json()));
        }
        Json::obj(fields)
    }

    /// Parses the section from its [`Metrics::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemaError`] when the `schema_version` stamp is
    /// missing or mismatched, or when a required field is absent or
    /// malformed.
    pub fn from_json(v: &Json) -> Result<Metrics, SchemaError> {
        check_schema_version(v, "metrics section")?;
        let malformed = || SchemaError::new("metrics section: missing or malformed field");
        let mut nodes = BTreeMap::new();
        for entry in v
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(malformed)?
        {
            let node = NodeId(
                entry
                    .get("node")
                    .and_then(Json::as_u64)
                    .ok_or_else(malformed)? as usize,
            );
            nodes.insert(node, NodeMetrics::from_json(entry).ok_or_else(malformed)?);
        }
        let latency = match v.get("latency") {
            Some(section) => Some(Latency::from_json(section).ok_or_else(malformed)?),
            None => None,
        };
        Ok(Metrics {
            bucket_ns: v
                .get("bucket_ns")
                .and_then(Json::as_u64)
                .ok_or_else(malformed)?,
            nodes,
            latency,
        })
    }
}

/// Observer that aggregates the event stream into [`Metrics`] and
/// installs the result into the report's `metrics` field.
#[derive(Debug)]
pub struct MetricsSink {
    metrics: Metrics,
    tx_since: BTreeMap<NodeId, SimTime>,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

impl MetricsSink {
    /// Default airtime bucket: 10 ms.
    pub const DEFAULT_BUCKET_NS: u64 = 10_000_000;

    /// Creates a sink with the default bucket width.
    pub fn new() -> Self {
        MetricsSink::with_bucket_ns(Self::DEFAULT_BUCKET_NS)
    }

    /// Creates a sink with a custom airtime bucket width.
    pub fn with_bucket_ns(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        MetricsSink {
            metrics: Metrics {
                bucket_ns,
                nodes: BTreeMap::new(),
                latency: None,
            },
            tx_since: BTreeMap::new(),
        }
    }

    fn node(&mut self, node: NodeId) -> &mut NodeMetrics {
        self.metrics.nodes.entry(node).or_default()
    }

    fn add_busy_span(&mut self, node: NodeId, start: SimTime, end: SimTime) {
        let bucket_ns = self.metrics.bucket_ns;
        let m = self.node(node);
        let mut at = start.as_nanos();
        let end = end.as_nanos();
        while at < end {
            let bucket = (at / bucket_ns) as usize;
            let bucket_end = (bucket as u64 + 1) * bucket_ns;
            let span = end.min(bucket_end) - at;
            if m.airtime_busy_ns.len() <= bucket {
                m.airtime_busy_ns.resize(bucket + 1, 0);
            }
            m.airtime_busy_ns[bucket] += span;
            at += span;
        }
    }

    fn sample_depth(&mut self, node: NodeId, depth: u32) {
        let m = self.node(node);
        m.queue_depth_peak = m.queue_depth_peak.max(depth);
        m.queue_depth_sum += u64::from(depth);
        m.queue_depth_samples += 1;
    }
}

impl Observer for MetricsSink {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::TxBegin { src, .. } => {
                self.tx_since.insert(src, now);
            }
            SimEvent::TxEnd { src, .. } => {
                if let Some(start) = self.tx_since.remove(&src) {
                    self.add_busy_span(src, start, now);
                }
            }
            SimEvent::Enqueue { node, depth, .. } | SimEvent::Dequeue { node, depth, .. } => {
                self.sample_depth(node, depth);
            }
            SimEvent::BackoffDraw { node, stage, .. } => {
                let bin = (stage as usize).min(MAX_BACKOFF_STAGE);
                self.node(node).backoff_stage[bin] += 1;
            }
            SimEvent::RxResolved { node, sinr_db, .. } => {
                self.node(node).sinr.record(sinr_db);
            }
            // simlint: allow(match-exhaustive) — deliberate projection: the metrics sink samples only the counters above; a new event is metrics-silent until a series is designed for it
            _ => {}
        }
    }

    fn finish(&mut self, report: &mut SimReport) {
        let mut section = mem::take(&mut self.metrics);
        // Preserve a latency section another sink installed first —
        // sinks merge into the report, attach order must not matter.
        if let Some(prev) = report.metrics.take() {
            if section.latency.is_none() {
                section.latency = prev.latency;
            }
        }
        report.metrics = Some(section);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_mac::frames::FrameKind;
    use comap_radio::rates::Rate;

    fn tx(src: usize) -> SimEvent {
        SimEvent::TxBegin {
            src: NodeId(src),
            dst: NodeId(1),
            kind: FrameKind::Data,
            rate: Rate::Mbps11,
        }
    }

    #[test]
    fn busy_spans_split_across_buckets() {
        let mut sink = MetricsSink::with_bucket_ns(1_000);
        sink.on_event(SimTime::from_nanos(500), &tx(0));
        sink.on_event(
            SimTime::from_nanos(2_200),
            &SimEvent::TxEnd {
                src: NodeId(0),
                kind: FrameKind::Data,
            },
        );
        let m = &sink.metrics.nodes[&NodeId(0)];
        assert_eq!(m.airtime_busy_ns, vec![500, 1_000, 200]);
        assert_eq!(m.airtime_utilization(1_000), vec![0.5, 1.0, 0.2]);
    }

    #[test]
    fn queue_depth_and_backoff_and_sinr_aggregate() {
        let mut sink = MetricsSink::new();
        let t = SimTime::ZERO;
        sink.on_event(
            t,
            &SimEvent::Enqueue {
                node: NodeId(0),
                dst: NodeId(1),
                depth: 3,
            },
        );
        sink.on_event(
            t,
            &SimEvent::Dequeue {
                node: NodeId(0),
                dst: NodeId(1),
                depth: 1,
            },
        );
        sink.on_event(
            t,
            &SimEvent::BackoffDraw {
                node: NodeId(0),
                stage: 99,
                slots: 4,
            },
        );
        sink.on_event(
            t,
            &SimEvent::RxResolved {
                node: NodeId(1),
                src: NodeId(0),
                rssi_dbm: -60.0,
                sinr_db: 12.4,
            },
        );
        let m = &sink.metrics.nodes[&NodeId(0)];
        assert_eq!(m.queue_depth_peak, 3);
        assert_eq!(m.mean_queue_depth(), Some(2.0));
        assert_eq!(m.backoff_stage[MAX_BACKOFF_STAGE], 1);
        let rx = &sink.metrics.nodes[&NodeId(1)];
        assert_eq!(rx.sinr.count, 1);
        assert_eq!(rx.sinr.counts[22], 1);
    }

    #[test]
    fn histogram_quantiles_match_a_sorted_vec_oracle() {
        // Samples spanning underflow (< 0), the bins, and overflow
        // (>= 10): the quantile walk must cross all three regions.
        let samples = [-5.0, -1.2, 0.4, 1.1, 2.6, 3.3, 3.9, 7.2, 12.0, 55.0];
        let mut h = Histogram::new(0.0, 1.0, 10);
        for s in samples {
            h.record(s);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        for (i, p) in (1..=samples.len()).map(|i| (i, i as f64 / samples.len() as f64)) {
            let exact = sorted[i - 1];
            let q = h.quantile(p).unwrap();
            // Underflow/overflow ranks report the exact extremes; bin
            // ranks are off by at most half a bin width.
            let tol = if exact < h.lo || exact >= h.lo + h.bin_width * h.counts.len() as f64 {
                // The extreme underflow/overflow ranks are exact, but
                // interior out-of-range ranks collapse onto min/max.
                (exact - sorted[0]).abs().max((exact - sorted[9]).abs())
            } else {
                h.bin_width / 2.0
            };
            assert!((q - exact).abs() <= tol, "p={p}: q={q} exact={exact}");
        }
        assert_eq!(h.quantile(0.0), Some(-5.0));
        assert_eq!(h.quantile(0.1), Some(-5.0));
        assert_eq!(h.quantile(1.0), Some(55.0));
        assert_eq!(h.min, Some(-5.0));
        assert_eq!(h.max, Some(55.0));
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn histogram_merge_equals_concatenated_recording() {
        let mut a = Histogram::new(-10.0, 1.0, 50);
        let mut b = Histogram::new(-10.0, 1.0, 50);
        let mut both = Histogram::new(-10.0, 1.0, 50);
        for s in [-20.0, 3.5, 17.25] {
            a.record(s);
            both.record(s);
        }
        for s in [99.0, -0.5] {
            b.record(s);
            both.record(s);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, both);
        // Different binnings refuse to merge and leave self untouched.
        let before = a.clone();
        assert_eq!(a.merge(&Histogram::new(0.0, 1.0, 50)), Err(BinningMismatch));
        assert_eq!(
            a.merge(&Histogram::new(-10.0, 2.0, 50)),
            Err(BinningMismatch)
        );
        assert_eq!(
            a.merge(&Histogram::new(-10.0, 1.0, 9)),
            Err(BinningMismatch)
        );
        assert_eq!(a, before);
    }

    #[test]
    fn metrics_round_trip_through_json() {
        let mut sink = MetricsSink::with_bucket_ns(1_000);
        sink.on_event(SimTime::from_nanos(100), &tx(0));
        sink.on_event(
            SimTime::from_nanos(900),
            &SimEvent::TxEnd {
                src: NodeId(0),
                kind: FrameKind::Data,
            },
        );
        sink.on_event(
            SimTime::ZERO,
            &SimEvent::RxResolved {
                node: NodeId(1),
                src: NodeId(0),
                rssi_dbm: -60.0,
                sinr_db: 25.5,
            },
        );
        let metrics = sink.metrics.clone();
        let text = metrics.to_json().to_string_compact();
        let back = Metrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn finish_installs_the_section() {
        let mut sink = MetricsSink::new();
        sink.on_event(SimTime::ZERO, &tx(2));
        sink.on_event(
            SimTime::from_nanos(50),
            &SimEvent::TxEnd {
                src: NodeId(2),
                kind: FrameKind::Data,
            },
        );
        let mut report = SimReport::default();
        sink.finish(&mut report);
        let metrics = report.metrics.expect("metrics installed");
        assert_eq!(metrics.nodes[&NodeId(2)].airtime_busy_ns, vec![50]);
    }
}
