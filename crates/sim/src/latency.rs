//! Frame-lifecycle latency spans and the log-bucketed latency
//! histogram.
//!
//! [`LatencySink`] correlates the frame-lifecycle events
//! ([`SimEvent::FrameQueued`] → [`SimEvent::FrameTx`]\* →
//! [`SimEvent::FrameAcked`] / [`SimEvent::FrameDropped`]) by
//! `(node, dst, seq)` into per-frame spans and folds them into four
//! per-node [`LatencyHistogram`]s:
//!
//! * **queueing** — enqueue → first transmission attempt,
//! * **access** — first attempt → start of the final attempt,
//! * **service** — start of the final attempt → ACK or drop,
//! * **e2e** — enqueue → ACK or drop (includes frames that never made
//!   it on the air, e.g. an RTS storm exhausting the retry limit).
//!
//! The histogram is HDR-style: each power of two is split into
//! `2^SUB_BITS = 32` equal sub-buckets, bounding the relative
//! quantization error of any reported quantile by
//! [`LatencyHistogram::MAX_RELATIVE_ERROR`] (1/32 ≈ 3.1%) while
//! covering 0 ns through `u64::MAX` ns (~584 years) in at most 1920
//! buckets. Counts are exact, so [`LatencyHistogram::quantile`] walks
//! true sample ranks, and [`LatencyHistogram::merge`] is plain
//! bucket-wise addition — commutative and associative, which is what
//! makes per-node → aggregate (and later per-shard → global) merging
//! order-independent and deterministic.
//!
//! Like every observer, the sink is strictly read-only: the lifecycle
//! events it consumes are only constructed when a sink is attached, and
//! `tests/observability.rs` enforces that a run with the sink is
//! bit-identical to one without.

use std::collections::BTreeMap;
use std::mem;

use comap_mac::time::SimTime;

use crate::frame::NodeId;
use crate::json::Json;
use crate::metrics::{Metrics, MetricsSink};
use crate::observe::{Observer, SimEvent};
use crate::stats::SimReport;

/// Sub-bucket resolution: each power of two splits into `2^SUB_BITS`
/// equal buckets.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Bucket index of a nanosecond value. Values below [`SUB_COUNT`] get
/// exact unit buckets; above, bucket `i` of octave `o` spans
/// `[(32 + i) << (o-1), (32 + i + 1) << (o-1))`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_COUNT {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        ((u64::from(shift + 1) << SUB_BITS) + ((v >> shift) - SUB_COUNT)) as usize
    }
}

/// Inclusive lower edge of a bucket.
fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        idx
    } else {
        let octave = idx >> SUB_BITS;
        let sub = idx & (SUB_COUNT - 1);
        (SUB_COUNT + sub) << (octave - 1)
    }
}

/// Width of a bucket (1 below [`SUB_COUNT`], doubling per octave).
fn bucket_width(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_COUNT {
        1
    } else {
        1u64 << ((idx >> SUB_BITS) - 1)
    }
}

/// A log-bucketed histogram over `u64` nanosecond samples.
///
/// Counts per bucket are exact; only the reported *value* of a
/// quantile is quantized, to the midpoint of its bucket (clamped into
/// the exactly-tracked `[min, max]` range), with relative error
/// bounded by [`Self::MAX_RELATIVE_ERROR`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// Count per bucket, dense from bucket 0; never ends in a zero.
    counts: Vec<u64>,
    count: u64,
    /// Saturating sum of all samples, for the mean.
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Bound on `|quantile(p) − exact| / exact`: one part in
    /// `2^SUB_BITS`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUB_COUNT as f64;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one nanosecond sample.
    pub fn record(&mut self, ns: u64) {
        let idx = bucket_index(ns);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(1);
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Exact largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean of all samples (saturating sum), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// The `p`-quantile (`p` clamped into `[0, 1]`) by exact sample
    /// rank: the bucket holding the `⌈p·count⌉`-th smallest sample,
    /// reported as that bucket's midpoint clamped into `[min, max]`.
    /// `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count) - 1;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                let mid = bucket_lower(idx) + bucket_width(idx) / 2;
                return Some(mid.clamp(self.min_ns, self.max_ns));
            }
        }
        // Unreachable while counts stay consistent with count; be
        // lenient rather than panicking in library code.
        Some(self.max_ns)
    }

    /// Adds every sample of `other` into `self` — exact bucket-wise
    /// addition, so `merge` is equivalent to having recorded the
    /// concatenated sample streams (and is order-independent).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Serializes as an object with a sparse `buckets` array of
    /// `[index, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::Uint(i as u64), Json::Uint(c)]))
            .collect();
        let mut fields = vec![
            ("buckets", Json::Arr(buckets)),
            ("count", Json::Uint(self.count)),
            ("sum_ns", Json::Uint(self.sum_ns)),
        ];
        if self.count > 0 {
            fields.push(("min_ns", Json::Uint(self.min_ns)));
            fields.push(("max_ns", Json::Uint(self.max_ns)));
        }
        Json::obj(fields)
    }

    /// Parses the [`Self::to_json`] form.
    pub fn from_json(v: &Json) -> Option<LatencyHistogram> {
        let mut h = LatencyHistogram::default();
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let [idx, c] = pair else { return None };
            let idx = usize::try_from(idx.as_u64()?).ok()?;
            if h.counts.len() <= idx {
                h.counts.resize(idx + 1, 0);
            }
            h.counts[idx] = c.as_u64()?;
        }
        h.count = v.get("count")?.as_u64()?;
        h.sum_ns = v.get("sum_ns")?.as_u64()?;
        if h.count > 0 {
            h.min_ns = v.get("min_ns")?.as_u64()?;
            h.max_ns = v.get("max_ns")?.as_u64()?;
        }
        Some(h)
    }
}

/// Per-node latency aggregates over finalized frame spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeLatency {
    /// Enqueue → ACK-or-drop, every finalized frame.
    pub e2e: LatencyHistogram,
    /// Enqueue → first transmission attempt.
    pub queueing: LatencyHistogram,
    /// First attempt → start of the final attempt (0 when one try
    /// sufficed).
    pub access: LatencyHistogram,
    /// Start of the final attempt → ACK or drop.
    pub service: LatencyHistogram,
    /// Frames that ended in an ACK.
    pub delivered: u64,
    /// Frames abandoned at the retry limit.
    pub dropped: u64,
    /// Total transmission attempts observed ([`SimEvent::FrameTx`]s).
    pub tx_attempts: u64,
    /// Spans still open when the run ended.
    pub incomplete: u64,
}

impl NodeLatency {
    /// Folds `other` into `self` (exact, order-independent).
    pub fn merge(&mut self, other: &NodeLatency) {
        self.e2e.merge(&other.e2e);
        self.queueing.merge(&other.queueing);
        self.access.merge(&other.access);
        self.service.merge(&other.service);
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.tx_attempts += other.tx_attempts;
        self.incomplete += other.incomplete;
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("e2e", self.e2e.to_json()),
            ("queueing", self.queueing.to_json()),
            ("access", self.access.to_json()),
            ("service", self.service.to_json()),
            ("delivered", Json::Uint(self.delivered)),
            ("dropped", Json::Uint(self.dropped)),
            ("tx_attempts", Json::Uint(self.tx_attempts)),
            ("incomplete", Json::Uint(self.incomplete)),
        ])
    }

    fn from_json(v: &Json) -> Option<NodeLatency> {
        Some(NodeLatency {
            e2e: LatencyHistogram::from_json(v.get("e2e")?)?,
            queueing: LatencyHistogram::from_json(v.get("queueing")?)?,
            access: LatencyHistogram::from_json(v.get("access")?)?,
            service: LatencyHistogram::from_json(v.get("service")?)?,
            delivered: v.get("delivered")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            tx_attempts: v.get("tx_attempts")?.as_u64()?,
            incomplete: v.get("incomplete")?.as_u64()?,
        })
    }
}

/// The latency section of [`Metrics`], produced by [`LatencySink`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Latency {
    /// Aggregates per sender.
    pub nodes: BTreeMap<NodeId, NodeLatency>,
}

impl Latency {
    /// Merges every node's aggregates into one (ascending `NodeId`
    /// order; the result is order-independent because
    /// [`NodeLatency::merge`] is exact bucket-wise addition).
    pub fn aggregate(&self) -> NodeLatency {
        let mut all = NodeLatency::default();
        for m in self.nodes.values() {
            all.merge(m);
        }
        all
    }

    /// Serializes the section as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "nodes",
            Json::Arr(
                self.nodes
                    .iter()
                    .map(|(n, m)| {
                        let Json::Obj(mut fields) = m.to_json() else {
                            unreachable!("NodeLatency::to_json returns an object")
                        };
                        fields.insert(0, ("node".to_string(), Json::Uint(n.0 as u64)));
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        )])
    }

    /// Parses the section from its [`Latency::to_json`] form.
    pub fn from_json(v: &Json) -> Option<Latency> {
        let mut nodes = BTreeMap::new();
        for entry in v.get("nodes")?.as_arr()? {
            let node = NodeId(entry.get("node")?.as_u64()? as usize);
            nodes.insert(node, NodeLatency::from_json(entry)?);
        }
        Some(Latency { nodes })
    }
}

/// One in-flight frame span.
#[derive(Debug, Clone, Copy)]
struct Span {
    enqueued: SimTime,
    first_tx: Option<SimTime>,
    last_tx: Option<SimTime>,
}

/// Observer that correlates frame-lifecycle events into per-frame
/// spans and installs the [`Latency`] section into
/// [`SimReport::metrics`] when the run finishes (merging with, never
/// clobbering, a section another sink installed).
#[derive(Debug, Default)]
pub struct LatencySink {
    spans: BTreeMap<(NodeId, NodeId, u64), Span>,
    latency: Latency,
}

impl LatencySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn finalize(&mut self, now: SimTime, node: NodeId, dst: NodeId, seq: u64, delivered: bool) {
        let Some(span) = self.spans.remove(&(node, dst, seq)) else {
            return;
        };
        let m = self.latency.nodes.entry(node).or_default();
        m.e2e
            .record(now.saturating_duration_since(span.enqueued).as_nanos());
        if let (Some(first), Some(last)) = (span.first_tx, span.last_tx) {
            m.queueing
                .record(first.saturating_duration_since(span.enqueued).as_nanos());
            m.access
                .record(last.saturating_duration_since(first).as_nanos());
            m.service
                .record(now.saturating_duration_since(last).as_nanos());
        }
        if delivered {
            m.delivered += 1;
        } else {
            m.dropped += 1;
        }
    }
}

impl Observer for LatencySink {
    fn on_event(&mut self, now: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::FrameQueued { node, dst, seq } => {
                let displaced = self.spans.insert(
                    (node, dst, seq),
                    Span {
                        enqueued: now,
                        first_tx: None,
                        last_tx: None,
                    },
                );
                // A reused (node, dst, seq) key means the prior span
                // never finalized; account it rather than lose it.
                if displaced.is_some() {
                    self.latency.nodes.entry(node).or_default().incomplete += 1;
                }
            }
            SimEvent::FrameTx { node, dst, seq, .. } => {
                self.latency.nodes.entry(node).or_default().tx_attempts += 1;
                if let Some(span) = self.spans.get_mut(&(node, dst, seq)) {
                    span.first_tx.get_or_insert(now);
                    span.last_tx = Some(now);
                }
            }
            SimEvent::FrameAcked { node, dst, seq } => {
                self.finalize(now, node, dst, seq, true);
            }
            SimEvent::FrameDropped { node, dst, seq } => {
                self.finalize(now, node, dst, seq, false);
            }
            // simlint: allow(match-exhaustive) — deliberate projection: the latency sink tracks only the four frame-lifecycle events; everything else is out of scope by design
            _ => {}
        }
    }

    fn finish(&mut self, report: &mut SimReport) {
        for ((node, _, _), _) in mem::take(&mut self.spans) {
            self.latency.nodes.entry(node).or_default().incomplete += 1;
        }
        let section = mem::take(&mut self.latency);
        match &mut report.metrics {
            Some(m) => m.latency = Some(section),
            None => {
                report.metrics = Some(Metrics {
                    bucket_ns: MetricsSink::DEFAULT_BUCKET_NS,
                    latency: Some(section),
                    ..Metrics::default()
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_contiguous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "contiguous at {v}");
            assert!(bucket_lower(idx) <= v, "lower bound at {v}");
            assert!(
                v < bucket_lower(idx) + bucket_width(idx),
                "upper bound at {v}"
            );
            prev = idx;
        }
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert_eq!(bucket_lower(idx), v, "powers of two start buckets");
        }
        let top = bucket_index(u64::MAX);
        assert!(bucket_lower(top) <= u64::MAX - bucket_width(top) + 1);
        assert!(top < 1920);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(31));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
    }

    #[test]
    fn quantiles_stay_within_the_relative_error_bound() {
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i * 37 + 12).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact = sorted[rank];
            let q = h.quantile(p).unwrap();
            let err = (q as f64 - exact as f64).abs();
            assert!(
                err <= exact as f64 * LatencyHistogram::MAX_RELATIVE_ERROR,
                "p={p}: q={q} exact={exact}"
            );
        }
    }

    #[test]
    fn merge_equals_concatenated_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3u64, 77, 1_000_000, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 123_456_789_012, 77] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn histogram_round_trips_through_json() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 42, 9_999, 60_000_000_000] {
            h.record(v);
        }
        let text = h.to_json().to_string_compact();
        let back = LatencyHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        let empty = LatencyHistogram::new();
        let text = empty.to_json().to_string_compact();
        let back = LatencyHistogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    fn queued(node: usize, seq: u64) -> SimEvent {
        SimEvent::FrameQueued {
            node: NodeId(node),
            dst: NodeId(9),
            seq,
        }
    }

    fn tx(node: usize, seq: u64, attempt: u32) -> SimEvent {
        SimEvent::FrameTx {
            node: NodeId(node),
            dst: NodeId(9),
            seq,
            attempt,
        }
    }

    #[test]
    fn sink_builds_the_four_spans() {
        let mut sink = LatencySink::new();
        let t = SimTime::from_nanos;
        sink.on_event(t(100), &queued(0, 0));
        sink.on_event(t(150), &tx(0, 0, 0));
        sink.on_event(t(400), &tx(0, 0, 1));
        sink.on_event(
            t(500),
            &SimEvent::FrameAcked {
                node: NodeId(0),
                dst: NodeId(9),
                seq: 0,
            },
        );
        // A second frame that is dropped before ever transmitting.
        sink.on_event(t(600), &queued(0, 1));
        sink.on_event(
            t(900),
            &SimEvent::FrameDropped {
                node: NodeId(0),
                dst: NodeId(9),
                seq: 1,
            },
        );
        // And one left open at the end of the run.
        sink.on_event(t(950), &queued(0, 2));
        let mut report = SimReport::default();
        sink.finish(&mut report);
        let latency = report.metrics.unwrap().latency.unwrap();
        let m = &latency.nodes[&NodeId(0)];
        assert_eq!(m.delivered, 1);
        assert_eq!(m.dropped, 1);
        assert_eq!(m.tx_attempts, 2);
        assert_eq!(m.incomplete, 1);
        assert_eq!(m.e2e.count(), 2);
        assert_eq!(m.e2e.min(), Some(300));
        assert_eq!(m.e2e.max(), Some(400));
        // queueing/access/service only exist for the transmitted frame.
        assert_eq!(m.queueing.count(), 1);
        assert_eq!(m.queueing.min(), Some(50));
        assert_eq!(m.access.min(), Some(250));
        assert_eq!(m.service.min(), Some(100));
    }

    #[test]
    fn aggregate_merges_across_nodes() {
        let mut sink = LatencySink::new();
        let t = SimTime::from_nanos;
        for node in 0..3usize {
            sink.on_event(t(0), &queued(node, 0));
            sink.on_event(t(10), &tx(node, 0, 0));
            sink.on_event(
                t(20 + node as u64),
                &SimEvent::FrameAcked {
                    node: NodeId(node),
                    dst: NodeId(9),
                    seq: 0,
                },
            );
        }
        let mut report = SimReport::default();
        sink.finish(&mut report);
        let latency = report.metrics.unwrap().latency.unwrap();
        let all = latency.aggregate();
        assert_eq!(all.delivered, 3);
        assert_eq!(all.e2e.count(), 3);
        assert_eq!(all.e2e.min(), Some(20));
        assert_eq!(all.e2e.max(), Some(22));
    }

    #[test]
    fn section_round_trips_through_json() {
        let mut sink = LatencySink::new();
        let t = SimTime::from_nanos;
        sink.on_event(t(5), &queued(1, 7));
        sink.on_event(t(50), &tx(1, 7, 0));
        sink.on_event(
            t(90),
            &SimEvent::FrameAcked {
                node: NodeId(1),
                dst: NodeId(9),
                seq: 7,
            },
        );
        let mut report = SimReport::default();
        sink.finish(&mut report);
        let latency = report.metrics.unwrap().latency.unwrap();
        let text = latency.to_json().to_string_compact();
        let back = Latency::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, latency);
    }
}
