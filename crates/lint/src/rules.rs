//! The simlint rules.
//!
//! Each rule is a pure function from lexed source to [`Finding`]s. Rules
//! are scoped per crate (see [`crate::rules`] items for the scoping
//! table) and every finding can be suppressed with a
//! `// simlint: allow(<rule>) — <reason>` comment on the same line or
//! within the two lines above it. The suppression *requires* a reason —
//! a bare `allow` is itself reported via [`Rule::BadSuppression`].

use crate::lexer::{lex, Lexed, TokKind, Token};

/// The named rules simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Public functions in the physics crates must take unit newtypes,
    /// not raw `f64`, for power/ratio/distance parameters.
    UnitHygiene,
    /// No unordered containers, wall clocks or thread-local RNG in the
    /// deterministic simulation crates.
    Determinism,
    /// No `unwrap()`/`expect()`/`panic!`/`todo!` in library code.
    PanicPolicy,
    /// Every `SimEvent` variant must have an emission site.
    EventCompleteness,
    /// No `==`/`!=` against floating-point literals.
    FloatEq,
    /// Matches dispatching on a `MediumBackend` must name every
    /// backend — no wildcard arms, so adding a backend forces a
    /// decision at each dispatch site.
    BackendExhaustive,
    /// A `simlint:` directive that is malformed, names an unknown rule,
    /// or omits its justification.
    BadSuppression,
}

impl Rule {
    /// The stable kebab-case rule name used in findings, suppression
    /// comments and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitHygiene => "unit-hygiene",
            Rule::Determinism => "determinism",
            Rule::PanicPolicy => "panic-policy",
            Rule::EventCompleteness => "event-completeness",
            Rule::FloatEq => "float-eq",
            Rule::BackendExhaustive => "backend-exhaustive",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Parses a rule from its [`Rule::name`] form.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "unit-hygiene" => Rule::UnitHygiene,
            "determinism" => Rule::Determinism,
            "panic-policy" => Rule::PanicPolicy,
            "event-completeness" => Rule::EventCompleteness,
            "float-eq" => Rule::FloatEq,
            "backend-exhaustive" => Rule::BackendExhaustive,
            "bad-suppression" => Rule::BadSuppression,
            _ => return None,
        })
    }

    /// Every suppressible rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::UnitHygiene,
        Rule::Determinism,
        Rule::PanicPolicy,
        Rule::EventCompleteness,
        Rule::FloatEq,
        Rule::BackendExhaustive,
        Rule::BadSuppression,
    ];
}

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (used in findings
    /// and the baseline).
    pub rel_path: String,
    /// Short crate name (`radio`, `mac`, `core`, `sim`, `experiments`,
    /// `lint`, `comap`) controlling which rules apply.
    pub crate_name: String,
    /// Full file contents.
    pub text: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line, for context and baseline keying.
    pub snippet: String,
}

impl Finding {
    /// The baseline key: rule, file and whitespace-normalized snippet.
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered finding do not invalidate the baseline.
    pub fn baseline_key(&self) -> String {
        let normalized: Vec<&str> = self.snippet.split_whitespace().collect();
        format!(
            "{}\t{}\t{}",
            self.rule.name(),
            self.file,
            normalized.join(" ")
        )
    }
}

/// Aggregate result of linting a file set.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that were not suppressed, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by `simlint: allow` comments.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Crates whose public functions the unit-hygiene rule covers.
const UNIT_HYGIENE_CRATES: [&str; 2] = ["radio", "sim"];
/// Crates that must stay bit-deterministic.
const DETERMINISM_CRATES: [&str; 3] = ["sim", "mac", "core"];
/// The crate holding the `SimEvent` enum and its emission sites.
const EVENT_CRATE: &str = "sim";
/// Crates whose `MediumBackend` dispatches must stay exhaustive.
const BACKEND_CRATES: [&str; 2] = ["sim", "experiments"];
/// The enum whose variants event-completeness audits.
const EVENT_ENUM: &str = "SimEvent";

/// Lints a set of library source files and applies suppressions.
pub fn lint_files(files: &[SourceFile]) -> LintOutcome {
    let mut outcome = LintOutcome {
        files_scanned: files.len(),
        ..LintOutcome::default()
    };
    let mut raw: Vec<Finding> = Vec::new();
    let mut decl: Option<EventDecl> = None;
    let mut constructed: Vec<String> = Vec::new();

    let mut lexed_files: Vec<(usize, Lexed)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        lexed_files.push((idx, lex(&file.text)));
    }

    for (idx, lexed) in &lexed_files {
        let file = &files[*idx];
        check_panic_policy(file, lexed, &mut raw);
        if DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
            check_determinism(file, lexed, &mut raw);
        }
        check_float_eq(file, lexed, &mut raw);
        if UNIT_HYGIENE_CRATES.contains(&file.crate_name.as_str()) {
            check_unit_hygiene(file, lexed, &mut raw);
        }
        if BACKEND_CRATES.contains(&file.crate_name.as_str()) {
            check_backend_exhaustive(file, lexed, &mut raw);
        }
        check_directives(file, lexed, &mut raw);
        if file.crate_name == EVENT_CRATE {
            match find_event_decl(file, lexed) {
                Some(d) => decl = Some(d),
                None => collect_event_constructions(lexed, &mut constructed),
            }
        }
    }

    if let Some(decl) = decl {
        for (variant, line, snippet) in &decl.variants {
            if !constructed.iter().any(|v| v == variant) {
                raw.push(Finding {
                    rule: Rule::EventCompleteness,
                    file: decl.file.clone(),
                    line: *line,
                    message: format!(
                        "`{EVENT_ENUM}::{variant}` is declared but never emitted by the simulator"
                    ),
                    snippet: snippet.clone(),
                });
            }
        }
    }

    // Apply suppressions: a well-formed, justified directive for the
    // finding's rule on the finding's line or up to two lines above.
    for finding in raw {
        let lexed = lexed_files
            .iter()
            .find(|(idx, _)| files[*idx].rel_path == finding.file)
            .map(|(_, l)| l);
        let suppressed = finding.rule != Rule::BadSuppression
            && lexed.is_some_and(|l| {
                l.directives.iter().any(|d| {
                    d.well_formed
                        && d.has_reason
                        && d.rule == finding.rule.name()
                        && d.line <= finding.line
                        && finding.line - d.line <= 2
                })
            });
        if suppressed {
            outcome.suppressed += 1;
        } else {
            outcome.findings.push(finding);
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    outcome
}

/// The trimmed source line `line` (1-based) of `file`.
fn snippet_at(file: &SourceFile, line: u32) -> String {
    file.text
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

fn push(file: &SourceFile, rule: Rule, line: u32, message: String, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: snippet_at(file, line),
    });
}

/// panic-policy: `.unwrap()`, `.expect(`, `panic!`, `todo!` outside
/// `#[cfg(test)]` regions. `assert!`/`debug_assert!`/`unreachable!` are
/// deliberately exempt — they state invariants rather than skip error
/// handling.
fn check_panic_policy(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let call = match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => Some("`.unwrap()`"),
            "expect" if prev_dot && next_paren => Some("`.expect(..)`"),
            "panic" if next_bang => Some("`panic!`"),
            "todo" if next_bang => Some("`todo!`"),
            _ => None,
        };
        if let Some(call) = call {
            push(
                file,
                Rule::PanicPolicy,
                t.line,
                format!(
                    "{call} in library code — return a typed error (e.g. via comap-core::error) \
                     or justify the invariant with `simlint: allow(panic-policy)`"
                ),
                out,
            );
        }
    }
}

/// determinism: unordered containers, wall clocks and thread-local RNG
/// are banned from the crates whose runs must be bit-reproducible.
fn check_determinism(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let clock_now = |name: &str| {
            t.is_ident(name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        };
        let message = if t.is_ident("HashMap") || t.is_ident("HashSet") {
            Some(format!(
                "`{}` has a non-deterministic iteration order — use BTreeMap/BTreeSet \
                 or an index-keyed slab",
                t.text
            ))
        } else if clock_now("Instant") || clock_now("SystemTime") {
            Some(format!(
                "`{}::now()` reads the wall clock inside a deterministic simulation crate",
                t.text
            ))
        } else if t.is_ident("thread_rng") {
            Some("`thread_rng()` is thread-local and unseeded — thread the simulation RNG through instead".to_string())
        } else {
            None
        };
        if let Some(message) = message {
            push(file, Rule::Determinism, t.line, message, out);
        }
    }
}

/// float-eq: `==`/`!=` where either operand is a float literal.
fn check_float_eq(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_prev = i > 0 && toks[i - 1].kind == TokKind::Float;
        let float_next = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
        if float_prev || float_next {
            push(
                file,
                Rule::FloatEq,
                t.line,
                format!(
                    "`{}` against a float literal — compare with a tolerance, use a \
                     total-order comparison, or justify exactness with `simlint: allow(float-eq)`",
                    t.text
                ),
                out,
            );
        }
    }
}

/// Maps a suspicious parameter name to the newtype it should use.
fn unit_suggestion(name: &str) -> Option<&'static str> {
    if name == "dbm" || name.ends_with("_dbm") {
        Some("comap_radio::units::Dbm")
    } else if name == "db" || name.ends_with("_db") {
        Some("comap_radio::units::Db")
    } else if name == "mw" || name.ends_with("_mw") || name.contains("power") {
        Some("comap_radio::units::MilliWatts (or Dbm)")
    } else if name == "loss" || name.ends_with("_loss") {
        Some("comap_radio::units::Db")
    } else if name.starts_with("dist") || name.ends_with("_dist") {
        Some("comap_radio::units::Meters")
    } else if name == "sir" || name == "sinr" || name.ends_with("_sir") || name.ends_with("_sinr") {
        Some("comap_radio::units::Db")
    } else {
        None
    }
}

/// unit-hygiene: `pub fn` parameters whose names imply a physical unit
/// must not be raw `f64`.
fn check_unit_hygiene(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if lexed.in_test[i] || !(toks[i].is_ident("pub") && toks[i + 1].is_ident("fn")) {
            i += 1;
            continue;
        }
        let mut j = i + 3; // past `pub fn name`
                           // Skip generic parameters.
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            let mut depth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_punct("(")) {
            i += 1;
            continue;
        }
        // Collect the parameter list tokens up to the matching `)`.
        let open = j;
        let mut depth = 0i32;
        let mut close = open;
        while close < toks.len() {
            if toks[close].is_punct("(") {
                depth += 1;
            } else if toks[close].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        check_params(file, &toks[open + 1..close], out);
        i = close + 1;
    }
}

/// Checks one parameter list (tokens between the signature parens).
fn check_params(file: &SourceFile, params: &[Token], out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut segments: Vec<&[Token]> = Vec::new();
    for (k, t) in params.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "," if depth == 0 => {
                segments.push(&params[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < params.len() {
        segments.push(&params[start..]);
    }
    for seg in segments {
        // The first top-level `:` separates pattern from type (`::` is a
        // single distinct token, so paths cannot confuse this).
        let Some(colon) = seg.iter().position(|t| t.is_punct(":")) else {
            continue;
        };
        let name = seg[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut");
        let Some(name) = name else { continue };
        if name.text == "self" {
            continue;
        }
        let ty = &seg[colon + 1..];
        let is_raw_f64 = ty.len() == 1 && ty[0].is_ident("f64");
        if !is_raw_f64 {
            continue;
        }
        if let Some(suggestion) = unit_suggestion(&name.text) {
            push(
                file,
                Rule::UnitHygiene,
                name.line,
                format!(
                    "public parameter `{}: f64` carries a physical unit — take `{}` instead",
                    name.text, suggestion
                ),
                out,
            );
        }
    }
}

/// backend-exhaustive: a `match` whose scrutinee mentions the medium
/// backend (`MediumBackend` or any `*backend*` binding) must not use a
/// wildcard arm. The two backends are contractually bit-identical, so
/// every dispatch site is a place where a future backend needs an
/// explicit decision — a `_` arm would silently absorb it.
fn check_backend_exhaustive(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.in_test[i] || !toks[i].is_ident("match") {
            i += 1;
            continue;
        }
        // Scan the scrutinee: everything up to the `{` opening the
        // match body (braces inside parens/brackets don't end it).
        let mut j = i + 1;
        let mut mentions_backend = false;
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if depth == 0 && t.is_punct("{") {
                break;
            }
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
            if t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("backend") {
                mentions_backend = true;
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        if !mentions_backend {
            i = j + 1;
            continue;
        }
        // Walk the body: a `_` at arm level (depth 1) starting or
        // continuing a pattern (`_ =>`, `_ |`, `_ if guard =>`).
        let open = j;
        let mut depth = 0i32;
        let mut k = open;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 && t.is_ident("_") {
                let next = toks.get(k + 1);
                let is_arm = matches!(
                    next,
                    Some(n) if n.is_punct("=>") || n.is_punct("|") || n.is_ident("if")
                );
                if is_arm {
                    push(
                        file,
                        Rule::BackendExhaustive,
                        t.line,
                        "wildcard arm in a `MediumBackend` dispatch — name every backend \
                         so adding one forces a decision here, or justify with \
                         `simlint: allow(backend-exhaustive)`"
                            .to_string(),
                        out,
                    );
                }
            }
            k += 1;
        }
        // Resume just inside the body so nested backend matches are
        // still scanned (their arms sit at depth ≥ 2 here, so the pass
        // above never double-reports them).
        i = open + 1;
    }
}

/// bad-suppression: every `simlint:` comment must be a well-formed
/// `allow(<known-rule>)` with a justification.
fn check_directives(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    for d in &lexed.directives {
        let message = if !d.well_formed {
            Some(
                "malformed `simlint:` directive — expected `simlint: allow(<rule>) — <reason>`"
                    .to_string(),
            )
        } else if Rule::from_name(&d.rule).is_none() {
            Some(format!(
                "`simlint: allow({})` names an unknown rule",
                d.rule
            ))
        } else if !d.has_reason {
            Some(format!(
                "`simlint: allow({})` without a justification — state the invariant that makes this safe",
                d.rule
            ))
        } else {
            None
        };
        if let Some(message) = message {
            push(file, Rule::BadSuppression, d.line, message, out);
        }
    }
}

/// The parsed `SimEvent` declaration.
#[derive(Debug)]
struct EventDecl {
    file: String,
    /// `(variant, line, snippet)` triples.
    variants: Vec<(String, u32, String)>,
}

/// Finds and parses `enum SimEvent { ... }` in `file`, if declared here.
fn find_event_decl(file: &SourceFile, lexed: &Lexed) -> Option<EventDecl> {
    let toks = &lexed.tokens;
    let mut at = None;
    for i in 0..toks.len() {
        if toks[i].is_ident("enum")
            && toks.get(i + 1).is_some_and(|t| t.is_ident(EVENT_ENUM))
            && !lexed.in_test[i]
        {
            at = Some(i);
            break;
        }
    }
    let start = at?;
    let mut j = start + 2;
    while j < toks.len() && !toks[j].is_punct("{") {
        j += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
            // A variant name is the ident at depth 1 opening its own
            // field block or listed bare before `,`.
            j += 1;
            continue;
        }
        if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
            j += 1;
            continue;
        }
        if depth == 1 && t.kind == TokKind::Ident && starts_uppercase(&t.text) {
            // Skip attribute contents (`#[...]` was consumed via depth).
            let next = toks.get(j + 1);
            let is_variant = matches!(
                next,
                Some(n) if n.is_punct("{") || n.is_punct("(") || n.is_punct(",") || n.is_punct("}")
            );
            if is_variant {
                variants.push((t.text.clone(), t.line, snippet_at(file, t.line)));
            }
        }
        j += 1;
    }
    if variants.is_empty() {
        None
    } else {
        Some(EventDecl {
            file: file.rel_path.clone(),
            variants,
        })
    }
}

fn starts_uppercase(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Collects `SimEvent::Variant` *construction* sites (match arms and
/// other patterns do not count as emissions).
fn collect_event_constructions(lexed: &Lexed, out: &mut Vec<String>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.in_test[i]
            || !toks[i].is_ident(EVENT_ENUM)
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        {
            continue;
        }
        let Some(variant) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut j = i + 3;
        let mut wildcard_body = false;
        if toks
            .get(j)
            .is_some_and(|t| t.is_punct("{") || t.is_punct("("))
        {
            let open = j;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // `Variant { .. }` is always a pattern.
            wildcard_body = j == open + 2 && toks.get(open + 1).is_some_and(|t| t.is_punct(".."));
            j += 1;
        }
        let next = toks.get(j);
        let is_pattern = wildcard_body
            || matches!(next, Some(n) if n.is_punct("=>") || n.is_punct("|") || n.is_punct("="));
        if !is_pattern {
            out.push(variant.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            crate_name: crate_name.to_string(),
            text: text.to_string(),
        }
    }

    fn rules_of(outcome: &LintOutcome) -> Vec<(Rule, u32)> {
        outcome.findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn panic_policy_flags_and_suppresses() {
        let src = "fn a() { x.unwrap(); }\n\
                   // simlint: allow(panic-policy) — invariant: y is always present\n\
                   fn b() { y.expect(\"present\"); }\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::PanicPolicy, 1)]);
        assert_eq!(out.suppressed, 1);
    }

    #[test]
    fn determinism_scoped_to_sim_mac_core() {
        let src = "use std::collections::HashMap;\n";
        let flagged = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&flagged), vec![(Rule::Determinism, 1)]);
        let unflagged = lint_files(&[file("experiments", "crates/experiments/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn float_eq_needs_float_literal() {
        let src = "fn f(x: f64, n: u32) { if x == 0.0 {} if n == 0 {} }\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::FloatEq, 1)]);
    }

    #[test]
    fn unit_hygiene_flags_public_f64_units_only() {
        let src = "pub fn set(power: f64) {}\n\
                   fn internal(power: f64) {}\n\
                   pub fn typed(power: Dbm) {}\n\
                   pub fn unrelated(alpha: f64) {}\n";
        let out = lint_files(&[file("radio", "crates/radio/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::UnitHygiene, 1)]);
    }

    #[test]
    fn event_completeness_counts_constructions_not_patterns() {
        let decl = "pub enum SimEvent {\n    Used { n: u32 },\n    Orphan { n: u32 },\n    BareOrphan,\n}\n";
        let emit = "fn e() -> SimEvent { SimEvent::Used { n: 0 } }\n\
                    fn m(e: &SimEvent) -> u32 { match e { SimEvent::Orphan { .. } => 1, _ => 0 } }\n";
        let out = lint_files(&[
            file("sim", "crates/sim/src/observe.rs", decl),
            file("sim", "crates/sim/src/mac.rs", emit),
        ]);
        let names: Vec<&str> = out
            .findings
            .iter()
            .map(|f| f.message.split('`').nth(1).unwrap_or(""))
            .collect();
        assert_eq!(names, vec!["SimEvent::Orphan", "SimEvent::BareOrphan"]);
    }

    #[test]
    fn backend_exhaustive_flags_wildcards_in_scope_only() {
        let src = "fn f(backend: MediumBackend) -> u32 {\n\
                   \x20   match backend {\n\
                   \x20       MediumBackend::Culled => 1,\n\
                   \x20       _ => 0,\n\
                   \x20   }\n\
                   }\n\
                   fn g(n: u32) -> u32 { match n { 0 => 1, _ => 0 } }\n";
        let flagged = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&flagged), vec![(Rule::BackendExhaustive, 4)]);
        let unflagged = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn bad_suppressions_are_reported() {
        let src = "// simlint: allow(no-such-rule) — reason text\n\
                   // simlint: allow(float-eq)\n\
                   // simlint: deny(everything)\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(
            rules_of(&out),
            vec![
                (Rule::BadSuppression, 1),
                (Rule::BadSuppression, 2),
                (Rule::BadSuppression, 3)
            ]
        );
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); assert!(1.0 == 1.0); }\n}\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
