//! The simlint rules.
//!
//! Each rule is a pure function from lexed source (plus the
//! [`crate::tree`] item model) to [`Finding`]s. Rules are scoped per
//! crate (see the scoping constants below) and every finding can be
//! suppressed with a `// simlint: allow(<rule>) — <reason>` comment on
//! the same line or within the two lines above it. The suppression
//! *requires* a reason — a bare `allow` is itself reported via
//! [`Rule::BadSuppression`].

use std::collections::BTreeMap;

use crate::lexer::{lex, Lexed, TokKind};
use crate::tree::{FileModel, FnItem, Range};

/// The named rules simlint enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Public functions in the physics crates must take unit newtypes,
    /// not raw `f64`, for power/ratio/distance parameters.
    UnitHygiene,
    /// No unordered containers, wall clocks or thread-local RNG in the
    /// deterministic simulation crates.
    Determinism,
    /// No `unwrap()`/`expect()`/`panic!`/`todo!` in library code.
    PanicPolicy,
    /// Every `SimEvent` variant must have an emission site.
    EventCompleteness,
    /// No `==`/`!=` against floating-point literals.
    FloatEq,
    /// Matches dispatching on a `MediumBackend` must name every
    /// backend — no wildcard arms, so adding a backend forces a
    /// decision at each dispatch site.
    BackendExhaustive,
    /// No shared-mutable / non-`Send` state (`Rc`, `RefCell`, `Cell`,
    /// `static mut`, `thread_local!`, raw-pointer fields) in the crates
    /// the sharded engine will run in parallel.
    ShardSafety,
    /// No sequential `StdRng` draws in hot-path simulation code — use
    /// the counter-based keyed streams (PR 7) so per-region shards
    /// never share a mutable RNG stream.
    RngDiscipline,
    /// Matches over `SimEvent` must name every variant they dispatch
    /// on — no wildcard arms, so a new event forces a decision at each
    /// observer/dispatch site.
    MatchExhaustive,
    /// A per-rule suppression count exceeded its `--max-allows`
    /// budget — the allowlist must ratchet down, never grow.
    SuppressionBudget,
    /// A `simlint:` directive that is malformed, names an unknown rule,
    /// or omits its justification.
    BadSuppression,
}

impl Rule {
    /// The stable kebab-case rule name used in findings, suppression
    /// comments and the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnitHygiene => "unit-hygiene",
            Rule::Determinism => "determinism",
            Rule::PanicPolicy => "panic-policy",
            Rule::EventCompleteness => "event-completeness",
            Rule::FloatEq => "float-eq",
            Rule::BackendExhaustive => "backend-exhaustive",
            Rule::ShardSafety => "shard-safety",
            Rule::RngDiscipline => "rng-discipline",
            Rule::MatchExhaustive => "match-exhaustive",
            Rule::SuppressionBudget => "suppression-budget",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    /// Parses a rule from its [`Rule::name`] form.
    pub fn from_name(name: &str) -> Option<Rule> {
        Some(match name {
            "unit-hygiene" => Rule::UnitHygiene,
            "determinism" => Rule::Determinism,
            "panic-policy" => Rule::PanicPolicy,
            "event-completeness" => Rule::EventCompleteness,
            "float-eq" => Rule::FloatEq,
            "backend-exhaustive" => Rule::BackendExhaustive,
            "shard-safety" => Rule::ShardSafety,
            "rng-discipline" => Rule::RngDiscipline,
            "match-exhaustive" => Rule::MatchExhaustive,
            "suppression-budget" => Rule::SuppressionBudget,
            "bad-suppression" => Rule::BadSuppression,
            _ => return None,
        })
    }

    /// Every rule, in reporting order.
    pub const ALL: [Rule; 11] = [
        Rule::UnitHygiene,
        Rule::Determinism,
        Rule::PanicPolicy,
        Rule::EventCompleteness,
        Rule::FloatEq,
        Rule::BackendExhaustive,
        Rule::ShardSafety,
        Rule::RngDiscipline,
        Rule::MatchExhaustive,
        Rule::SuppressionBudget,
        Rule::BadSuppression,
    ];
}

/// One source file to lint.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (used in findings
    /// and the baseline).
    pub rel_path: String,
    /// Short crate name (`radio`, `mac`, `core`, `sim`, `experiments`,
    /// `lint`, `comap`) controlling which rules apply.
    pub crate_name: String,
    /// Full file contents.
    pub text: String,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line, for context and baseline keying.
    pub snippet: String,
}

impl Finding {
    /// The baseline key: rule, file and whitespace-normalized snippet.
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered finding do not invalidate the baseline.
    pub fn baseline_key(&self) -> String {
        let normalized: Vec<&str> = self.snippet.split_whitespace().collect();
        format!(
            "{}\t{}\t{}",
            self.rule.name(),
            self.file,
            normalized.join(" ")
        )
    }
}

/// Aggregate result of linting a file set.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that were not suppressed, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of findings silenced by `simlint: allow` comments.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-rule counts of well-formed, justified `simlint: allow`
    /// directives present in the scanned sources (whether or not each
    /// silenced a finding this run) — the in-source half of the
    /// suppression budget.
    pub allow_directives: BTreeMap<String, usize>,
}

/// Crates whose public functions the unit-hygiene rule covers.
const UNIT_HYGIENE_CRATES: [&str; 2] = ["radio", "sim"];
/// Crates that must stay bit-deterministic.
const DETERMINISM_CRATES: [&str; 3] = ["sim", "mac", "core"];
/// Crates the sharded engine will run in parallel: all state reachable
/// from a region shard must be `Send` by construction.
const SHARD_SAFETY_CRATES: [&str; 4] = ["sim", "mac", "core", "radio"];
/// Crates whose hot paths must not consume a sequential RNG stream.
const RNG_DISCIPLINE_CRATES: [&str; 3] = ["sim", "mac", "core"];
/// The crate holding the `SimEvent` enum and its emission sites.
const EVENT_CRATE: &str = "sim";
/// Crates whose `MediumBackend`/`SimEvent` dispatches must stay
/// exhaustive.
const BACKEND_CRATES: [&str; 2] = ["sim", "experiments"];
/// The enum whose variants event-completeness audits.
const EVENT_ENUM: &str = "SimEvent";
/// The backend enum whose dispatches backend-exhaustive audits.
const BACKEND_ENUM: &str = "MediumBackend";
/// The sequential RNG type rng-discipline tracks.
const SEQ_RNG: &str = "StdRng";
/// Method names that consume a sequential RNG stream.
const DRAW_METHODS: [&str; 12] = [
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "sample_iter",
    "fill",
    "fill_bytes",
    "next_u32",
    "next_u64",
    "shuffle",
    "choose",
];
/// Identifiers banned outright by shard-safety (non-`Send` shared
/// ownership and single-thread interior mutability).
const SHARD_BANNED: [(&str, &str); 4] = [
    ("Rc", "`Rc` is shared ownership without `Send`"),
    (
        "RefCell",
        "`RefCell` is run-time interior mutability without `Sync`",
    ),
    ("Cell", "`Cell` is interior mutability without `Sync`"),
    (
        "UnsafeCell",
        "`UnsafeCell` is unsynchronized interior mutability",
    ),
];

/// Lints a set of library source files and applies suppressions.
pub fn lint_files(files: &[SourceFile]) -> LintOutcome {
    let mut outcome = LintOutcome {
        files_scanned: files.len(),
        ..LintOutcome::default()
    };
    let mut raw: Vec<Finding> = Vec::new();
    let mut decl: Option<EventDecl> = None;
    let mut constructed: Vec<String> = Vec::new();

    let mut lexed_files: Vec<(usize, Lexed)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        lexed_files.push((idx, lex(&file.text)));
    }

    for (idx, lexed) in &lexed_files {
        let file = &files[*idx];
        let model = FileModel::parse(lexed);
        check_panic_policy(file, lexed, &mut raw);
        if DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
            check_determinism(file, lexed, &mut raw);
        }
        check_float_eq(file, lexed, &mut raw);
        if UNIT_HYGIENE_CRATES.contains(&file.crate_name.as_str()) {
            check_unit_hygiene(file, lexed, &model, &mut raw);
        }
        if BACKEND_CRATES.contains(&file.crate_name.as_str()) {
            check_backend_exhaustive(file, lexed, &model, &mut raw);
            check_match_exhaustive(file, lexed, &model, &mut raw);
        }
        if SHARD_SAFETY_CRATES.contains(&file.crate_name.as_str()) {
            check_shard_safety(file, lexed, &model, &mut raw);
        }
        if RNG_DISCIPLINE_CRATES.contains(&file.crate_name.as_str()) {
            check_rng_discipline(file, lexed, &model, &mut raw);
        }
        check_directives(file, lexed, &mut raw);
        for d in &lexed.directives {
            if d.well_formed && d.has_reason && Rule::from_name(&d.rule).is_some() {
                *outcome.allow_directives.entry(d.rule.clone()).or_insert(0) += 1;
            }
        }
        if file.crate_name == EVENT_CRATE {
            if let Some(d) = find_event_decl(file, lexed, &model) {
                decl = Some(d);
            }
            collect_event_constructions(lexed, &mut constructed);
        }
    }

    if let Some(decl) = decl {
        for (variant, line, snippet) in &decl.variants {
            if !constructed.iter().any(|v| v == variant) {
                raw.push(Finding {
                    rule: Rule::EventCompleteness,
                    file: decl.file.clone(),
                    line: *line,
                    message: format!(
                        "`{EVENT_ENUM}::{variant}` is declared but never emitted by the simulator"
                    ),
                    snippet: snippet.clone(),
                });
            }
        }
    }

    // Apply suppressions: a well-formed, justified directive for the
    // finding's rule on the finding's line or up to two lines above.
    for finding in raw {
        let lexed = lexed_files
            .iter()
            .find(|(idx, _)| files[*idx].rel_path == finding.file)
            .map(|(_, l)| l);
        let suppressed = finding.rule != Rule::BadSuppression
            && lexed.is_some_and(|l| {
                l.directives.iter().any(|d| {
                    d.well_formed
                        && d.has_reason
                        && d.rule == finding.rule.name()
                        && d.line <= finding.line
                        && finding.line - d.line <= 2
                })
            });
        if suppressed {
            outcome.suppressed += 1;
        } else {
            outcome.findings.push(finding);
        }
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    outcome
}

/// The trimmed source line `line` (1-based) of `file`.
fn snippet_at(file: &SourceFile, line: u32) -> String {
    file.text
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

fn push(file: &SourceFile, rule: Rule, line: u32, message: String, out: &mut Vec<Finding>) {
    out.push(Finding {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: snippet_at(file, line),
    });
}

/// panic-policy: `.unwrap()`, `.expect(`, `panic!`, `todo!` outside
/// `#[cfg(test)]` regions. `assert!`/`debug_assert!`/`unreachable!` are
/// deliberately exempt — they state invariants rather than skip error
/// handling.
fn check_panic_policy(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let call = match t.text.as_str() {
            "unwrap" if prev_dot && next_paren => Some("`.unwrap()`"),
            "expect" if prev_dot && next_paren => Some("`.expect(..)`"),
            "panic" if next_bang => Some("`panic!`"),
            "todo" if next_bang => Some("`todo!`"),
            _ => None,
        };
        if let Some(call) = call {
            push(
                file,
                Rule::PanicPolicy,
                t.line,
                format!(
                    "{call} in library code — return a typed error (e.g. via comap-core::error) \
                     or justify the invariant with `simlint: allow(panic-policy)`"
                ),
                out,
            );
        }
    }
}

/// determinism: unordered containers, wall clocks and thread-local RNG
/// are banned from the crates whose runs must be bit-reproducible.
fn check_determinism(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let clock_now = |name: &str| {
            t.is_ident(name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        };
        let message = if t.is_ident("HashMap") || t.is_ident("HashSet") {
            Some(format!(
                "`{}` has a non-deterministic iteration order — use BTreeMap/BTreeSet \
                 or an index-keyed slab",
                t.text
            ))
        } else if clock_now("Instant") || clock_now("SystemTime") {
            Some(format!(
                "`{}::now()` reads the wall clock inside a deterministic simulation crate",
                t.text
            ))
        } else if t.is_ident("thread_rng") {
            Some("`thread_rng()` is thread-local and unseeded — thread the simulation RNG through instead".to_string())
        } else {
            None
        };
        if let Some(message) = message {
            push(file, Rule::Determinism, t.line, message, out);
        }
    }
}

/// float-eq: `==`/`!=` where either operand is a float literal.
fn check_float_eq(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let float_prev = i > 0 && toks[i - 1].kind == TokKind::Float;
        let float_next = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
        if float_prev || float_next {
            push(
                file,
                Rule::FloatEq,
                t.line,
                format!(
                    "`{}` against a float literal — compare with a tolerance, use a \
                     total-order comparison, or justify exactness with `simlint: allow(float-eq)`",
                    t.text
                ),
                out,
            );
        }
    }
}

/// Maps a suspicious parameter name to the newtype it should use.
fn unit_suggestion(name: &str) -> Option<&'static str> {
    if name == "dbm" || name.ends_with("_dbm") {
        Some("comap_radio::units::Dbm")
    } else if name == "db" || name.ends_with("_db") {
        Some("comap_radio::units::Db")
    } else if name == "mw" || name.ends_with("_mw") || name.contains("power") {
        Some("comap_radio::units::MilliWatts (or Dbm)")
    } else if name == "loss" || name.ends_with("_loss") {
        Some("comap_radio::units::Db")
    } else if name.starts_with("dist") || name.ends_with("_dist") {
        Some("comap_radio::units::Meters")
    } else if name == "sir" || name == "sinr" || name.ends_with("_sir") || name.ends_with("_sinr") {
        Some("comap_radio::units::Db")
    } else {
        None
    }
}

/// unit-hygiene: `pub fn` parameters whose names imply a physical unit
/// must not be raw `f64`. Runs on the item model's parsed signatures.
fn check_unit_hygiene(file: &SourceFile, lexed: &Lexed, model: &FileModel, out: &mut Vec<Finding>) {
    for f in model.functions() {
        if !f.is_pub || lexed.in_test[f.name_idx] {
            continue;
        }
        for p in &f.params {
            let ty = &model.tokens[p.ty.0..p.ty.1.min(model.tokens.len())];
            let is_raw_f64 = ty.len() == 1 && ty[0].is_ident("f64");
            if !is_raw_f64 {
                continue;
            }
            if let Some(suggestion) = unit_suggestion(&p.name) {
                push(
                    file,
                    Rule::UnitHygiene,
                    p.line,
                    format!(
                        "public parameter `{}: f64` carries a physical unit — take `{}` instead",
                        p.name, suggestion
                    ),
                    out,
                );
            }
        }
    }
}

/// backend-exhaustive: a `match` dispatching on the medium backend —
/// its scrutinee names a `*backend*` binding, or any arm pattern names
/// a `MediumBackend::` variant — must not use a wildcard arm. The two
/// backends are contractually bit-identical, so every dispatch site is
/// a place where a future backend needs an explicit decision.
fn check_backend_exhaustive(
    file: &SourceFile,
    lexed: &Lexed,
    model: &FileModel,
    out: &mut Vec<Finding>,
) {
    for m in &model.matches {
        if lexed.in_test[m.kw_idx] {
            continue;
        }
        let scrutinee_named = range_has_backend_ident(model, m.scrutinee);
        let arm_evidence = m
            .arms
            .iter()
            .any(|a| model.range_mentions_path(a.pat, BACKEND_ENUM));
        if !scrutinee_named && !arm_evidence {
            continue;
        }
        for arm in &m.arms {
            if model.arm_is_wildcard(arm) {
                push(
                    file,
                    Rule::BackendExhaustive,
                    arm.line,
                    "wildcard arm in a `MediumBackend` dispatch — name every backend \
                     so adding one forces a decision here, or justify with \
                     `simlint: allow(backend-exhaustive)`"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

fn range_has_backend_ident(model: &FileModel, range: Range) -> bool {
    let end = range.1.min(model.tokens.len());
    model.tokens[range.0..end]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text.to_ascii_lowercase().contains("backend"))
}

/// match-exhaustive: a `match` whose arms dispatch on `SimEvent`
/// variants must not use a wildcard arm — observers and dispatchers
/// must make a conscious decision when the event taxonomy grows. Type
/// evidence comes from the parsed arm patterns (`SimEvent::Variant`),
/// not from scrutinee-name heuristics.
fn check_match_exhaustive(
    file: &SourceFile,
    lexed: &Lexed,
    model: &FileModel,
    out: &mut Vec<Finding>,
) {
    for m in &model.matches {
        if lexed.in_test[m.kw_idx] {
            continue;
        }
        let arm_evidence = m
            .arms
            .iter()
            .any(|a| model.range_mentions_path(a.pat, EVENT_ENUM));
        if !arm_evidence {
            continue;
        }
        for arm in &m.arms {
            if model.arm_is_wildcard(arm) {
                push(
                    file,
                    Rule::MatchExhaustive,
                    arm.line,
                    format!(
                        "wildcard arm in a `match` over `{EVENT_ENUM}` — name every variant \
                         this site dispatches on (a new event must force a decision here), \
                         or justify the projection with `simlint: allow(match-exhaustive)`"
                    ),
                    out,
                );
            }
        }
    }
}

/// shard-safety: per-region parallel shards require `Send` state by
/// construction, so the crates the engine will shard ban non-`Send`
/// shared ownership and single-thread interior mutability outright:
/// `Rc`, `RefCell`, `Cell`, `UnsafeCell`, `static mut`,
/// `thread_local!`, and raw-pointer struct fields.
fn check_shard_safety(file: &SourceFile, lexed: &Lexed, model: &FileModel, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    // One finding per (line, name), so `Rc::new(RefCell::new(..))`
    // reports each banned type once even when repeated on the line.
    let mut seen: Vec<(u32, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if lexed.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            push(
                file,
                Rule::ShardSafety,
                t.line,
                "`static mut` is shared mutable state — a per-region shard cannot own it; \
                 pass state through the shard explicitly"
                    .to_string(),
                out,
            );
            continue;
        }
        if t.is_ident("thread_local") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            push(
                file,
                Rule::ShardSafety,
                t.line,
                "`thread_local!` pins state to a worker thread — shards migrate between \
                 threads, so thread-local state breaks determinism"
                    .to_string(),
                out,
            );
            continue;
        }
        for (name, why) in SHARD_BANNED {
            if t.is_ident(name) && !seen.contains(&(t.line, name)) {
                seen.push((t.line, name));
                push(
                    file,
                    Rule::ShardSafety,
                    t.line,
                    format!(
                        "{why} — shard state must be `Send` by construction; use owned \
                         state, `Arc<Mutex<..>>`, or restructure (or justify with \
                         `simlint: allow(shard-safety)`)"
                    ),
                    out,
                );
            }
        }
    }
    // Raw-pointer fields: a struct holding `*const`/`*mut` cannot be
    // `Send` without an unsafe impl the rule refuses to assume.
    for s in model.structs() {
        for field in &s.fields {
            let Some(first) = model.tokens.get(field.ty.0) else {
                continue;
            };
            if first.is_punct("*") && !lexed.in_test[field.ty.0] {
                push(
                    file,
                    Rule::ShardSafety,
                    field.line,
                    format!(
                        "raw-pointer field in `{}` — `*const`/`*mut` fields make the struct \
                         non-`Send`; hold an index or an owned handle instead",
                        s.name
                    ),
                    out,
                );
            }
        }
    }
}

/// Whether a function is a constructor by naming convention — one-time
/// setup draws (seed derivation) are not hot-path sequential draws, and
/// the sharded engine re-derives per-shard seeds at construction.
fn is_constructor(name: &str) -> bool {
    name == "new" || name.starts_with("new_") || name.starts_with("with_")
}

/// rng-discipline: sequential `StdRng` draws create a data dependence
/// across every consumer of the stream, which (a) serializes the hot
/// path and (b) cannot be split across region shards without changing
/// results. Outside constructors and tests, hot-path code must use the
/// counter-based keyed streams (`comap_radio::stream`'s
/// `(seed, ident, counter)` pattern, DESIGN.md §11). The migration is
/// complete: the suppression budget is 0, so any new sequential draw
/// is a hard failure (see `--max-allows`).
fn check_rng_discipline(
    file: &SourceFile,
    lexed: &Lexed,
    model: &FileModel,
    out: &mut Vec<Finding>,
) {
    // Struct fields of the sequential RNG type, e.g. `rng: StdRng`.
    let mut rng_fields: Vec<String> = Vec::new();
    for s in model.structs() {
        for field in &s.fields {
            if let Some(name) = &field.name {
                if model.range_mentions_seq_rng(field.ty) && !rng_fields.contains(name) {
                    rng_fields.push(name.clone());
                }
            }
        }
    }
    for f in model.functions() {
        if lexed.in_test[f.name_idx] || is_constructor(&f.name) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let locals = rng_locals(model, f, body);
        scan_body_for_draws(file, lexed, model, body, &rng_fields, &locals, out);
    }
}

impl FileModel<'_> {
    /// Whether `range` mentions the tracked sequential RNG type.
    fn range_mentions_seq_rng(&self, range: Range) -> bool {
        let end = range.1.min(self.tokens.len());
        self.tokens[range.0..end]
            .iter()
            .any(|t| t.is_ident(SEQ_RNG))
    }
}

/// Names of `StdRng`-typed bindings in scope inside `f`'s body:
/// parameters with an `StdRng` type and `let` bindings whose type or
/// initializer mentions `StdRng`.
fn rng_locals(model: &FileModel, f: &FnItem, body: (usize, usize)) -> Vec<String> {
    let mut locals: Vec<String> = Vec::new();
    for p in &f.params {
        if model.range_mentions_seq_rng(p.ty) && !locals.contains(&p.name) {
            locals.push(p.name.clone());
        }
    }
    for b in model.let_bindings(body) {
        if (model.range_mentions_seq_rng(b.ty) || model.range_mentions_seq_rng(b.init))
            && !locals.contains(&b.name)
        {
            locals.push(b.name);
        }
    }
    locals
}

fn scan_body_for_draws(
    file: &SourceFile,
    lexed: &Lexed,
    model: &FileModel,
    body: (usize, usize),
    rng_fields: &[String],
    locals: &[String],
    out: &mut Vec<Finding>,
) {
    let toks = model.tokens;
    let end = body.1.min(toks.len());
    let mut i = body.0 + 1;
    while i < end {
        if lexed.in_test[i] {
            i += 1;
            continue;
        }
        // `self.<rng-field>` …
        if toks[i].is_ident("self")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| rng_fields.iter().any(|f| t.is_ident(f)))
        {
            let field_idx = i + 2;
            if let Some(finding_line) = rng_use_after(model, i, field_idx) {
                push_rng_finding(file, finding_line, &toks[field_idx].text, out);
            }
            i = field_idx + 1;
            continue;
        }
        // Bare local rng binding (not a path segment or field access).
        if toks[i].kind == TokKind::Ident
            && locals.iter().any(|l| toks[i].is_ident(l))
            && !(i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("::")))
        {
            if let Some(finding_line) = rng_use_after(model, i, i) {
                push_rng_finding(file, finding_line, &toks[i].text, out);
            }
        }
        i += 1;
    }
}

/// Decides whether the rng expression whose *first* token sits at
/// `start` (for `&mut` lookbehind) and whose last token sits at `last`
/// is a sequential use: a draw-method call, or a `&mut` borrow handing
/// the stream to a callee. Returns the line to report.
fn rng_use_after(model: &FileModel, start: usize, last: usize) -> Option<u32> {
    let toks = model.tokens;
    // `&mut <rng>` — the stream escapes into a callee (or a reborrow).
    if start >= 2 && toks[start - 1].is_ident("mut") && toks[start - 2].is_punct("&") {
        return Some(toks[last].line);
    }
    // `<rng>.method(..)` / `<rng>.method::<T>(..)` with a draw method.
    if toks.get(last + 1).is_some_and(|t| t.is_punct("."))
        && toks
            .get(last + 2)
            .is_some_and(|t| DRAW_METHODS.iter().any(|m| t.is_ident(m)))
    {
        let m = last + 2;
        let call = toks.get(m + 1).is_some_and(|t| t.is_punct("("))
            || (toks.get(m + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(m + 2).is_some_and(|t| t.is_punct("<")));
        if call {
            return Some(toks[m].line);
        }
    }
    None
}

fn push_rng_finding(file: &SourceFile, line: u32, binding: &str, out: &mut Vec<Finding>) {
    push(
        file,
        Rule::RngDiscipline,
        line,
        format!(
            "sequential `{SEQ_RNG}` draw through `{binding}` in hot-path simulation code — \
             use a counter-based keyed stream (`comap_radio::stream`, DESIGN.md §11) so \
             shards never share a mutable RNG; the migration is complete and the \
             suppression budget is 0, so new sequential draws are hard failures"
        ),
        out,
    );
}

/// bad-suppression: every `simlint:` comment must be a well-formed
/// `allow(<known-rule>)` with a justification.
fn check_directives(file: &SourceFile, lexed: &Lexed, out: &mut Vec<Finding>) {
    for d in &lexed.directives {
        let message = if !d.well_formed {
            Some(
                "malformed `simlint:` directive — expected `simlint: allow(<rule>) — <reason>`"
                    .to_string(),
            )
        } else if Rule::from_name(&d.rule).is_none() {
            Some(format!(
                "`simlint: allow({})` names an unknown rule",
                d.rule
            ))
        } else if !d.has_reason {
            Some(format!(
                "`simlint: allow({})` without a justification — state the invariant that makes this safe",
                d.rule
            ))
        } else {
            None
        };
        if let Some(message) = message {
            push(file, Rule::BadSuppression, d.line, message, out);
        }
    }
}

/// The parsed `SimEvent` declaration.
#[derive(Debug)]
struct EventDecl {
    file: String,
    /// `(variant, line, snippet)` triples.
    variants: Vec<(String, u32, String)>,
}

/// Finds `enum SimEvent { ... }` in `file` via the item model.
fn find_event_decl(file: &SourceFile, lexed: &Lexed, model: &FileModel) -> Option<EventDecl> {
    let decl = model
        .enums()
        .into_iter()
        .find(|e| e.name == EVENT_ENUM && !lexed.in_test[e.kw_idx])?;
    if decl.variants.is_empty() {
        return None;
    }
    Some(EventDecl {
        file: file.rel_path.clone(),
        variants: decl
            .variants
            .iter()
            .map(|(name, line)| (name.clone(), *line, snippet_at(file, *line)))
            .collect(),
    })
}

/// Collects `SimEvent::Variant` *construction* sites (match arms and
/// other patterns do not count as emissions).
fn collect_event_constructions(lexed: &Lexed, out: &mut Vec<String>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.in_test[i]
            || !toks[i].is_ident(EVENT_ENUM)
            || !toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        {
            continue;
        }
        let Some(variant) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut j = i + 3;
        let mut wildcard_body = false;
        if toks
            .get(j)
            .is_some_and(|t| t.is_punct("{") || t.is_punct("("))
        {
            let open = j;
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // `Variant { .. }` is always a pattern.
            wildcard_body = j == open + 2 && toks.get(open + 1).is_some_and(|t| t.is_punct(".."));
            j += 1;
        }
        let next = toks.get(j);
        let is_pattern = wildcard_body
            || matches!(next, Some(n) if n.is_punct("=>") || n.is_punct("|") || n.is_punct("="));
        if !is_pattern {
            out.push(variant.text.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel_path: rel.to_string(),
            crate_name: crate_name.to_string(),
            text: text.to_string(),
        }
    }

    fn rules_of(outcome: &LintOutcome) -> Vec<(Rule, u32)> {
        outcome.findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn panic_policy_flags_and_suppresses() {
        let src = "fn a() { x.unwrap(); }\n\
                   // simlint: allow(panic-policy) — invariant: y is always present\n\
                   fn b() { y.expect(\"present\"); }\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::PanicPolicy, 1)]);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.allow_directives.get("panic-policy"), Some(&1));
    }

    #[test]
    fn determinism_scoped_to_sim_mac_core() {
        let src = "use std::collections::HashMap;\n";
        let flagged = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&flagged), vec![(Rule::Determinism, 1)]);
        let unflagged = lint_files(&[file("experiments", "crates/experiments/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn float_eq_needs_float_literal() {
        let src = "fn f(x: f64, n: u32) { if x == 0.0 {} if n == 0 {} }\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::FloatEq, 1)]);
    }

    #[test]
    fn unit_hygiene_flags_public_f64_units_only() {
        let src = "pub fn set(power: f64) {}\n\
                   fn internal(power: f64) {}\n\
                   pub fn typed(power: Dbm) {}\n\
                   pub fn unrelated(alpha: f64) {}\n";
        let out = lint_files(&[file("radio", "crates/radio/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::UnitHygiene, 1)]);
    }

    #[test]
    fn unit_hygiene_sees_params_behind_generics() {
        let src = "pub fn g<F: Fn(u32) -> u64>(cb: F, dist: f64) {}\n";
        let out = lint_files(&[file("radio", "crates/radio/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::UnitHygiene, 1)]);
    }

    #[test]
    fn event_completeness_counts_constructions_not_patterns() {
        let decl = "pub enum SimEvent {\n    Used { n: u32 },\n    Orphan { n: u32 },\n    BareOrphan,\n}\n";
        let emit = "fn e() -> SimEvent { SimEvent::Used { n: 0 } }\n\
                    fn m(e: &SimEvent) -> u32 { match e { SimEvent::Orphan { .. } => 1, _ => 0 } }\n";
        let out = lint_files(&[
            file("sim", "crates/sim/src/observe.rs", decl),
            file("sim", "crates/sim/src/mac.rs", emit),
        ]);
        let names: Vec<&str> = out
            .findings
            .iter()
            .filter(|f| f.rule == Rule::EventCompleteness)
            .map(|f| f.message.split('`').nth(1).unwrap_or(""))
            .collect();
        assert_eq!(names, vec!["SimEvent::Orphan", "SimEvent::BareOrphan"]);
    }

    #[test]
    fn backend_exhaustive_flags_wildcards_in_scope_only() {
        let src = "fn f(backend: MediumBackend) -> u32 {\n\
                   \x20   match backend {\n\
                   \x20       MediumBackend::Culled => 1,\n\
                   \x20       _ => 0,\n\
                   \x20   }\n\
                   }\n\
                   fn g(n: u32) -> u32 { match n { 0 => 1, _ => 0 } }\n";
        let flagged = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&flagged), vec![(Rule::BackendExhaustive, 4)]);
        let unflagged = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn backend_exhaustive_uses_arm_evidence_without_scrutinee_name() {
        let src = "fn f(m: &M) -> u32 {\n\
                   \x20   match m.pick() {\n\
                   \x20       MediumBackend::Culled => 1,\n\
                   \x20       _ => 0,\n\
                   \x20   }\n\
                   }\n";
        let out = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::BackendExhaustive, 4)]);
    }

    #[test]
    fn match_exhaustive_flags_event_projections() {
        let src = "fn f(e: &SimEvent) -> u32 {\n\
                   \x20   match *e {\n\
                   \x20       SimEvent::TxBegin { .. } => 1,\n\
                   \x20       _ => 0,\n\
                   \x20   }\n\
                   }\n";
        let flagged = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&flagged), vec![(Rule::MatchExhaustive, 4)]);
        // Out-of-scope crates are not audited.
        let unflagged = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn shard_safety_flags_banned_state() {
        let src = "use std::rc::Rc;\n\
                   static mut COUNTER: u32 = 0;\n\
                   pub struct S { raw: *const u8 }\n";
        let out = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(
            rules_of(&out),
            vec![
                (Rule::ShardSafety, 1),
                (Rule::ShardSafety, 2),
                (Rule::ShardSafety, 3)
            ]
        );
        // The experiments crate may use whatever it likes.
        let unflagged = lint_files(&[file("experiments", "crates/experiments/src/x.rs", src)]);
        assert!(unflagged.findings.is_empty());
    }

    #[test]
    fn rng_discipline_exempts_constructors_and_tests() {
        let src = "use rand::rngs::StdRng;\n\
                   pub struct E { rng: StdRng }\n\
                   impl E {\n\
                   \x20   pub fn new(mut rng: StdRng) -> Self { let s = rng.gen::<u64>(); E { rng } }\n\
                   \x20   pub fn draw(&mut self) -> f64 { self.rng.gen::<f64>() }\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { let mut r = StdRng::seed_from_u64(1); r.gen::<u64>(); } }\n";
        let out = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(rules_of(&out), vec![(Rule::RngDiscipline, 5)]);
    }

    #[test]
    fn rng_discipline_tracks_mut_borrows_and_locals() {
        let src = "use rand::rngs::StdRng;\n\
                   pub struct E { rng: StdRng, seed: u64 }\n\
                   impl E {\n\
                   \x20   pub fn fade(&mut self) -> f64 { helper(&mut self.rng) }\n\
                   \x20   pub fn local(&self) -> f64 {\n\
                   \x20       let mut r = StdRng::seed_from_u64(self.seed);\n\
                   \x20       r.gen::<f64>()\n\
                   \x20   }\n\
                   }\n";
        let out = lint_files(&[file("sim", "crates/sim/src/x.rs", src)]);
        assert_eq!(
            rules_of(&out),
            vec![(Rule::RngDiscipline, 4), (Rule::RngDiscipline, 7)]
        );
    }

    #[test]
    fn bad_suppressions_are_reported() {
        let src = "// simlint: allow(no-such-rule) — reason text\n\
                   // simlint: allow(float-eq)\n\
                   // simlint: deny(everything)\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert_eq!(
            rules_of(&out),
            vec![
                (Rule::BadSuppression, 1),
                (Rule::BadSuppression, 2),
                (Rule::BadSuppression, 3)
            ]
        );
        // None of the bad directives count toward the allow budget.
        assert!(out.allow_directives.is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); assert!(1.0 == 1.0); }\n}\n";
        let out = lint_files(&[file("core", "crates/core/src/x.rs", src)]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }
}
