//! # comap-lint — `simlint`, the CO-MAP workspace linter
//!
//! A self-contained, offline static-analysis pass enforcing the project
//! invariants the Rust compiler cannot see. The vendor tree has no
//! `syn`, so analysis runs on a hand-rolled token scanner ([`lexer`])
//! plus a brace-matched token-tree and item model ([`tree`]) — fn
//! signatures, struct fields, enum variants, `use` paths and parsed
//! `match` arms — precise enough for the rules below, and
//! dependency-free so the linter builds even when its lint subjects do
//! not.
//!
//! ## Rules
//!
//! | rule | scope | invariant protected |
//! |------|-------|---------------------|
//! | `unit-hygiene` | `comap-radio`, `comap-sim` | paper eqs. (1)–(4) are only meaningful with consistent units: public `fn` parameters named like powers/ratios/distances must use the `Dbm`/`Db`/`MilliWatts`/`Meters` newtypes, never raw `f64` |
//! | `determinism` | `comap-sim`, `comap-mac`, `comap-core` | the bit-determinism guarantee of the power ledger (PR 1) and the non-perturbation guarantee of the observer layer (PR 3): no `HashMap`/`HashSet`, no `Instant::now`/`SystemTime::now`, no `thread_rng` |
//! | `panic-policy` | all library code | library crates must not abort mid-run: no `.unwrap()`, `.expect(..)`, `panic!`, `todo!` outside `#[cfg(test)]`, tests, benches and binaries (`assert!` and `debug_assert!` remain legal — they state invariants) |
//! | `event-completeness` | `comap-sim` | every `SimEvent` variant must have ≥ 1 emission (construction) site in the simulator, so the observability schema never silently rots |
//! | `float-eq` | all library code | `==`/`!=` against float literals is almost always a latent bug in Bianchi-derived math; exact comparisons must be justified |
//! | `backend-exhaustive` | `comap-sim`, `comap-experiments` | the culled and exhaustive medium backends are contractually bit-identical (PR 5); every `match` on a `MediumBackend` must name each backend, so adding one forces a reviewed decision at every dispatch site instead of falling into a `_` arm |
//! | `shard-safety` | `comap-sim`, `comap-mac`, `comap-core`, `comap-radio` | the sharded parallel engine (ROADMAP item 1) requires `Send` state by construction: no `Rc`, `RefCell`, `Cell`, `UnsafeCell`, `static mut`, `thread_local!`, or raw-pointer struct fields |
//! | `rng-discipline` | `comap-sim`, `comap-mac`, `comap-core` | region shards cannot share a sequential RNG stream without changing results: hot-path `StdRng` draws (outside constructors and tests) must migrate to the counter-based keyed streams of PR 7; pre-existing sites are a shrinking allowlist gated by `--max-allows` |
//! | `match-exhaustive` | `comap-sim`, `comap-experiments` | observers and dispatchers must decide when the event taxonomy grows: no `_` wildcard arm in a `match` whose arms dispatch on `SimEvent` variants |
//! | `suppression-budget` | per `--max-allows` flag | suppressions ratchet down, never up: the per-rule count of `simlint: allow` directives plus baseline entries must not exceed the budget |
//!
//! ## Suppressions
//!
//! Any finding can be silenced at its site with
//!
//! ```text
//! // simlint: allow(<rule>) — <reason>
//! ```
//!
//! on the same line or within the two lines above. The reason is
//! mandatory; bare or malformed directives are reported as
//! `bad-suppression`. Whole findings can also be grandfathered in the
//! checked-in `simlint.baseline` at the workspace root (stamped with
//! `schema_version` and empty of entries at HEAD — the tree is clean).
//! Unstamped baselines are rejected with a typed error.
//!
//! ## CLI
//!
//! ```text
//! simlint --workspace [--json <path>] [--baseline <path>] [--write-baseline]
//!         [--max-allows <rule>=<n>]...
//! ```
//!
//! Exit code 0 when no unsuppressed, non-baselined finding remains and
//! every `--max-allows` budget holds; 1 otherwise; 2 on usage or I/O
//! errors (including an unstamped baseline). The `--json` report is
//! stamped with `schema_version` and carries per-rule suppression
//! counts. See `scripts/check.sh` and CI for the gating invocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod tree;
pub mod workspace;

pub use rules::{lint_files, Finding, LintOutcome, Rule, SourceFile};
pub use workspace::{collect_sources, discover_workspace, load_source};
