//! `simlint` — the CO-MAP workspace linter CLI.
//!
//! See the `comap_lint` crate docs for the rule set. This binary is the
//! CI gate: it exits non-zero whenever an unsuppressed, non-baselined
//! finding exists anywhere in the workspace's library code, or when a
//! `--max-allows` suppression budget is exceeded.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use comap_lint::report::{
    apply_baseline, check_budgets, load_baseline, parse_budget, render_baseline, render_human,
    render_json, tally_allows, Budget,
};
use comap_lint::workspace::{collect_sources, crate_of, discover_workspace, load_source};
use comap_lint::{lint_files, SourceFile};

const USAGE: &str = "\
usage: simlint [options] [paths...]

options:
  --workspace            lint every library source in the workspace
  --json <path>          also write a schema-stamped JSON report to <path>
  --baseline <path>      baseline file (default: <root>/simlint.baseline)
  --write-baseline       rewrite the baseline from current findings and exit 0
  --max-allows <r>=<n>   fail when rule <r> has more than <n> suppressions
                         (allow directives + baseline entries); repeatable
  --quiet                print only the summary and allows lines
  -h, --help             show this help

exit status: 0 clean, 1 findings or budget exceeded, 2 usage or I/O error
(including an unstamped or wrong-version baseline)";

struct Options {
    workspace: bool,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    max_allows: Vec<Budget>,
    quiet: bool,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: None,
        baseline: None,
        write_baseline: false,
        max_allows: Vec::new(),
        quiet: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                opts.json = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let path = it.next().ok_or("--baseline requires a path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--max-allows" => {
                let spec = it.next().ok_or("--max-allows requires <rule>=<n>")?;
                let budget = parse_budget(spec)
                    .ok_or_else(|| format!("--max-allows: `{spec}` is not <known-rule>=<count>"))?;
                opts.max_allows.push(budget);
            }
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag: {flag}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err("nothing to lint: pass --workspace or explicit paths".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<bool, String> {
    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = discover_workspace(&cwd)
        .ok_or("no workspace root (Cargo.toml with [workspace]) above the current directory")?;

    let mut files: Vec<SourceFile> = Vec::new();
    if opts.workspace {
        files = collect_sources(&root).map_err(|e| format!("walking workspace: {e}"))?;
    }
    for path in &opts.paths {
        let abs = if path.is_absolute() {
            path.clone()
        } else {
            cwd.join(path)
        };
        let rel_guess = abs
            .strip_prefix(&root)
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .unwrap_or_else(|_| abs.to_string_lossy().to_string());
        let file = load_source(&root, &abs, &crate_of(&rel_guess))
            .map_err(|e| format!("reading {}: {e}", abs.display()))?;
        files.push(file);
    }

    let mut outcome = lint_files(&files);

    if opts.write_baseline {
        let path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| root.join("simlint.baseline"));
        fs::write(&path, render_baseline(&outcome.findings))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "simlint: wrote {} finding(s) to {}",
            outcome.findings.len(),
            path.display()
        );
        return Ok(true);
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("simlint.baseline"));
    let baseline = if baseline_path.is_file() {
        load_baseline(&baseline_path).map_err(|e| format!("{}: {e}", baseline_path.display()))?
    } else {
        Vec::new()
    };
    let baselined = apply_baseline(&mut outcome, &baseline);

    // Budget findings land after baseline application: a grown
    // allowlist cannot be grandfathered away.
    let tally = tally_allows(&outcome, &baseline);
    outcome
        .findings
        .extend(check_budgets(&tally, &opts.max_allows));

    if let Some(json_path) = &opts.json {
        if let Some(parent) = json_path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = fs::create_dir_all(parent);
            }
        }
        fs::write(
            json_path,
            render_json(&outcome, baselined, &tally, &opts.max_allows),
        )
        .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }

    let text = render_human(&outcome, baselined, &tally);
    if opts.quiet {
        // The last two lines are the summary and the allows census.
        for line in text.lines().rev().take(2).collect::<Vec<_>>().iter().rev() {
            println!("{line}");
        }
    } else {
        print!("{text}");
    }
    Ok(outcome.findings.is_empty())
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("simlint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("simlint: {msg}");
            ExitCode::from(2)
        }
    }
}
