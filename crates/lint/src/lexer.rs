//! A hand-rolled Rust token scanner.
//!
//! The vendor tree has no `syn`, so simlint lexes source files itself.
//! The scanner understands exactly as much Rust as the rules need:
//! identifiers, integer vs. float literals, string/char/lifetime
//! disambiguation, nested block comments, raw strings, and multi-char
//! operators (`::`, `==`, `=>`, ...). It also extracts
//! `// simlint: allow(<rule>) — <reason>` suppression directives from
//! comments and computes which tokens sit inside `#[cfg(test)]`-gated
//! items, so rules can scope themselves to non-test library code.

/// The coarse kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// An integer literal (including hex/octal/binary).
    Int,
    /// A floating-point literal (`0.0`, `1.`, `1e-9`, `2.5f64`).
    Float,
    /// A string, byte-string or raw-string literal.
    Str,
    /// A character or byte literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation, possibly multi-character (`::`, `==`, `=>`).
    Punct,
}

/// One scanned token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` when this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` when this is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// A `simlint:` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line of the comment (its last line, for block comments).
    pub line: u32,
    /// Rule name inside `allow(...)`, verbatim.
    pub rule: String,
    /// Whether a non-empty justification follows the `allow(...)`.
    pub has_reason: bool,
    /// Whether the directive parsed as `allow(<rule>)` at all.
    pub well_formed: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order (comments and whitespace stripped).
    pub tokens: Vec<Token>,
    /// All `simlint:` directives found in comments.
    pub directives: Vec<Directive>,
    /// `in_test[i]` is `true` when `tokens[i]` is inside a
    /// `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: [&str; 23] = [
    "..=", "<<=", ">>=", "..", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=",
];

/// Scans `src` into tokens, directives and test-region marks.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut directives = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        // Non-ASCII only appears inside comments and strings in the code
        // we lint; anywhere else, skip the whole character so the slices
        // below always land on a UTF-8 boundary.
        if bytes[i] >= 0x80 {
            i += src[i..].chars().next().map_or(1, char::len_utf8);
            continue;
        }
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also doc comments).
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            scan_directive(&src[start..i], line, &mut directives);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1u32;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            // Attach to the closing line so "line above" suppression works
            // for block comments too.
            scan_directive(&src[start..i], line, &mut directives);
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, b"..", br#"..“#.
        if c == 'r' || c == 'b' {
            if let Some((len, newlines)) = raw_or_byte_string_len(&bytes[i..]) {
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::from("\"raw\""),
                    line,
                });
                line += newlines;
                i += len;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            tokens.push(Token {
                kind: TokKind::Str,
                text: String::from("\"str\""),
                line: start_line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            if bytes.get(i + 1) == Some(&b'\\') {
                // Escaped char literal: skip to the closing quote.
                i += 2;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1;
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::from("'c'"),
                    line,
                });
            } else if bytes.get(i + 2) == Some(&b'\'') {
                i += 3;
                tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::from("'c'"),
                    line,
                });
            } else {
                // Lifetime: consume ident chars.
                let start = i;
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Number literal.
        if bytes[i].is_ascii_digit() {
            let (len, kind) = number_len(&bytes[i..]);
            tokens.push(Token {
                kind,
                text: src[i..i + len].to_string(),
                line,
            });
            i += len;
            continue;
        }
        // Punctuation, longest match first.
        let rest = &src[i..];
        let mut matched = None;
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                matched = Some(op);
                break;
            }
        }
        if let Some(op) = matched {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: op.to_string(),
                line,
            });
            i += op.len();
        } else {
            tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += c.len_utf8();
        }
    }

    let in_test = mark_test_regions(&tokens);
    Lexed {
        tokens,
        directives,
        in_test,
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphanumeric()
}

/// Length and newline count of a raw/byte string starting at `bytes[0]`,
/// or `None` when the prefix is not actually a string.
fn raw_or_byte_string_len(bytes: &[u8]) -> Option<(usize, u32)> {
    let mut j = 0usize;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    if !raw && j == 0 {
        // Plain `"` is handled by the caller.
        return None;
    }
    j += 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        if !raw && bytes[j] == b'\\' {
            j += 2;
            continue;
        }
        if bytes[j] == b'\n' {
            newlines += 1;
        }
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return Some((j + 1 + hashes, newlines));
            }
        }
        j += 1;
    }
    Some((j, newlines))
}

/// Length and kind (int vs. float) of a number literal at `bytes[0]`.
fn number_len(bytes: &[u8]) -> (usize, TokKind) {
    let mut j = 0usize;
    if bytes.len() > 1 && bytes[0] == b'0' && matches!(bytes[1], b'x' | b'o' | b'b') {
        j = 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j, TokKind::Int);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    let mut float = false;
    // Fractional part: a `.` not starting a range (`..`) or a method call.
    if j < bytes.len() && bytes[j] == b'.' {
        let next = bytes.get(j + 1).copied();
        let starts_ident = next.is_some_and(is_ident_start);
        let starts_range = next == Some(b'.');
        if !starts_ident && !starts_range {
            float = true;
            j += 1;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < bytes.len() && matches!(bytes[j], b'e' | b'E') {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some(b'+') | Some(b'-')) {
            k += 1;
        }
        if bytes.get(k).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix (`f64`, `u32`, ...).
    let suffix_start = j;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    if !float && bytes[suffix_start..j].starts_with(b"f") {
        float = true;
    }
    (j, if float { TokKind::Float } else { TokKind::Int })
}

/// Extracts a `simlint:` directive from one comment's text, if present.
///
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are ignored: they document
/// APIs — and this tool's own docs quote the directive syntax — so a
/// suppression must be a plain comment at the offending site.
fn scan_directive(comment: &str, line: u32, out: &mut Vec<Directive>) {
    let is_doc = comment.starts_with("///")
        || comment.starts_with("//!")
        || comment.starts_with("/**")
        || comment.starts_with("/*!");
    if is_doc {
        return;
    }
    let Some(pos) = comment.find("simlint:") else {
        return;
    };
    let body = comment[pos + "simlint:".len()..].trim_start();
    let Some(args) = body.strip_prefix("allow(") else {
        out.push(Directive {
            line,
            rule: String::new(),
            has_reason: false,
            well_formed: false,
        });
        return;
    };
    let Some(close) = args.find(')') else {
        out.push(Directive {
            line,
            rule: String::new(),
            has_reason: false,
            well_formed: false,
        });
        return;
    };
    let rule = args[..close].trim().to_string();
    // A justification must follow: anything with at least a few
    // non-separator characters after the closing parenthesis.
    let reason = args[close + 1..]
        .trim_start_matches(['—', '-', '–', ':', ' ', '\t'])
        .trim();
    out.push(Directive {
        line,
        rule,
        has_reason: reason.chars().filter(|c| !c.is_whitespace()).count() >= 3,
        well_formed: true,
    });
}

/// Marks every token inside a `#[cfg(test)]`-gated item.
///
/// After a `#[cfg(test)]` attribute (including `cfg(all(test, ...))`),
/// the gated item extends through any further attributes and then either
/// to the first top-level `;` (bodyless items such as `use`) or to the
/// matching `}` of the first `{`.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut marked = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = cfg_test_attr_end(tokens, i) {
            let end = item_end(tokens, after_attr);
            for m in marked.iter_mut().take(end.min(tokens.len())).skip(i) {
                *m = true;
            }
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    marked
}

/// When `tokens[i..]` starts a `#[cfg(test)]`-style attribute, returns
/// the index just past its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !(tokens.get(i)?.is_punct("#")
        && tokens.get(i + 1)?.is_punct("[")
        && tokens.get(i + 2)?.is_ident("cfg")
        && tokens.get(i + 3)?.is_punct("("))
    {
        return None;
    }
    let mut depth = 1i32;
    let mut j = i + 4;
    let mut saw_test = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
        } else if depth == 1 && t.is_ident("not") {
            // `#[cfg(not(test))]` gates *non*-test code: skip its argument.
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct("(")) {
                let mut d = 1i32;
                k += 1;
                while k < tokens.len() && d > 0 {
                    if tokens[k].is_punct("(") {
                        d += 1;
                    } else if tokens[k].is_punct(")") {
                        d -= 1;
                    }
                    k += 1;
                }
                j = k;
                continue;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    if saw_test && tokens.get(j).is_some_and(|t| t.is_punct("]")) {
        Some(j + 1)
    } else {
        None
    }
}

/// Index just past the item starting at `tokens[i]` (attributes allowed).
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip further attributes.
    while tokens.get(i).is_some_and(|t| t.is_punct("#"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let mut depth = 0i32;
        while i < tokens.len() {
            if tokens[i].is_punct("[") {
                depth += 1;
            } else if tokens[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // Scan to the first top-level `;` or through the first brace block.
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(";") {
            return i + 1;
        }
        if t.is_punct("{") {
            let mut depth = 0i32;
            while i < tokens.len() {
                if tokens[i].is_punct("{") {
                    depth += 1;
                } else if tokens[i].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_fields() {
        let toks = kinds("x.0 == 0; y == 0.0; z == 1e-9; w == 1.0f64; r = 1..4;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(floats, vec!["0.0", "1e-9", "1.0f64"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Char, "'c'".to_string())));
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let toks = kinds("// panic!()\n/* unwrap() */ let s = \"todo!()\";");
        assert!(!toks.iter().any(|(_, s)| s.contains("panic")));
        assert!(!toks.iter().any(|(_, s)| s.contains("unwrap")));
        assert!(toks.iter().any(|(_, s)| s == "let"));
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let toks = kinds("let s = r#\"inner \" quote\"#; let t = 3;");
        assert!(toks.iter().any(|(_, s)| s == "t"));
    }

    #[test]
    fn directive_parses_with_reason() {
        let lexed = lex("// simlint: allow(panic-policy) — documented invariant\nlet x = 1;");
        assert_eq!(lexed.directives.len(), 1);
        let d = &lexed.directives[0];
        assert!(d.well_formed && d.has_reason);
        assert_eq!(d.rule, "panic-policy");
        assert_eq!(d.line, 1);
    }

    #[test]
    fn directive_without_reason_is_flagged() {
        let lexed = lex("// simlint: allow(float-eq)\nlet x = 1;");
        assert!(lexed.directives[0].well_formed);
        assert!(!lexed.directives[0].has_reason);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let lexed = lex(
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn also_live() {}",
        );
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(lexed.in_test[unwrap_idx]);
        let live_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("also_live"))
            .expect("also_live token");
        assert!(!lexed.in_test[live_idx]);
    }

    #[test]
    fn cfg_test_use_does_not_swallow_following_items() {
        let lexed = lex("#[cfg(test)]\nuse foo::bar;\nfn live() { x.unwrap(); }");
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(!lexed.in_test[unwrap_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lexed = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }");
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(!lexed.in_test[unwrap_idx]);
    }
}
