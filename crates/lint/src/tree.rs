//! Brace-matched token trees and the item-level source model.
//!
//! The PR-4 rules ran directly on the flat token stream, which is
//! precise enough for "this identifier is banned" but not for anything
//! structural: match arms, function signatures, struct fields. This
//! module adds the missing layer without pulling in `syn` (the vendor
//! tree has none): [`build`] pairs every `(`/`[`/`{` with its closing
//! delimiter, and [`FileModel::parse`] resolves the item skeleton on
//! top — `fn` signatures (name, visibility, parsed parameter list,
//! body range), `impl` and `mod` nesting, `struct` fields, `enum`
//! variants, `use` paths, every `match` expression with its parsed
//! arms, and an on-demand per-function `let`-binding scan.
//!
//! The model is deliberately shallow: it resolves exactly as much
//! structure as the rules in [`crate::rules`] consume, and it is
//! tolerant — unbalanced delimiters close at end-of-file instead of
//! failing, so a half-edited file still lints.

use crate::lexer::{Lexed, TokKind, Token};

/// One delimiter family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `(` … `)`
    Paren,
    /// `[` … `]`
    Bracket,
    /// `{` … `}`
    Brace,
}

impl Delim {
    fn of_open(text: &str) -> Option<Delim> {
        Some(match text {
            "(" => Delim::Paren,
            "[" => Delim::Bracket,
            "{" => Delim::Brace,
            _ => return None,
        })
    }

    fn of_close(text: &str) -> Option<Delim> {
        Some(match text {
            ")" => Delim::Paren,
            "]" => Delim::Bracket,
            "}" => Delim::Brace,
            _ => return None,
        })
    }
}

/// One node of the token tree: a plain token or a delimited group.
#[derive(Debug)]
pub enum Tree {
    /// Index of a non-delimiter token.
    Leaf(usize),
    /// A delimited group; `open`/`close` are the delimiter token
    /// indices (`close == open` when the group never closed).
    Group {
        /// Which delimiter family opened the group.
        delim: Delim,
        /// Token index of the opening delimiter.
        open: usize,
        /// Token index of the closing delimiter.
        close: usize,
        /// Children, in source order.
        children: Vec<Tree>,
    },
}

/// Builds the token forest and the partner table for `tokens`:
/// `partner[open] == close` and `partner[close] == open` for every
/// matched delimiter pair, `partner[i] == i` everywhere else.
pub fn build(tokens: &[Token]) -> (Vec<Tree>, Vec<usize>) {
    let mut partner: Vec<usize> = (0..tokens.len()).collect();
    let mut stack: Vec<(Delim, usize, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct {
            current(&mut stack, &mut top).push(Tree::Leaf(i));
            continue;
        }
        if let Some(d) = Delim::of_open(&t.text) {
            stack.push((d, i, Vec::new()));
        } else if let Some(d) = Delim::of_close(&t.text) {
            // Close the innermost frame of the same family; tolerate
            // stray closers and mismatches by closing what is open.
            if stack.iter().any(|(fd, _, _)| *fd == d) {
                while let Some((fd, open, children)) = stack.pop() {
                    let close = if fd == d { i } else { open };
                    if fd == d {
                        partner[open] = i;
                        partner[i] = open;
                    }
                    let group = Tree::Group {
                        delim: fd,
                        open,
                        close,
                        children,
                    };
                    current(&mut stack, &mut top).push(group);
                    if fd == d {
                        break;
                    }
                }
            }
            // A closer with no matching opener is dropped.
        } else {
            current(&mut stack, &mut top).push(Tree::Leaf(i));
        }
    }
    // Unclosed groups at EOF collapse upward.
    while let Some((delim, open, children)) = stack.pop() {
        let group = Tree::Group {
            delim,
            open,
            close: open,
            children,
        };
        current(&mut stack, &mut top).push(group);
    }
    (top, partner)
}

fn current<'a>(
    stack: &'a mut [(Delim, usize, Vec<Tree>)],
    top: &'a mut Vec<Tree>,
) -> &'a mut Vec<Tree> {
    match stack.last_mut() {
        Some((_, _, children)) => children,
        None => top,
    }
}

/// A half-open token index range `[start, end)`.
pub type Range = (usize, usize);

/// One parsed function parameter.
#[derive(Debug)]
pub struct Param {
    /// The binding name (`self` for receivers; tuple patterns are
    /// skipped).
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token range of the type, after the `:`.
    pub ty: Range,
}

/// One parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// 1-based line of the name token.
    pub line: u32,
    /// Token index of the name (for test-region checks).
    pub name_idx: usize,
    /// Whether the signature carries `pub` (any visibility scope).
    pub is_pub: bool,
    /// Parsed parameters, in order.
    pub params: Vec<Param>,
    /// Token indices of the body braces `(open, close)`, when the
    /// function has a body (trait methods may not).
    pub body: Option<(usize, usize)>,
}

/// One parsed struct field.
#[derive(Debug)]
pub struct Field {
    /// Field name (`None` for tuple-struct fields).
    pub name: Option<String>,
    /// 1-based line the field starts on.
    pub line: u32,
    /// Token range of the field type.
    pub ty: Range,
}

/// One parsed `struct` item.
#[derive(Debug)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Parsed fields (empty for unit structs).
    pub fields: Vec<Field>,
}

/// One parsed `enum` item.
#[derive(Debug)]
pub struct EnumItem {
    /// The enum name.
    pub name: String,
    /// Token index of the `enum` keyword.
    pub kw_idx: usize,
    /// `(variant name, line)` pairs in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One item in the resolved skeleton.
#[derive(Debug)]
pub enum Item {
    /// A function (free, or inside an `impl`/`mod`).
    Fn(FnItem),
    /// A struct declaration.
    Struct(StructItem),
    /// An enum declaration.
    Enum(EnumItem),
    /// An `impl` block; children are its items.
    Impl(Vec<Item>),
    /// A `mod name { … }` block; children are its items.
    Mod(Vec<Item>),
    /// A `use` declaration, path joined without whitespace.
    Use {
        /// The joined path text (`std::rc::Rc`, braces flattened out).
        path: String,
        /// 1-based line of the `use` keyword.
        line: u32,
    },
}

/// One parsed match arm.
#[derive(Debug)]
pub struct Arm {
    /// Token range of the pattern, guard excluded.
    pub pat: Range,
    /// Whether an `if` guard follows the pattern.
    pub has_guard: bool,
    /// 1-based line the pattern starts on.
    pub line: u32,
}

/// One parsed `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// Token index of the `match` keyword.
    pub kw_idx: usize,
    /// Token range of the scrutinee (between `match` and the body).
    pub scrutinee: Range,
    /// Parsed arms, in order.
    pub arms: Vec<Arm>,
}

/// The fully resolved model of one lexed file.
#[derive(Debug)]
pub struct FileModel<'a> {
    /// The underlying token stream.
    pub tokens: &'a [Token],
    /// Delimiter partner table (see [`build`]).
    pub partner: Vec<usize>,
    /// The item skeleton (top level; `impl`/`mod` nest inside).
    pub items: Vec<Item>,
    /// Every `match` expression in the file, in source order.
    pub matches: Vec<MatchExpr>,
}

impl<'a> FileModel<'a> {
    /// Parses the item skeleton and all match expressions of `lexed`.
    pub fn parse(lexed: &'a Lexed) -> FileModel<'a> {
        let tokens = &lexed.tokens;
        let (_, partner) = build(tokens);
        let items = parse_items(tokens, &partner, 0, tokens.len());
        let matches = parse_matches(tokens, &partner);
        FileModel {
            tokens,
            partner,
            items,
            matches,
        }
    }

    /// Every function in the file, `impl`/`mod` nesting flattened.
    pub fn functions(&self) -> Vec<&FnItem> {
        let mut out = Vec::new();
        collect_fns(&self.items, &mut out);
        out
    }

    /// Every struct in the file, nesting flattened.
    pub fn structs(&self) -> Vec<&StructItem> {
        let mut out = Vec::new();
        collect_structs(&self.items, &mut out);
        out
    }

    /// Every enum in the file, nesting flattened.
    pub fn enums(&self) -> Vec<&EnumItem> {
        let mut out = Vec::new();
        collect_enums(&self.items, &mut out);
        out
    }

    /// Every `use` path in the file, nesting flattened.
    pub fn use_paths(&self) -> Vec<(&str, u32)> {
        let mut out = Vec::new();
        collect_uses(&self.items, &mut out);
        out
    }

    /// `let` bindings anywhere inside the body range `(open, close)`
    /// of a function: `(name, line, ty-or-empty, init-or-empty)`.
    /// Tuple/struct-pattern lets are skipped — the rules only resolve
    /// single-name bindings.
    pub fn let_bindings(&self, body: (usize, usize)) -> Vec<LetBinding> {
        let toks = self.tokens;
        let mut out = Vec::new();
        let mut k = body.0 + 1;
        while k < body.1.min(toks.len()) {
            if !toks[k].is_ident("let") {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                k = j + 1;
                continue;
            };
            let name = name_tok.text.clone();
            let line = name_tok.line;
            j += 1;
            // Optional `: Type` up to a top-level `=` or `;` (angle
            // depth tracked: associated-type bindings contain `=`).
            let mut ty: Range = (j, j);
            if toks.get(j).is_some_and(|t| t.is_punct(":")) {
                j += 1;
                let ty_start = j;
                let mut angle = 0i32;
                while j < body.1.min(toks.len()) {
                    let t = &toks[j];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            "=" if angle <= 0 => break,
                            ";" => break,
                            _ => {}
                        }
                        if self.partner[j] > j {
                            j = self.partner[j];
                        }
                    }
                    j += 1;
                }
                ty = (ty_start, j);
            }
            // Optional `= init` up to the terminating `;`.
            let mut init: Range = (j, j);
            if toks.get(j).is_some_and(|t| t.is_punct("=")) {
                j += 1;
                let init_start = j;
                while j < body.1.min(toks.len()) {
                    if toks[j].is_punct(";") {
                        break;
                    }
                    if self.partner[j] > j {
                        j = self.partner[j];
                    }
                    j += 1;
                }
                init = (init_start, j);
            }
            out.push(LetBinding {
                name,
                line,
                ty,
                init,
            });
            k = j + 1;
        }
        out
    }

    /// `true` when `range` contains the path prefix `name::` anywhere
    /// (any nesting depth).
    pub fn range_mentions_path(&self, range: Range, name: &str) -> bool {
        let end = range.1.min(self.tokens.len());
        (range.0..end).any(|i| {
            self.tokens[i].is_ident(name)
                && self.tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
        })
    }

    /// `true` when the arm's pattern has a bare `_` as one of its
    /// top-level `|` alternatives (field wildcards like `seq: _` and
    /// rest patterns `..` do not count).
    pub fn arm_is_wildcard(&self, arm: &Arm) -> bool {
        let toks = self.tokens;
        let end = arm.pat.1.min(toks.len());
        let mut alt: Vec<usize> = Vec::new();
        let mut i = arm.pat.0;
        let mut wildcard = false;
        let flush = |alt: &mut Vec<usize>| {
            if alt.len() == 1 && toks[alt[0]].is_ident("_") {
                return true;
            }
            alt.clear();
            false
        };
        while i < end {
            if toks[i].is_punct("|") {
                wildcard |= flush(&mut alt);
                alt.clear();
            } else {
                alt.push(i);
                if self.partner[i] > i {
                    i = self.partner[i];
                }
            }
            i += 1;
        }
        wildcard | flush(&mut alt)
    }
}

/// One `let` binding found by [`FileModel::let_bindings`].
#[derive(Debug)]
pub struct LetBinding {
    /// The bound name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Token range of the type annotation (empty when absent).
    pub ty: Range,
    /// Token range of the initializer (empty when absent).
    pub init: Range,
}

fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a FnItem>) {
    for item in items {
        match item {
            Item::Fn(f) => out.push(f),
            Item::Impl(children) | Item::Mod(children) => collect_fns(children, out),
            _ => {}
        }
    }
}

fn collect_structs<'a>(items: &'a [Item], out: &mut Vec<&'a StructItem>) {
    for item in items {
        match item {
            Item::Struct(s) => out.push(s),
            Item::Impl(children) | Item::Mod(children) => collect_structs(children, out),
            _ => {}
        }
    }
}

fn collect_enums<'a>(items: &'a [Item], out: &mut Vec<&'a EnumItem>) {
    for item in items {
        match item {
            Item::Enum(e) => out.push(e),
            Item::Impl(children) | Item::Mod(children) => collect_enums(children, out),
            _ => {}
        }
    }
}

fn collect_uses<'a>(items: &'a [Item], out: &mut Vec<(&'a str, u32)>) {
    for item in items {
        match item {
            Item::Use { path, line } => out.push((path, *line)),
            Item::Impl(children) | Item::Mod(children) => collect_uses(children, out),
            _ => {}
        }
    }
}

/// Parses one item level: the token range `[start, end)` must sit at a
/// single nesting depth (the whole file, a `mod` body, an `impl`
/// body). Function bodies are *not* descended into — statements are
/// not items (matches are collected separately; `let`s on demand).
fn parse_items(tokens: &[Token], partner: &[usize], start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        // Skip attributes wholesale.
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            i = partner[i + 1].max(i + 1) + 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            if partner[i] > i {
                i = partner[i]; // stray group at item level (e.g. macro body)
            }
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => {
                let (path, next) = join_use_path(tokens, partner, i + 1, end);
                items.push(Item::Use { path, line: t.line });
                i = next;
            }
            "mod" => {
                if let Some((name_idx, open)) = named_block(tokens, partner, i, end) {
                    let _ = name_idx;
                    let close = partner[open];
                    items.push(Item::Mod(parse_items(tokens, partner, open + 1, close)));
                    i = close + 1;
                } else {
                    i = skip_to_semi(tokens, partner, i, end);
                }
            }
            "impl" => {
                if let Some(open) = next_brace(tokens, partner, i + 1, end) {
                    let close = partner[open];
                    items.push(Item::Impl(parse_items(tokens, partner, open + 1, close)));
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            "fn" => {
                let (item, next) = parse_fn(tokens, partner, i, end);
                if let Some(f) = item {
                    items.push(Item::Fn(f));
                }
                i = next;
            }
            "struct" => {
                let (item, next) = parse_struct(tokens, partner, i, end);
                if let Some(s) = item {
                    items.push(Item::Struct(s));
                }
                i = next;
            }
            "enum" => {
                let (item, next) = parse_enum(tokens, partner, i, end);
                if let Some(e) = item {
                    items.push(Item::Enum(e));
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    items
}

/// `mod name {`: returns `(name index, brace index)`.
fn named_block(
    tokens: &[Token],
    partner: &[usize],
    kw: usize,
    end: usize,
) -> Option<(usize, usize)> {
    let name = kw + 1;
    if tokens.get(name)?.kind != TokKind::Ident {
        return None;
    }
    let open = name + 1;
    if open < end && tokens.get(open).is_some_and(|t| t.is_punct("{")) && partner[open] > open {
        Some((name, open))
    } else {
        None
    }
}

fn skip_to_semi(tokens: &[Token], partner: &[usize], mut i: usize, end: usize) -> usize {
    while i < end.min(tokens.len()) {
        if tokens[i].is_punct(";") {
            return i + 1;
        }
        if partner[i] > i {
            i = partner[i];
        }
        i += 1;
    }
    i
}

/// First `{` group at the current level in `[from, end)`.
fn next_brace(tokens: &[Token], partner: &[usize], mut i: usize, end: usize) -> Option<usize> {
    while i < end.min(tokens.len()) {
        if tokens[i].is_punct("{") && partner[i] > i {
            return Some(i);
        }
        if tokens[i].is_punct(";") {
            return None;
        }
        if partner[i] > i {
            i = partner[i];
        }
        i += 1;
    }
    None
}

/// Joins the `use` path tokens into one string and returns the index
/// past the terminating `;`.
fn join_use_path(tokens: &[Token], partner: &[usize], mut i: usize, end: usize) -> (String, usize) {
    let mut path = String::new();
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_punct(";") {
            return (path, i + 1);
        }
        if t.is_punct("{") && partner[i] > i {
            // Flatten grouped imports: keep the inner text verbatim.
            for inner in &tokens[i + 1..partner[i]] {
                path.push_str(&inner.text);
            }
            i = partner[i] + 1;
            continue;
        }
        path.push_str(&t.text);
        i += 1;
    }
    (path, i)
}

/// Parses `fn name <generics?> (params) -> ret? { body }?` starting at
/// the `fn` keyword. Returns the item and the resume index.
fn parse_fn(tokens: &[Token], partner: &[usize], kw: usize, end: usize) -> (Option<FnItem>, usize) {
    let Some(name_tok) = tokens.get(kw + 1).filter(|t| t.kind == TokKind::Ident) else {
        return (None, kw + 1);
    };
    let is_pub = fn_is_pub(tokens, partner, kw);
    let mut j = kw + 2;
    // Skip generic parameters (angle-depth walk; `(` groups inside,
    // e.g. `Fn(u32) -> u64` bounds, are skipped via the partner table).
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < end.min(tokens.len()) {
            match tokens[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {
                    if partner[j] > j {
                        j = partner[j];
                    }
                }
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("(")) || partner[j] <= j {
        return (None, kw + 2);
    }
    let params = parse_params(tokens, partner, j + 1, partner[j]);
    let after_params = partner[j] + 1;
    // Body: the next `{` group before any `;` at this level.
    let body = next_brace(tokens, partner, after_params, end).map(|open| (open, partner[open]));
    let resume = match body {
        Some((_, close)) => close + 1,
        None => skip_to_semi(tokens, partner, after_params, end),
    };
    (
        Some(FnItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            name_idx: kw + 1,
            is_pub,
            params,
            body,
        }),
        resume,
    )
}

/// Whether the tokens before the `fn` keyword carry a `pub` modifier.
fn fn_is_pub(tokens: &[Token], partner: &[usize], kw: usize) -> bool {
    let mut b = kw;
    while b > 0 {
        b -= 1;
        let t = &tokens[b];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
        {
            continue;
        }
        if t.kind == TokKind::Str {
            continue; // extern "C"
        }
        if t.is_punct(")") && partner[b] < b {
            b = partner[b];
            continue; // pub(crate) scope parens
        }
        return t.is_ident("pub");
    }
    false
}

/// Splits a parameter range on top-level commas (angle depth tracked —
/// `Map<K, V>` must not split) and resolves `name: Type` per segment.
fn parse_params(tokens: &[Token], partner: &[usize], start: usize, end: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut seg_start = start;
    let mut angle = 0i32;
    let mut i = start;
    while i <= end.min(tokens.len()) {
        let at_end = i == end.min(tokens.len());
        if !at_end {
            let t = &tokens[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                if partner[i] > i {
                    i = partner[i];
                    i += 1;
                    continue;
                }
            }
        }
        if at_end || (tokens[i].is_punct(",") && angle <= 0) {
            if let Some(p) = parse_param(tokens, partner, seg_start, i) {
                params.push(p);
            }
            seg_start = i + 1;
            if at_end {
                break;
            }
        }
        i += 1;
    }
    params
}

fn parse_param(tokens: &[Token], partner: &[usize], start: usize, end: usize) -> Option<Param> {
    // Receivers: `self`, `&self`, `&mut self`, `&'a self`.
    let idents: Vec<usize> = (start..end.min(tokens.len()))
        .filter(|&i| tokens[i].kind == TokKind::Ident)
        .collect();
    if idents.iter().any(|&i| tokens[i].is_ident("self")) {
        let i = *idents.iter().find(|&&i| tokens[i].is_ident("self"))?;
        return Some(Param {
            name: "self".to_string(),
            line: tokens[i].line,
            ty: (end, end),
        });
    }
    // First top-level `:` splits pattern from type (`::` is one token).
    let mut colon = None;
    let mut i = start;
    while i < end.min(tokens.len()) {
        if tokens[i].is_punct(":") {
            colon = Some(i);
            break;
        }
        if partner[i] > i {
            i = partner[i];
        }
        i += 1;
    }
    let colon = colon?;
    let name_tok = (start..colon)
        .rev()
        .map(|i| &tokens[i])
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?;
    Some(Param {
        name: name_tok.text.clone(),
        line: name_tok.line,
        ty: (colon + 1, end),
    })
}

/// Parses `struct Name;` / `struct Name(T, U);` / `struct Name { … }`.
fn parse_struct(
    tokens: &[Token],
    partner: &[usize],
    kw: usize,
    end: usize,
) -> (Option<StructItem>, usize) {
    let Some(name_tok) = tokens.get(kw + 1).filter(|t| t.kind == TokKind::Ident) else {
        return (None, kw + 1);
    };
    let mut j = kw + 2;
    // Skip generics.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < end.min(tokens.len()) {
            match tokens[j].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    let mut fields = Vec::new();
    let resume;
    if tokens.get(j).is_some_and(|t| t.is_punct("(")) && partner[j] > j {
        // Tuple struct: each top-level segment is a type.
        let close = partner[j];
        let mut seg = j + 1;
        let mut i = j + 1;
        while i <= close {
            if i == close || tokens[i].is_punct(",") {
                if seg < i {
                    fields.push(Field {
                        name: None,
                        line: tokens[seg].line,
                        ty: (seg, i),
                    });
                }
                seg = i + 1;
            } else if partner[i] > i {
                i = partner[i];
            }
            i += 1;
        }
        resume = skip_to_semi(tokens, partner, close + 1, end);
    } else if let Some(open) = next_brace(tokens, partner, j, end) {
        let close = partner[open];
        let mut i = open + 1;
        let mut seg = i;
        while i <= close {
            if i == close || (tokens[i].is_punct(",") && partner[i] == i) {
                if let Some(f) = parse_field(tokens, partner, seg, i) {
                    fields.push(f);
                }
                seg = i + 1;
            } else if partner[i] > i {
                i = partner[i];
            }
            i += 1;
        }
        resume = close + 1;
    } else {
        resume = skip_to_semi(tokens, partner, j, end);
    }
    (
        Some(StructItem {
            name: name_tok.text.clone(),
            fields,
        }),
        resume,
    )
}

fn parse_field(tokens: &[Token], partner: &[usize], start: usize, end: usize) -> Option<Field> {
    let mut i = start;
    // Skip attributes and visibility.
    while i < end {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            i = partner[i + 1].max(i + 1) + 1;
        } else if t.is_ident("pub") {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("(")) && partner[i] > i {
                i = partner[i] + 1;
            }
        } else {
            break;
        }
    }
    let name_tok = tokens.get(i).filter(|t| t.kind == TokKind::Ident)?;
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct(":")) {
        return None;
    }
    Some(Field {
        name: Some(name_tok.text.clone()),
        line: name_tok.line,
        ty: (i + 2, end),
    })
}

/// Parses `enum Name { A, B(T), C { … } }` variants.
fn parse_enum(
    tokens: &[Token],
    partner: &[usize],
    kw: usize,
    end: usize,
) -> (Option<EnumItem>, usize) {
    let Some(name_tok) = tokens.get(kw + 1).filter(|t| t.kind == TokKind::Ident) else {
        return (None, kw + 1);
    };
    let Some(open) = next_brace(tokens, partner, kw + 2, end) else {
        return (None, kw + 2);
    };
    let close = partner[open];
    let mut variants = Vec::new();
    let mut i = open + 1;
    let mut expect_variant = true;
    while i < close {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            i = partner[i + 1].max(i + 1) + 1;
            continue;
        }
        if t.is_punct(",") {
            expect_variant = true;
            i += 1;
            continue;
        }
        if expect_variant && t.kind == TokKind::Ident {
            variants.push((t.text.clone(), t.line));
            expect_variant = false;
        }
        if partner[i] > i {
            i = partner[i];
        }
        i += 1;
    }
    (
        Some(EnumItem {
            name: name_tok.text.clone(),
            kw_idx: kw,
            variants,
        }),
        close + 1,
    )
}

/// Collects every `match` expression: scrutinee range plus parsed arms.
fn parse_matches(tokens: &[Token], partner: &[usize]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for kw in 0..tokens.len() {
        if !tokens[kw].is_ident("match") {
            continue;
        }
        // Scrutinee: everything up to the first `{` at this level.
        let mut j = kw + 1;
        let mut body_open = None;
        while j < tokens.len() {
            if tokens[j].is_punct("{") && partner[j] > j {
                body_open = Some(j);
                break;
            }
            if tokens[j].is_punct(";") || tokens[j].is_punct("}") {
                break; // not a match expression after all
            }
            if partner[j] > j {
                j = partner[j];
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let close = partner[open];
        out.push(MatchExpr {
            kw_idx: kw,
            scrutinee: (kw + 1, open),
            arms: parse_arms(tokens, partner, open + 1, close),
        });
    }
    out
}

/// Parses the arms inside a match body range.
fn parse_arms(tokens: &[Token], partner: &[usize], start: usize, end: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        // Skip arm attributes.
        while i < end
            && tokens[i].is_punct("#")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("["))
        {
            i = partner[i + 1].max(i + 1) + 1;
        }
        if i >= end {
            break;
        }
        let pat_start = i;
        let mut guard = None;
        let mut arrow = None;
        let mut j = i;
        while j < end {
            let t = &tokens[j];
            if t.is_punct("=>") {
                arrow = Some(j);
                break;
            }
            if t.is_ident("if") && guard.is_none() {
                guard = Some(j);
            }
            if partner[j] > j {
                j = partner[j];
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_end = guard.unwrap_or(arrow);
        arms.push(Arm {
            pat: (pat_start, pat_end),
            has_guard: guard.is_some(),
            line: tokens[pat_start].line,
        });
        // Arm body: a brace group, or tokens up to the top-level comma.
        let mut k = arrow + 1;
        if k < end && tokens[k].is_punct("{") && partner[k] > k {
            k = partner[k] + 1;
            if k < end && tokens[k].is_punct(",") {
                k += 1;
            }
        } else {
            while k < end {
                if tokens[k].is_punct(",") {
                    k += 1;
                    break;
                }
                if partner[k] > k {
                    k = partner[k];
                }
                k += 1;
            }
        }
        i = k;
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn partner_table_pairs_delimiters() {
        let lexed = lex("fn f(a: u32) { g([1, 2]); }");
        let (_, partner) = build(&lexed.tokens);
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                assert!(partner[i] > i, "opener {i} unpaired");
                assert_eq!(partner[partner[i]], i);
            }
        }
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        for src in ["fn f( {", "}}}", "fn f) { ]"] {
            let lexed = lex(src);
            let (_, partner) = build(&lexed.tokens);
            assert_eq!(partner.len(), lexed.tokens.len());
            let _ = FileModel::parse(&lexed);
        }
    }

    #[test]
    fn fn_signature_resolves_params_and_generics() {
        let lexed = lex(
            "impl X { pub fn go<F: Fn(u32) -> u64>(&mut self, dist: f64, m: Map<K, V>) -> u64 { 0 } }",
        );
        let model = FileModel::parse(&lexed);
        let fns = model.functions();
        assert_eq!(fns.len(), 1);
        let f = fns[0];
        assert_eq!(f.name, "go");
        assert!(f.is_pub);
        assert!(f.body.is_some());
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["self", "dist", "m"]);
    }

    #[test]
    fn struct_fields_resolve_types() {
        let lexed = lex("pub struct S { pub a: Rc<RefCell<u32>>, raw: *const u8 }");
        let model = FileModel::parse(&lexed);
        let s = &model.structs()[0];
        assert_eq!(s.name, "S");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].name.as_deref(), Some("raw"));
        assert!(model.tokens[s.fields[1].ty.0].is_punct("*"));
    }

    #[test]
    fn match_arms_parse_with_guards_and_wildcards() {
        let lexed = lex(
            "fn f(e: E) -> u32 { match e { E::A { x: _, .. } => 1, E::B | _ => 2, _ if c() => 3, } }",
        );
        let model = FileModel::parse(&lexed);
        assert_eq!(model.matches.len(), 1);
        let m = &model.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(
            !model.arm_is_wildcard(&m.arms[0]),
            "field `_` is not a wildcard arm"
        );
        assert!(
            model.arm_is_wildcard(&m.arms[1]),
            "`E::B | _` is a wildcard arm"
        );
        assert!(
            model.arm_is_wildcard(&m.arms[2]),
            "guarded `_` is a wildcard arm"
        );
        assert!(m.arms[2].has_guard);
    }

    #[test]
    fn nested_matches_are_all_collected() {
        let lexed = lex("fn f() { match a { X => match b { Y => 1, _ => 2 }, _ => 0 } }");
        let model = FileModel::parse(&lexed);
        assert_eq!(model.matches.len(), 2);
    }

    #[test]
    fn let_bindings_scan_resolves_types_and_inits() {
        let lexed = lex(
            "fn f() { let mut rng = StdRng::seed_from_u64(1); if x { let t: Foo<Item = u32> = g(); } }",
        );
        let model = FileModel::parse(&lexed);
        let body = model.functions()[0].body.expect("body");
        let lets = model.let_bindings(body);
        assert_eq!(lets.len(), 2);
        assert_eq!(lets[0].name, "rng");
        assert!(model.range_mentions_path(lets[0].init, "StdRng"));
        assert_eq!(lets[1].name, "t");
    }

    #[test]
    fn use_paths_join() {
        let lexed = lex("use std::rc::Rc;\nmod m { use std::cell::{Cell, RefCell}; }");
        let model = FileModel::parse(&lexed);
        let paths: Vec<&str> = model.use_paths().iter().map(|(p, _)| *p).collect();
        assert_eq!(paths, vec!["std::rc::Rc", "std::cell::Cell,RefCell"]);
    }

    #[test]
    fn enum_variants_resolve() {
        let lexed = lex("pub enum E { A, B(u32), C { x: u8 }, }");
        let model = FileModel::parse(&lexed);
        let e = &model.enums()[0];
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
