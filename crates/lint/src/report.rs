//! Finding output: human-readable text, a machine-readable JSON report
//! (following the hand-rolled conventions of `crates/sim/src/json.rs` —
//! ordered keys, exact unsigned integers, escaped strings), and the
//! checked-in baseline of grandfathered findings.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{Finding, LintOutcome};

/// Renders findings for terminals: `path:line: [rule] message` plus the
/// offending source line.
pub fn render_human(outcome: &LintOutcome, baselined: usize) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "simlint: {} finding(s), {} suppressed, {} baselined, {} file(s) scanned",
        outcome.findings.len(),
        outcome.suppressed,
        baselined,
        outcome.files_scanned
    );
    out
}

/// Escapes a string for JSON output (same subset as the sim crate's
/// hand-rolled writer: control characters, quotes and backslashes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the outcome as a JSON report object.
pub fn render_json(outcome: &LintOutcome, baselined: usize) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1,");
    let _ = write!(out, "\"files_scanned\":{},", outcome.files_scanned);
    let _ = write!(out, "\"suppressed\":{},", outcome.suppressed);
    let _ = write!(out, "\"baselined\":{baselined},");
    let _ = write!(out, "\"findings\":[");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            f.rule.name(),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message),
            escape_json(&f.snippet)
        );
    }
    out.push_str("]}");
    out
}

/// Loads the baseline file: one grandfathered finding key per line
/// (see [`Finding::baseline_key`]); `#` lines and blanks are ignored.
pub fn load_baseline(path: &Path) -> io::Result<Vec<String>> {
    let text = fs::read_to_string(path)?;
    Ok(text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Serializes findings as baseline content.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# simlint baseline — grandfathered findings, one per line:\n\
         # <rule>\\t<file>\\t<normalized source line>\n\
         # Regenerate with `simlint --workspace --write-baseline`.\n",
    );
    for f in findings {
        let _ = writeln!(out, "{}", f.baseline_key());
    }
    out
}

/// Splits an outcome's findings into (kept, baselined-count) against a
/// loaded baseline.
pub fn apply_baseline(outcome: &mut LintOutcome, baseline: &[String]) -> usize {
    let before = outcome.findings.len();
    outcome
        .findings
        .retain(|f| !baseline.iter().any(|k| *k == f.baseline_key()));
    before - outcome.findings.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> LintOutcome {
        LintOutcome {
            findings: vec![Finding {
                rule: Rule::FloatEq,
                file: "crates/sim/src/x.rs".to_string(),
                line: 7,
                message: "`==` against a float literal".to_string(),
                snippet: "if x == 0.0 {".to_string(),
            }],
            suppressed: 2,
            files_scanned: 3,
        }
    }

    #[test]
    fn json_report_shape() {
        let json = render_json(&sample(), 1);
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"baselined\":1"));
    }

    #[test]
    fn baseline_round_trip_suppresses() {
        let mut outcome = sample();
        let content = render_baseline(&outcome.findings);
        let keys: Vec<String> = content
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(str::to_string)
            .collect();
        assert_eq!(keys.len(), 1);
        let baselined = apply_baseline(&mut outcome, &keys);
        assert_eq!(baselined, 1);
        assert!(outcome.findings.is_empty());
    }

    #[test]
    fn human_rendering_mentions_rule_and_line() {
        let text = render_human(&sample(), 0);
        assert!(text.contains("crates/sim/src/x.rs:7: [float-eq]"));
        assert!(text.contains("1 finding(s), 2 suppressed"));
    }
}
