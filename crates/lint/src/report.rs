//! Finding output: human-readable text, a machine-readable JSON report
//! (following the hand-rolled conventions of `crates/sim/src/json.rs` —
//! ordered keys, exact unsigned integers, escaped strings), the
//! checked-in baseline of grandfathered findings, and the per-rule
//! suppression-budget gate behind `--max-allows`.
//!
//! Both machine artifacts — the JSON report and the baseline file — are
//! stamped with [`SCHEMA_VERSION`], consistent with the PR-8 artifact
//! convention; unstamped baselines are rejected with a typed
//! [`BaselineError`] rather than silently accepted.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{Finding, LintOutcome, Rule};

/// Schema version stamped into the JSON report and the baseline file.
pub const SCHEMA_VERSION: u32 = 2;

/// Per-rule suppression tally: in-source `simlint: allow` directives
/// plus grandfathered baseline entries.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllowTally {
    /// Well-formed, justified `simlint: allow(<rule>)` directives.
    pub directives: usize,
    /// Baseline entries for the rule.
    pub baseline: usize,
}

impl AllowTally {
    /// Total suppressions counted against the rule's budget.
    pub fn total(self) -> usize {
        self.directives + self.baseline
    }
}

/// Counts per-rule suppressions from the outcome's directive census and
/// the loaded baseline keys (whose first tab field is the rule name).
pub fn tally_allows(
    outcome: &LintOutcome,
    baseline_keys: &[String],
) -> BTreeMap<String, AllowTally> {
    let mut tally: BTreeMap<String, AllowTally> = BTreeMap::new();
    for (rule, n) in &outcome.allow_directives {
        tally.entry(rule.clone()).or_default().directives += n;
    }
    for key in baseline_keys {
        if let Some(rule) = key.split('\t').next() {
            if Rule::from_name(rule).is_some() {
                tally.entry(rule.to_string()).or_default().baseline += 1;
            }
        }
    }
    tally
}

/// One `--max-allows <rule>=<n>` budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// The budgeted rule name.
    pub rule: String,
    /// Maximum allowed suppressions (directives + baseline entries).
    pub max: usize,
}

/// Parses a `<rule>=<n>` budget argument. The rule must be a known
/// rule name and `<n>` a base-10 count.
pub fn parse_budget(arg: &str) -> Option<Budget> {
    let (rule, n) = arg.split_once('=')?;
    Rule::from_name(rule)?;
    let max: usize = n.parse().ok()?;
    Some(Budget {
        rule: rule.to_string(),
        max,
    })
}

/// Checks every budget against the tally, returning one
/// `suppression-budget` finding per exceeded rule. These findings are
/// appended *after* baseline application, so a budget violation can
/// never itself be grandfathered.
pub fn check_budgets(tally: &BTreeMap<String, AllowTally>, budgets: &[Budget]) -> Vec<Finding> {
    let mut out = Vec::new();
    for b in budgets {
        let used = tally.get(&b.rule).copied().unwrap_or_default();
        if used.total() > b.max {
            out.push(Finding {
                rule: Rule::SuppressionBudget,
                file: "(workspace)".to_string(),
                line: 0,
                message: format!(
                    "suppression budget exceeded for `{}`: {} allow(s) \
                     ({} directive(s) + {} baseline entr(ies)) > max {} — \
                     the allowlist must shrink, never grow; fix the new site \
                     instead of suppressing it",
                    b.rule,
                    used.total(),
                    used.directives,
                    used.baseline,
                    b.max
                ),
                snippet: String::new(),
            });
        }
    }
    out
}

/// Renders findings for terminals: `path:line: [rule] message` plus the
/// offending source line, then a summary line and a per-rule allows
/// line (the determinism-matrix CI job reads the latter as its
/// suppression-count trend).
pub fn render_human(
    outcome: &LintOutcome,
    baselined: usize,
    tally: &BTreeMap<String, AllowTally>,
) -> String {
    let mut out = String::new();
    for f in &outcome.findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "simlint: {} finding(s), {} suppressed, {} baselined, {} file(s) scanned",
        outcome.findings.len(),
        outcome.suppressed,
        baselined,
        outcome.files_scanned
    );
    let mut allows = String::new();
    for (rule, t) in tally {
        if t.total() > 0 {
            let _ = write!(allows, " {}={}", rule, t.total());
        }
    }
    let _ = writeln!(
        out,
        "simlint allows:{}",
        if allows.is_empty() { " none" } else { &allows }
    );
    out
}

/// Escapes a string for JSON output (same subset as the sim crate's
/// hand-rolled writer: control characters, quotes and backslashes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the outcome as a schema-stamped JSON report object with
/// per-rule suppression counts and budget verdicts.
pub fn render_json(
    outcome: &LintOutcome,
    baselined: usize,
    tally: &BTreeMap<String, AllowTally>,
    budgets: &[Budget],
) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"schema_version\":{SCHEMA_VERSION},");
    let _ = write!(out, "\"files_scanned\":{},", outcome.files_scanned);
    let _ = write!(out, "\"suppressed\":{},", outcome.suppressed);
    let _ = write!(out, "\"baselined\":{baselined},");
    out.push_str("\"allows\":{");
    for (i, (rule, t)) in tally.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"directives\":{},\"baseline\":{}}}",
            escape_json(rule),
            t.directives,
            t.baseline
        );
    }
    out.push_str("},\"budgets\":[");
    for (i, b) in budgets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let used = tally.get(&b.rule).copied().unwrap_or_default().total();
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"max\":{},\"used\":{},\"ok\":{}}}",
            escape_json(&b.rule),
            b.max,
            used,
            used <= b.max
        );
    }
    out.push_str("],\"findings\":[");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
            f.rule.name(),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message),
            escape_json(&f.snippet)
        );
    }
    out.push_str("]}");
    out
}

/// Why a baseline file could not be used.
#[derive(Debug)]
pub enum BaselineError {
    /// The file exists but could not be read.
    Io(io::Error),
    /// The file carries no `schema_version` stamp line.
    Unstamped,
    /// The file is stamped with a version this binary does not speak.
    WrongVersion(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "cannot read baseline: {e}"),
            BaselineError::Unstamped => write!(
                f,
                "baseline is not stamped with `schema_version\t{SCHEMA_VERSION}` — \
                 regenerate it with `simlint --workspace --write-baseline`"
            ),
            BaselineError::WrongVersion(found) => write!(
                f,
                "baseline schema_version `{found}` is not `{SCHEMA_VERSION}` — \
                 regenerate it with `simlint --workspace --write-baseline`"
            ),
        }
    }
}

/// Loads the baseline file: a `schema_version` stamp line followed by
/// one grandfathered finding key per line (see
/// [`Finding::baseline_key`]); `#` lines and blanks are ignored. A
/// missing file is NOT handled here — callers decide whether absence
/// means "empty baseline".
pub fn load_baseline(path: &Path) -> Result<Vec<String>, BaselineError> {
    let text = fs::read_to_string(path).map_err(BaselineError::Io)?;
    parse_baseline(&text)
}

/// Parses baseline content (see [`load_baseline`] for the format).
pub fn parse_baseline(text: &str) -> Result<Vec<String>, BaselineError> {
    let mut lines = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let Some(stamp) = lines.next() else {
        return Err(BaselineError::Unstamped);
    };
    match stamp.split_once('\t') {
        Some(("schema_version", v)) if v == SCHEMA_VERSION.to_string() => {}
        Some(("schema_version", v)) => return Err(BaselineError::WrongVersion(v.to_string())),
        _ => return Err(BaselineError::Unstamped),
    }
    Ok(lines.map(str::to_string).collect())
}

/// Serializes findings as baseline content: stamped, sorted and
/// de-duplicated, so regeneration is deterministic regardless of
/// finding order or repeated keys.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# simlint baseline — grandfathered findings, one per line:\n\
         # <rule>\\t<file>\\t<normalized source line>\n\
         # Regenerate with `simlint --workspace --write-baseline`.\n",
    );
    let _ = writeln!(out, "schema_version\t{SCHEMA_VERSION}");
    let mut keys: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    keys.sort();
    keys.dedup();
    for k in keys {
        let _ = writeln!(out, "{k}");
    }
    out
}

/// Splits an outcome's findings into (kept, baselined-count) against a
/// loaded baseline.
pub fn apply_baseline(outcome: &mut LintOutcome, baseline: &[String]) -> usize {
    let before = outcome.findings.len();
    outcome
        .findings
        .retain(|f| !baseline.iter().any(|k| *k == f.baseline_key()));
    before - outcome.findings.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn sample() -> LintOutcome {
        let mut allow_directives = BTreeMap::new();
        allow_directives.insert("rng-discipline".to_string(), 5);
        LintOutcome {
            findings: vec![Finding {
                rule: Rule::FloatEq,
                file: "crates/sim/src/x.rs".to_string(),
                line: 7,
                message: "`==` against a float literal".to_string(),
                snippet: "if x == 0.0 {".to_string(),
            }],
            suppressed: 2,
            files_scanned: 3,
            allow_directives,
        }
    }

    #[test]
    fn json_report_is_schema_stamped() {
        let outcome = sample();
        let tally = tally_allows(&outcome, &[]);
        let budgets = vec![Budget {
            rule: "rng-discipline".to_string(),
            max: 5,
        }];
        let json = render_json(&outcome, 1, &tally, &budgets);
        assert!(json.starts_with("{\"schema_version\":2,"));
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"baselined\":1"));
        assert!(json.contains("\"allows\":{\"rng-discipline\":{\"directives\":5,\"baseline\":0}}"));
        assert!(json.contains(
            "\"budgets\":[{\"rule\":\"rng-discipline\",\"max\":5,\"used\":5,\"ok\":true}]"
        ));
    }

    #[test]
    fn baseline_round_trip_suppresses() {
        let mut outcome = sample();
        let content = render_baseline(&outcome.findings);
        let keys = parse_baseline(&content).expect("stamped baseline loads");
        assert_eq!(keys.len(), 1);
        let baselined = apply_baseline(&mut outcome, &keys);
        assert_eq!(baselined, 1);
        assert!(outcome.findings.is_empty());
        let tally = tally_allows(&outcome, &keys);
        assert_eq!(
            tally.get("float-eq").copied().unwrap_or_default().baseline,
            1
        );
    }

    #[test]
    fn baseline_output_is_sorted_and_deduped() {
        let mk = |file: &str, snippet: &str| Finding {
            rule: Rule::PanicPolicy,
            file: file.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        };
        let findings = vec![
            mk("crates/z.rs", "b.unwrap();"),
            mk("crates/a.rs", "a.unwrap();"),
            mk("crates/z.rs", "b.unwrap();"),
        ];
        let content = render_baseline(&findings);
        let keys: Vec<&str> = content
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("schema_version") && !l.is_empty())
            .collect();
        assert_eq!(keys.len(), 2, "{content}");
        assert!(keys[0] < keys[1]);
    }

    #[test]
    fn unstamped_baseline_is_a_typed_error() {
        assert!(matches!(
            parse_baseline("# comment only\npanic-policy\tx.rs\ty.unwrap();\n"),
            Err(BaselineError::Unstamped)
        ));
        assert!(matches!(
            parse_baseline("schema_version\t1\n"),
            Err(BaselineError::WrongVersion(v)) if v == "1"
        ));
    }

    #[test]
    fn budgets_gate_totals_not_directives_alone() {
        let outcome = sample(); // 5 rng-discipline directives
        let keys = vec!["rng-discipline\tcrates/sim/src/medium.rs\tx".to_string()];
        let tally = tally_allows(&outcome, &keys);
        assert_eq!(
            tally
                .get("rng-discipline")
                .copied()
                .unwrap_or_default()
                .total(),
            6
        );
        let ok = check_budgets(
            &tally,
            &[Budget {
                rule: "rng-discipline".to_string(),
                max: 6,
            }],
        );
        assert!(ok.is_empty());
        let bad = check_budgets(
            &tally,
            &[Budget {
                rule: "rng-discipline".to_string(),
                max: 5,
            }],
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::SuppressionBudget);
        assert!(bad[0].message.contains("> max 5"));
    }

    #[test]
    fn budget_args_parse_and_validate() {
        assert_eq!(
            parse_budget("rng-discipline=5"),
            Some(Budget {
                rule: "rng-discipline".to_string(),
                max: 5
            })
        );
        assert_eq!(parse_budget("no-such-rule=5"), None);
        assert_eq!(parse_budget("rng-discipline=x"), None);
        assert_eq!(parse_budget("rng-discipline"), None);
    }

    #[test]
    fn human_rendering_mentions_rule_line_and_allows() {
        let outcome = sample();
        let tally = tally_allows(&outcome, &[]);
        let text = render_human(&outcome, 0, &tally);
        assert!(text.contains("crates/sim/src/x.rs:7: [float-eq]"));
        assert!(text.contains("1 finding(s), 2 suppressed"));
        assert!(text.contains("simlint allows: rng-discipline=5"));
    }
}
