//! Workspace discovery and source collection.
//!
//! simlint audits *library* code: `src/` of the root crate and of every
//! crate under `crates/`. Binaries (`src/main.rs`, `src/bin/`), tests,
//! benches, examples and the vendored dependency stand-ins under
//! `vendor/` are out of scope — the panic policy explicitly permits
//! panics in executables and test code, and the vendor tree mirrors
//! third-party APIs we do not control.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::SourceFile;

/// Walks upward from `start` to the nearest directory whose
/// `Cargo.toml` declares `[workspace]`.
pub fn discover_workspace(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every in-scope library source file under `root`, sorted by
/// workspace-relative path for deterministic output.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_src(root, &root_src, "comap", &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if !src.is_dir() {
                continue;
            }
            let crate_name = entry
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("unknown")
                .to_string();
            walk_src(root, &src, &crate_name, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`, excluding binaries.
fn walk_src(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `bin/` holds executables; `fixtures/` holds
            // intentionally-violating lint-fixture code that must never
            // reach workspace mode (defense in depth — the walker only
            // descends `src/` directories, but a fixture tree nested
            // under one would otherwise be scanned).
            if name == "bin" || name == "fixtures" {
                continue;
            }
            walk_src(root, &path, crate_name, out)?;
        } else if name.ends_with(".rs") && name != "main.rs" {
            out.push(load_source(root, &path, crate_name)?);
        }
    }
    Ok(())
}

/// Loads one file as a [`SourceFile`] with a `/`-separated relative path.
pub fn load_source(root: &Path, path: &Path, crate_name: &str) -> io::Result<SourceFile> {
    let text = fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_path = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Ok(SourceFile {
        rel_path,
        crate_name: crate_name.to_string(),
        text,
    })
}

/// Infers the short crate name from a workspace-relative path
/// (`crates/<name>/...` → `<name>`, anything else → `comap`).
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "comap".to_string()
}
