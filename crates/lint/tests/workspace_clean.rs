//! The acceptance gate from the issue: `simlint --workspace` must exit
//! 0 on this tree with an empty baseline. This test runs the same scan
//! the binary runs, so `cargo test` alone catches a regression even if
//! CI's dedicated simlint step is skipped.

use std::path::PathBuf;

use comap_lint::report::{check_budgets, parse_budget, tally_allows};
use comap_lint::{collect_sources, lint_files};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_with_empty_baseline() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("workspace sources readable");
    assert!(
        files.len() > 20,
        "workspace walk found only {} sources under {} — walker broken?",
        files.len(),
        root.display()
    );
    let outcome = lint_files(&files);
    let rendered: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        outcome.findings.is_empty(),
        "workspace must lint clean with an empty baseline; findings:\n{}",
        rendered.join("\n")
    );
}

/// The rng-discipline migration is complete: the allowlist is empty,
/// and every budget the CI gate enforces (`--max-allows` in
/// scripts/check.sh and ci.yml) holds at HEAD. A new sequential draw —
/// or a new wildcard `SimEvent` arm — must be *fixed*, not suppressed;
/// suppressing it trips this test the same way it would trip CI.
#[test]
fn suppression_budgets_hold_and_allowlist_is_exact() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("workspace sources readable");
    let outcome = lint_files(&files);
    let tally = tally_allows(&outcome, &[]);

    let rng = tally.get("rng-discipline").copied().unwrap_or_default();
    assert_eq!(
        rng.total(),
        0,
        "rng-discipline budget is 0: the 5 migration-debt sites (medium \
         fast-fade, medium hazard-survival, mac retry backoff, mac fresh \
         backoff, sim localization noise) are all on counter-keyed \
         streams now — fix new sequential draws, never suppress them"
    );
    assert_eq!(
        tally
            .get("match-exhaustive")
            .copied()
            .unwrap_or_default()
            .total(),
        2,
        "match-exhaustive projections are the two observer sinks only"
    );
    assert_eq!(
        tally
            .get("shard-safety")
            .copied()
            .unwrap_or_default()
            .total(),
        0,
        "shard-safety has a zero budget: fix non-Send state, never suppress it"
    );

    // The exact budgets CI passes via --max-allows.
    let budgets: Vec<_> = ["shard-safety=0", "rng-discipline=0", "match-exhaustive=2"]
        .iter()
        .map(|s| parse_budget(s).expect("budget spec parses"))
        .collect();
    let violations = check_budgets(&tally, &budgets);
    assert!(
        violations.is_empty(),
        "suppression budgets exceeded:\n{}",
        violations
            .iter()
            .map(|f| f.message.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_covers_every_library_crate() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("workspace sources readable");
    let joined = files
        .iter()
        .map(|f| f.rel_path.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for needle in [
        "crates/radio/src/lib.rs",
        "crates/mac/src/lib.rs",
        "crates/core/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/experiments/src/lib.rs",
        "crates/lint/src/lib.rs",
    ] {
        assert!(joined.contains(needle), "walker missed {needle}");
    }
    // Vendored code, binaries and lint fixtures are out of scope —
    // fixtures are intentionally-violating code and must never be
    // scanned in workspace mode.
    assert!(!joined.contains("vendor/"), "walker must skip vendor/");
    assert!(!joined.contains("main.rs"), "walker must skip binaries");
    assert!(
        !joined.contains("fixtures/"),
        "walker must skip lint fixtures"
    );
}
