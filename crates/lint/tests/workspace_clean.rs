//! The acceptance gate from the issue: `simlint --workspace` must exit
//! 0 on this tree with an empty baseline. This test runs the same scan
//! the binary runs, so `cargo test` alone catches a regression even if
//! CI's dedicated simlint step is skipped.

use std::path::PathBuf;

use comap_lint::{collect_sources, lint_files};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_with_empty_baseline() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("workspace sources readable");
    assert!(
        files.len() > 20,
        "workspace walk found only {} sources under {} — walker broken?",
        files.len(),
        root.display()
    );
    let outcome = lint_files(&files);
    let rendered: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.message))
        .collect();
    assert!(
        outcome.findings.is_empty(),
        "workspace must lint clean with an empty baseline; findings:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn workspace_walk_covers_every_library_crate() {
    let root = workspace_root();
    let files = collect_sources(&root).expect("workspace sources readable");
    let joined = files
        .iter()
        .map(|f| f.rel_path.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    for needle in [
        "crates/radio/src/lib.rs",
        "crates/mac/src/lib.rs",
        "crates/core/src/lib.rs",
        "crates/sim/src/lib.rs",
        "crates/experiments/src/lib.rs",
        "crates/lint/src/lib.rs",
    ] {
        assert!(joined.contains(needle), "walker missed {needle}");
    }
    // Vendored code and binaries are out of scope.
    assert!(!joined.contains("vendor/"), "walker must skip vendor/");
    assert!(!joined.contains("main.rs"), "walker must skip binaries");
}
