//! Every simlint rule must catch its seeded-violation fixture — and
//! nothing else in it. These tests pin the exact set of (rule, line)
//! pairs each fixture produces, so a lexer or rule regression that
//! silently stops detecting a class of violation fails loudly.

use comap_lint::{lint_files, Rule, SourceFile};

fn fixture(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
    SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        text: text.to_string(),
    }
}

/// `(rule, line)` pairs of all findings, sorted.
fn findings(files: &[SourceFile]) -> Vec<(Rule, u32)> {
    let outcome = lint_files(files);
    outcome.findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn lines_for(files: &[SourceFile], rule: Rule) -> Vec<u32> {
    findings(files)
        .into_iter()
        .filter(|(r, _)| *r == rule)
        .map(|(_, l)| l)
        .collect()
}

fn line_of(text: &str, needle: &str) -> u32 {
    for (i, l) in text.lines().enumerate() {
        if l.contains(needle) {
            return (i + 1) as u32;
        }
    }
    panic!("fixture lost its marker: {needle}");
}

#[test]
fn unit_hygiene_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/unit_hygiene.rs");
    let files = [fixture("radio", "crates/radio/src/unit_hygiene.rs", text)];
    let expected = vec![
        line_of(text, "pub fn set_tx_power"),
        line_of(text, "pub fn record_rssi"),
        line_of(text, "pub fn pathloss_at"),
        line_of(text, "pub fn capture_margin"),
        line_of(text, "pub fn capture_margin"), // sinr and threshold_db
    ];
    assert_eq!(lines_for(&files, Rule::UnitHygiene), expected);
    // Nothing but unit-hygiene fires on this fixture.
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::UnitHygiene));
    // The same file outside the physics crates is clean.
    assert!(findings(&[fixture(
        "experiments",
        "crates/experiments/src/unit_hygiene.rs",
        text
    )])
    .is_empty());
}

#[test]
fn determinism_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/determinism.rs");
    let files = [fixture("sim", "crates/sim/src/determinism.rs", text)];
    let expected = vec![
        line_of(text, "use std::collections::HashMap;"),
        line_of(text, "pub fn dedupe"),
        line_of(text, "let t = std::time::Instant::now();"),
        line_of(text, "let s = std::time::SystemTime::now();"),
        line_of(text, "let mut rng = rand::thread_rng();"),
    ];
    assert_eq!(lines_for(&files, Rule::Determinism), expected);
    assert_eq!(lint_files(&files).suppressed, 1, "profiled() is suppressed");
    // mac and core are also in scope...
    assert_eq!(
        lines_for(
            &[fixture("mac", "crates/mac/src/determinism.rs", text)],
            Rule::Determinism
        )
        .len(),
        5
    );
    // ...but the experiments crate is not.
    assert!(lines_for(
        &[fixture(
            "experiments",
            "crates/experiments/src/determinism.rs",
            text
        )],
        Rule::Determinism
    )
    .is_empty());
}

#[test]
fn panic_policy_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/panic_policy.rs");
    let files = [fixture("core", "crates/core/src/panic_policy.rs", text)];
    let expected = vec![
        line_of(text, "*xs.first().unwrap()"),
        line_of(text, "*xs.get(1).expect(\"has two elements\")"),
        line_of(text, "panic!(\"unconditional\");"),
        line_of(text, "todo!()"),
    ];
    assert_eq!(lines_for(&files, Rule::PanicPolicy), expected);
    assert_eq!(
        lint_files(&files).suppressed,
        1,
        "justified() is suppressed"
    );
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::PanicPolicy));
}

#[test]
fn float_eq_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/float_eq.rs");
    let files = [fixture("core", "crates/core/src/float_eq.rs", text)];
    let expected = vec![
        line_of(text, "let a = x == 0.0;"),
        line_of(text, "let b = 1.5 != x;"),
        line_of(text, "let c = x == 1e-9;"),
    ];
    assert_eq!(lines_for(&files, Rule::FloatEq), expected);
    assert_eq!(lint_files(&files).suppressed, 1, "sentinel g is suppressed");
}

#[test]
fn event_completeness_fixture_is_fully_detected() {
    let observe = include_str!("../fixtures/event_completeness/observe.rs");
    let sim = include_str!("../fixtures/event_completeness/sim.rs");
    let files = [
        fixture("sim", "crates/sim/src/observe.rs", observe),
        fixture("sim", "crates/sim/src/sim.rs", sim),
    ];
    let expected = vec![
        line_of(observe, "Orphan { node: u32 },"),
        line_of(observe, "BareOrphan,"),
        line_of(observe, "FrameOrphaned { node: u32, dst: u32, seq: u64 },"),
    ];
    assert_eq!(lines_for(&files, Rule::EventCompleteness), expected);
    let outcome = lint_files(&files);
    let messages: Vec<&str> = outcome
        .findings
        .iter()
        .map(|f| f.message.as_str())
        .collect();
    assert!(messages[0].contains("SimEvent::Orphan"), "{messages:?}");
    assert!(messages[1].contains("SimEvent::BareOrphan"), "{messages:?}");
    assert!(
        messages[2].contains("SimEvent::FrameOrphaned"),
        "{messages:?}"
    );
    // The `frame_kind` projection in sim.rs carries a wildcard arm over
    // `SimEvent` patterns — the match-exhaustive rule must see it from
    // arm evidence alone.
    assert_eq!(
        lines_for(&files, Rule::MatchExhaustive),
        vec![line_of(sim, "_ => None,")]
    );
}

#[test]
fn backend_exhaustive_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/backend_exhaustive.rs");
    let files = [fixture("sim", "crates/sim/src/backend_exhaustive.rs", text)];
    let expected = vec![
        line_of(text, "_ => false,"),
        line_of(text, "MediumBackend::Exhaustive | _ => 1,"),
        line_of(text, "_ if quick => 1,"),
    ];
    assert_eq!(lines_for(&files, Rule::BackendExhaustive), expected);
    assert_eq!(
        lint_files(&files).suppressed,
        1,
        "justified() is suppressed"
    );
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::BackendExhaustive));
    // The experiments crate is also in scope...
    assert_eq!(
        lines_for(
            &[fixture(
                "experiments",
                "crates/experiments/src/backend_exhaustive.rs",
                text
            )],
            Rule::BackendExhaustive
        )
        .len(),
        3
    );
    // ...but the physics crates, which never see a backend, are not.
    assert!(findings(&[fixture(
        "radio",
        "crates/radio/src/backend_exhaustive.rs",
        text
    )])
    .is_empty());
}

#[test]
fn shard_safety_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/shard_safety.rs");
    let files = [fixture("sim", "crates/sim/src/shard_safety.rs", text)];
    let expected = vec![
        line_of(text, "use std::rc::Rc;"),
        line_of(text, "use std::cell::{Cell, RefCell};"), // Cell
        line_of(text, "use std::cell::{Cell, RefCell};"), // RefCell
        line_of(text, "static mut EVENT_COUNTER"),
        line_of(text, "thread_local! {"),
        line_of(text, "shared: Rc<RefCell<Vec<u64>>>,"), // Rc
        line_of(text, "shared: Rc<RefCell<Vec<u64>>>,"), // RefCell
        line_of(text, "raw: *const u8,"),
    ];
    assert_eq!(lines_for(&files, Rule::ShardSafety), expected);
    assert_eq!(
        lint_files(&files).suppressed,
        1,
        "Scratch's Cell is suppressed"
    );
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::ShardSafety));
    // mac, core and radio are also in scope...
    for crate_name in ["mac", "core", "radio"] {
        assert_eq!(
            lines_for(
                &[fixture(crate_name, "crates/x/src/shard_safety.rs", text)],
                Rule::ShardSafety
            )
            .len(),
            8
        );
    }
    // ...but the experiments crate is not sharded.
    assert!(lines_for(
        &[fixture(
            "experiments",
            "crates/experiments/src/shard_safety.rs",
            text
        )],
        Rule::ShardSafety
    )
    .is_empty());

    let clean = include_str!("../fixtures/shard_safety_clean.rs");
    assert!(findings(&[fixture(
        "sim",
        "crates/sim/src/shard_safety_clean.rs",
        clean
    )])
    .is_empty());
}

#[test]
fn rng_discipline_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/rng_discipline.rs");
    let files = [fixture("sim", "crates/sim/src/rng_discipline.rs", text)];
    let expected = vec![
        line_of(text, "self.rng.gen::<f64>()"), // fade
        line_of(text, "draw_slots(stage, &mut self.rng)"),
        line_of(text, "local.gen::<f64>()"),
    ];
    assert_eq!(lines_for(&files, Rule::RngDiscipline), expected);
    assert_eq!(
        lint_files(&files).suppressed,
        1,
        "survival()'s fixture allow must be parsed and counted"
    );
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::RngDiscipline));
    // mac and core are also in scope; experiments is not.
    assert_eq!(
        lines_for(
            &[fixture("mac", "crates/mac/src/rng_discipline.rs", text)],
            Rule::RngDiscipline
        )
        .len(),
        3
    );
    assert!(lines_for(
        &[fixture(
            "experiments",
            "crates/experiments/src/rng_discipline.rs",
            text
        )],
        Rule::RngDiscipline
    )
    .is_empty());

    let clean = include_str!("../fixtures/rng_discipline_clean.rs");
    assert!(findings(&[fixture(
        "sim",
        "crates/sim/src/rng_discipline_clean.rs",
        clean
    )])
    .is_empty());
}

#[test]
fn match_exhaustive_fixture_is_fully_detected() {
    let text = include_str!("../fixtures/match_exhaustive.rs");
    let files = [fixture("sim", "crates/sim/src/match_exhaustive.rs", text)];
    let expected = vec![
        line_of(text, "_ => false,"),
        line_of(text, "SimEvent::Retry { .. } | _ => 1,"),
        line_of(text, "_ if fast => 1,"),
        line_of(text, "_ => 2,"),
    ];
    assert_eq!(lines_for(&files, Rule::MatchExhaustive), expected);
    assert_eq!(
        lint_files(&files).suppressed,
        1,
        "projected() is a justified projection"
    );
    assert!(findings(&files)
        .iter()
        .all(|(r, _)| *r == Rule::MatchExhaustive));
    // experiments observers are in scope; the physics crates never see
    // SimEvent dispatches and mac is out of the observer layer.
    assert_eq!(
        lines_for(
            &[fixture(
                "experiments",
                "crates/experiments/src/match_exhaustive.rs",
                text
            )],
            Rule::MatchExhaustive
        )
        .len(),
        4
    );
    assert!(lines_for(
        &[fixture(
            "radio",
            "crates/radio/src/match_exhaustive.rs",
            text
        )],
        Rule::MatchExhaustive
    )
    .is_empty());

    let clean = include_str!("../fixtures/match_exhaustive_clean.rs");
    assert!(findings(&[fixture(
        "sim",
        "crates/sim/src/match_exhaustive_clean.rs",
        clean
    )])
    .is_empty());
}

#[test]
fn suppression_budget_fixture_trips_and_respects_budgets() {
    use comap_lint::report::{check_budgets, parse_budget, tally_allows};

    let text = include_str!("../fixtures/suppression_budget.rs");
    let files = [fixture(
        "core",
        "crates/core/src/suppression_budget.rs",
        text,
    )];
    let outcome = lint_files(&files);
    // All three panic-policy sites are suppressed by their directives…
    assert!(outcome.findings.is_empty());
    assert_eq!(outcome.suppressed, 3);
    // …and the directive census sees exactly three allows.
    let tally = tally_allows(&outcome, &[]);
    assert_eq!(
        tally
            .get("panic-policy")
            .copied()
            .unwrap_or_default()
            .total(),
        3
    );
    let over = check_budgets(&tally, &[parse_budget("panic-policy=2").expect("spec")]);
    assert_eq!(over.len(), 1);
    assert_eq!(over[0].rule, Rule::SuppressionBudget);
    let within = check_budgets(&tally, &[parse_budget("panic-policy=3").expect("spec")]);
    assert!(within.is_empty());

    let clean = include_str!("../fixtures/suppression_budget_clean.rs");
    let clean_files = [fixture(
        "core",
        "crates/core/src/suppression_budget_clean.rs",
        clean,
    )];
    let clean_outcome = lint_files(&clean_files);
    assert!(clean_outcome.findings.is_empty());
    let clean_tally = tally_allows(&clean_outcome, &[]);
    assert!(check_budgets(
        &clean_tally,
        &[parse_budget("panic-policy=1").expect("spec")]
    )
    .is_empty());
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let text = "// simlint: allow(panic-policy)\nfn f() { x.unwrap(); }\n";
    let files = [fixture("core", "crates/core/src/x.rs", text)];
    let got = findings(&files);
    // The bare allow does NOT silence the finding, and is reported.
    assert_eq!(got, vec![(Rule::BadSuppression, 1), (Rule::PanicPolicy, 2)]);
}

#[test]
fn baseline_key_is_line_number_independent() {
    let a = fixture("core", "crates/core/src/x.rs", "fn f() { x.unwrap(); }\n");
    let b = fixture(
        "core",
        "crates/core/src/x.rs",
        "// moved down by an edit\n\nfn f() { x.unwrap(); }\n",
    );
    let ka: Vec<String> = lint_files(&[a])
        .findings
        .iter()
        .map(|f| f.baseline_key())
        .collect();
    let kb: Vec<String> = lint_files(&[b])
        .findings
        .iter()
        .map(|f| f.baseline_key())
        .collect();
    assert_eq!(ka, kb);
}
