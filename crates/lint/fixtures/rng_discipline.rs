//! Seeded violations for the `rng-discipline` rule. This file is a lint
//! *fixture* (never compiled): it pins what the rule must flag —
//! sequential `StdRng` draws in hot-path code — and what it must leave
//! alone (constructors, tests, keyed streams).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct Engine {
    rng: StdRng,
    seed: u64,
}

impl Engine {
    // OK: constructors may derive seeds from a sequential stream.
    pub fn new(mut rng: StdRng) -> Engine {
        let seed = rng.gen::<u64>();
        Engine { rng, seed }
    }

    // OK: with_* constructors are setup, not hot path.
    pub fn with_jitter(mut rng: StdRng, jitter: u64) -> Engine {
        let seed = rng.gen::<u64>() ^ jitter;
        Engine { rng, seed }
    }

    // VIOLATION: hot-path draw-method call on the struct's stream.
    pub fn fade(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    // VIOLATION: handing the stream to a callee via &mut.
    pub fn backoff(&mut self, stage: u32) -> u64 {
        draw_slots(stage, &mut self.rng)
    }

    // VIOLATION: a local StdRng binding drawn sequentially.
    pub fn rekeyed_wrong(&self) -> f64 {
        let mut local = StdRng::seed_from_u64(self.seed);
        local.gen::<f64>()
    }

    // OK: counter-based keyed stream — no mutable RNG state at all.
    pub fn fade_keyed(&self, link: u32, counter: u64) -> f64 {
        keyed_normal(self.seed, link, counter)
    }

    // OK (suppressed): a justified allow is still parsed and counted —
    // the workspace budget of 0 is what rejects it there. This fixture
    // pins that suppression accounting keeps working.
    pub fn survival(&mut self) -> f64 {
        // simlint: allow(rng-discipline) — fixture-only: pins suppression counting against the zero workspace budget
        self.rng.gen::<f64>()
    }
}

// OK: generic helpers taking `impl Rng` are not themselves draws; the
// rule fires at the call site that threads the sequential stream in.
fn draw_slots<R: Rng + ?Sized>(stage: u32, rng: &mut R) -> u64 {
    rng.gen_range(0..(1u64 << stage))
}

fn keyed_normal(seed: u64, link: u32, counter: u64) -> f64 {
    let x = seed ^ (link as u64) ^ counter;
    (x as f64) / (u64::MAX as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // OK: tests may draw sequentially.
    #[test]
    fn seeded_draws() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen::<f64>() >= 0.0);
    }
}
