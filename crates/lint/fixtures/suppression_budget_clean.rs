//! The within-budget twin of `suppression_budget.rs`: one justified
//! suppression, under every budget the gate enforces. A
//! `--max-allows panic-policy=1` budget must pass on this file.

pub fn first(xs: &[u32]) -> u32 {
    // simlint: allow(panic-policy) — caller guarantees a non-empty slice
    *xs.first().expect("non-empty")
}

pub fn safe(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}
