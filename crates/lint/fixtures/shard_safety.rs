//! Seeded violations for the `shard-safety` rule. This file is a lint
//! *fixture* (never compiled): it pins what the rule must flag —
//! non-`Send` shared state in the crates the sharded engine will run in
//! parallel — and what it must leave alone.

// VIOLATION: Rc is shared ownership without Send.
use std::rc::Rc;
// VIOLATION (two on one use): RefCell and Cell are single-thread
// interior mutability.
use std::cell::{Cell, RefCell};

// VIOLATION: static mut is shared mutable state.
static mut EVENT_COUNTER: u64 = 0;

// VIOLATION: thread_local pins state to a worker thread.
thread_local! {
    static SCRATCH: Vec<u8> = Vec::new();
}

pub struct Timeline {
    // VIOLATION: Rc<RefCell<..>> field (one finding per banned type).
    shared: Rc<RefCell<Vec<u64>>>,
    // VIOLATION: raw-pointer field makes the struct non-Send.
    raw: *const u8,
    // OK: owned state is always shard-safe.
    counts: Vec<u64>,
}

// OK (suppressed): justified single-thread cache.
// simlint: allow(shard-safety) — scratch buffer never crosses the shard boundary
pub struct Scratch(Cell<u64>);

#[cfg(test)]
mod tests {
    // OK: tests may use anything.
    use std::rc::Rc;

    fn t() {
        let shared = Rc::new(std::cell::RefCell::new(0u32));
        *shared.borrow_mut() += 1;
    }
}
