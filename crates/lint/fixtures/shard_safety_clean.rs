//! The shard-safe twin of `shard_safety.rs`: the same shapes built on
//! `Send` primitives. The rule must report nothing here.

use std::sync::{Arc, Mutex};

pub struct Timeline {
    // OK: Arc<Mutex<..>> is the sanctioned shared-state shape.
    shared: Arc<Mutex<Vec<u64>>>,
    // OK: an index instead of a raw pointer.
    head: usize,
    counts: Vec<u64>,
}

pub struct Counter {
    // OK: atomics are Send + Sync.
    hits: std::sync::atomic::AtomicU64,
}

pub fn bump(t: &Timeline) -> usize {
    // OK: `static` without `mut` is a constant, not shared mutable state.
    static LIMIT: usize = 1024;
    t.counts.len().min(LIMIT)
}
