//! Seeded violations for the `match-exhaustive` rule. This file is a
//! lint *fixture* (never compiled): it pins what the rule must flag —
//! wildcard arms in matches dispatching on `SimEvent` — and what it
//! must leave alone. Evidence is the parsed arm patterns, not the
//! scrutinee spelling.

use crate::observe::SimEvent;

/// Exhaustive observer dispatch: clean.
pub fn class(e: &SimEvent) -> u32 {
    match e {
        SimEvent::TxBegin { .. } => 0,
        SimEvent::TxEnd { .. } => 1,
        SimEvent::Retry { .. } => 2,
    }
}

/// Wildcard arm absorbing future events: flagged.
pub fn is_tx(e: &SimEvent) -> bool {
    match e {
        SimEvent::TxBegin { .. } => true,
        _ => false,
    }
}

/// The scrutinee is an opaque call — arm evidence alone must trigger
/// the rule. Wildcard inside an or-pattern: flagged.
pub fn weight(q: &Queue) -> u32 {
    match q.head() {
        SimEvent::Retry { .. } | _ => 1,
    }
}

/// Guarded wildcard: flagged.
pub fn sampled(e: &SimEvent, fast: bool) -> u32 {
    match e {
        SimEvent::TxBegin { .. } => 0,
        _ if fast => 1,
        _ => 2,
    }
}

/// Justified projection: suppressed, not reported.
pub fn projected(e: &SimEvent) -> u32 {
    match e {
        SimEvent::TxBegin { .. } => 1,
        // simlint: allow(match-exhaustive) — deliberate projection: only TX events feed this counter
        _ => 0,
    }
}

/// Field wildcards and rest patterns are not wildcard arms: clean.
pub fn src_of(e: &SimEvent) -> u32 {
    match e {
        SimEvent::TxBegin { src, dst: _, .. } => *src,
        SimEvent::TxEnd { src, .. } => *src,
        SimEvent::Retry { node, .. } => *node,
    }
}

/// A match over something else entirely: the rule must not fire.
pub fn bucket(n: u32) -> u32 {
    match n {
        0 => 0,
        _ => 1,
    }
}
