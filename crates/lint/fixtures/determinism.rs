//! Seeded determinism violations. Linted as if it lived in
//! `crates/sim/src/`.

// VIOLATION: HashMap import.
use std::collections::HashMap;
// OK: ordered container.
use std::collections::BTreeMap;

// VIOLATION: HashSet in a type position.
pub fn dedupe(xs: &[u32]) -> std::collections::HashSet<u32> {
    xs.iter().copied().collect()
}

pub fn stamp() -> u64 {
    // VIOLATION: wall clock.
    let t = std::time::Instant::now();
    // VIOLATION: wall clock.
    let s = std::time::SystemTime::now();
    let _ = (t, s);
    0
}

pub fn draw() -> u32 {
    // VIOLATION: thread-local RNG.
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    4
}

// OK (suppressed): profiling measures wall time by design.
// simlint: allow(determinism) — profiling-only wall clock, never feeds sim state
pub fn profiled() -> std::time::Instant {
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    // OK: tests may use anything.
    use std::collections::HashMap;

    fn t() {
        let _: HashMap<u32, u32> = HashMap::new();
        let _ = std::time::Instant::now();
    }
}
