//! Seeded event-completeness fixture: the enum declaration. Linted as
//! if it were `crates/sim/src/observe.rs`.

/// The instrumentation event enum the rule audits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// Emitted by `sim.rs` below — no finding.
    TxBegin { src: u32, dst: u32 },
    /// Matched but never constructed — finding.
    Orphan { node: u32 },
    /// Unit variant never constructed — finding.
    BareOrphan,
    /// Constructed without braces — no finding.
    BareUsed,
    /// Frame-lifecycle shape, emitted through a wrapper call — no
    /// finding.
    FrameTx { node: u32, dst: u32, seq: u64 },
    /// Frame-lifecycle shape, matched but never constructed — finding.
    FrameOrphaned { node: u32, dst: u32, seq: u64 },
}

impl SimEvent {
    /// Exhaustive matches here must not count as emissions.
    pub fn name(&self) -> &'static str {
        match self {
            SimEvent::TxBegin { .. } => "tx_begin",
            SimEvent::Orphan { .. } => "orphan",
            SimEvent::BareOrphan => "bare_orphan",
            SimEvent::BareUsed => "bare_used",
            SimEvent::FrameTx { .. } => "frame_tx",
            SimEvent::FrameOrphaned { .. } => "frame_orphaned",
        }
    }
}
