//! Seeded event-completeness fixture: the emission side.

use super::observe::SimEvent;

pub fn emit(src: u32, dst: u32) -> SimEvent {
    // Emission: TxBegin is constructed.
    SimEvent::TxBegin { src, dst }
}

pub fn emit_bare() -> SimEvent {
    // Emission: unit variant constructed without braces.
    SimEvent::BareUsed
}

pub fn classify(e: &SimEvent) -> u32 {
    // Patterns must not count as emissions for Orphan / BareOrphan.
    match e {
        SimEvent::TxBegin { .. } => 0,
        SimEvent::Orphan { .. } => 1,
        SimEvent::BareOrphan => 2,
        SimEvent::BareUsed => 3,
    }
}

pub fn is_orphan(e: &SimEvent) -> bool {
    matches!(e, SimEvent::Orphan { .. })
}
