//! Seeded event-completeness fixture: the emission side.

use super::observe::SimEvent;

pub fn emit(src: u32, dst: u32) -> SimEvent {
    // Emission: TxBegin is constructed.
    SimEvent::TxBegin { src, dst }
}

pub fn emit_bare() -> SimEvent {
    // Emission: unit variant constructed without braces.
    SimEvent::BareUsed
}

pub fn classify(e: &SimEvent) -> u32 {
    // Patterns must not count as emissions for Orphan / BareOrphan.
    match e {
        SimEvent::TxBegin { .. } => 0,
        SimEvent::Orphan { .. } => 1,
        SimEvent::BareOrphan => 2,
        SimEvent::BareUsed => 3,
    }
}

pub fn is_orphan(e: &SimEvent) -> bool {
    matches!(e, SimEvent::Orphan { .. })
}

pub fn queue(out: &mut Vec<SimEvent>, node: u32, dst: u32, seq: u64) {
    // Emission through a wrapper call, as the MAC does with
    // `MacAction::Emit(...)`: still counts as construction.
    out.push(SimEvent::FrameTx { node, dst, seq });
}

pub fn frame_kind(e: &SimEvent) -> Option<u64> {
    // Patterns over frame-lifecycle variants are not emissions:
    // FrameOrphaned stays an orphan.
    match e {
        SimEvent::FrameTx { seq, .. } => Some(*seq),
        SimEvent::FrameOrphaned { seq, .. } => Some(*seq),
        _ => None,
    }
}
