//! The disciplined twin of `rng_discipline.rs`: every per-event draw
//! goes through a counter-based keyed stream, and the only sequential
//! use left is seed derivation inside a constructor. The rule must
//! report nothing here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct Engine {
    seed: u64,
}

impl Engine {
    // OK: one-time seed derivation in a constructor.
    pub fn new(mut rng: StdRng) -> Engine {
        Engine {
            seed: rng.gen::<u64>(),
        }
    }

    // OK: pure keyed stream — (seed, key, counter) in, sample out.
    pub fn fade(&self, link: u32, counter: u64) -> f64 {
        keyed_normal(self.seed, link, counter)
    }

    // OK: derived sub-seed, still no mutable stream in the hot path.
    pub fn backoff(&self, node: u32, attempt: u64) -> u64 {
        mix(self.seed ^ (node as u64), attempt) & 0xff
    }
}

fn keyed_normal(seed: u64, link: u32, counter: u64) -> f64 {
    (mix(seed ^ (link as u64), counter) as f64) / (u64::MAX as f64)
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}
