//! Seeded panic-policy violations. Linted as library code.

pub fn first(xs: &[u32]) -> u32 {
    // VIOLATION: unwrap in library code.
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    // VIOLATION: expect in library code.
    *xs.get(1).expect("has two elements")
}

pub fn boom() {
    // VIOLATION: panic! in library code.
    panic!("unconditional");
}

pub fn later() {
    // VIOLATION: todo! in library code.
    todo!()
}

pub fn guarded(xs: &[u32]) -> u32 {
    // OK: assertions state invariants and are exempt.
    assert!(!xs.is_empty(), "caller guarantees non-empty");
    debug_assert!(xs[0] < 100);
    xs[0]
}

pub fn justified(xs: &[u32]) -> u32 {
    // OK (suppressed): the invariant is stated.
    // simlint: allow(panic-policy) — caller always passes a non-empty slice
    *xs.first().expect("non-empty by construction")
}

pub fn spelled_out() -> Option<u32> {
    // OK: unwrap_or / unwrap_or_else are not panics.
    let x: Option<u32> = None;
    Some(x.unwrap_or(3).max(x.unwrap_or_else(|| 4)))
}

/// OK: doc examples are comments to the scanner.
///
/// ```rust
/// let v = vec![1];
/// assert_eq!(*v.first().unwrap(), 1);
/// ```
pub fn documented() {}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("ok"), 2);
    }

    #[test]
    #[should_panic]
    fn tests_may_panic() {
        panic!("expected");
    }
}
