//! The exhaustive twin of `match_exhaustive.rs`: every `SimEvent`
//! dispatch names each variant it handles, with no wildcard arm. The
//! rule must report nothing here.

use crate::observe::SimEvent;

pub fn class(e: &SimEvent) -> u32 {
    match e {
        SimEvent::TxBegin { .. } => 0,
        SimEvent::TxEnd { .. } => 1,
        SimEvent::Retry { .. } => 2,
    }
}

pub fn label(e: &SimEvent) -> &'static str {
    match e {
        SimEvent::TxBegin { .. } => "tx_begin",
        SimEvent::TxEnd { .. } => "tx_end",
        SimEvent::Retry { .. } => "retry",
    }
}

/// Wildcards over non-event scrutinees stay legal.
pub fn bucket(n: u32) -> &'static str {
    match n {
        0 => "empty",
        _ => "busy",
    }
}
