//! Seeded unit-hygiene violations: public functions taking raw `f64`
//! where the parameter name implies a physical unit. Linted as if it
//! lived in `crates/radio/src/`.

pub struct Dbm(f64);

// VIOLATION: power as raw f64.
pub fn set_tx_power(power: f64) -> f64 {
    power
}

// VIOLATION: *_dbm as raw f64.
pub fn record_rssi(rssi_dbm: f64) {
    let _ = rssi_dbm;
}

// VIOLATION: dist* as raw f64.
pub fn pathloss_at(distance: f64) -> f64 {
    distance * 2.0
}

// TWO VIOLATIONS: sinr and *_db as raw f64.
pub fn capture_margin(sinr: f64, threshold_db: f64) -> bool {
    sinr > threshold_db
}

// OK: typed parameter.
pub fn typed_power(power: Dbm) -> Dbm {
    power
}

// OK: private functions are outside the rule.
fn internal_power(power: f64) -> f64 {
    power
}

// OK: unit-free names may stay raw.
pub fn with_alpha(alpha: f64, frequency_hz: f64) -> f64 {
    alpha + frequency_hz
}

// OK (suppressed): serialization boundary keeps the raw value.
// simlint: allow(unit-hygiene) — JSON boundary: the wire format carries raw dBm
pub fn export_dbm(value_dbm: f64) -> f64 {
    value_dbm
}
