//! Seeded input for the `suppression-budget` gate. This file is a lint
//! *fixture* (never compiled): it carries three justified
//! `panic-policy` suppressions, so a `--max-allows panic-policy=2`
//! budget must fail on it while `=3` passes. The directives themselves
//! are well-formed — the finding belongs to the budget, not the sites.

pub fn first(xs: &[u32]) -> u32 {
    // simlint: allow(panic-policy) — caller guarantees a non-empty slice
    *xs.first().expect("non-empty")
}

pub fn second(xs: &[u32]) -> u32 {
    // simlint: allow(panic-policy) — index checked by the caller's loop bound
    *xs.get(1).expect("two elements")
}

pub fn third(xs: &[u32]) -> u32 {
    // simlint: allow(panic-policy) — invariant: table rows always have three columns
    *xs.get(2).expect("three elements")
}
