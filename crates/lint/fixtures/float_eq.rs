//! Seeded float-eq violations. Linted as library code.

pub fn checks(x: f64, n: u32, label: &str) -> bool {
    // VIOLATION: == against a float literal.
    let a = x == 0.0;
    // VIOLATION: != against a float literal.
    let b = 1.5 != x;
    // VIOLATION: scientific-notation literal.
    let c = x == 1e-9;
    // OK: integer comparison.
    let d = n == 0;
    // OK: ordering comparisons are fine.
    let e = x <= 0.0 && x >= -1.0;
    // OK: strings and tuple fields are not floats.
    let f = label == "0.0";
    // OK (suppressed): exact sentinel comparison.
    // simlint: allow(float-eq) — 0.0 is an exact sentinel set by the caller
    let g = x == 0.0;
    a || b || c || d || e || f || g
}

pub struct P(pub u128);

impl P {
    pub fn is_zero(&self) -> bool {
        // OK: u128 field, integer literal.
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_compare_exactly() {
        assert!(super::checks(0.0, 0, "x") || 1.0 == 1.0);
    }
}
