//! Seeded violations for the `backend-exhaustive` rule. This file is a
//! lint *fixture* (never compiled): it pins what the rule must flag —
//! wildcard arms in `MediumBackend` dispatches — and what it must leave
//! alone.

use crate::medium::MediumBackend;

/// Exhaustive dispatch: clean.
pub fn label(backend: MediumBackend) -> &'static str {
    match backend {
        MediumBackend::Exhaustive => "exhaustive",
        MediumBackend::Culled => "culled",
    }
}

/// Wildcard arm absorbing future backends: flagged.
pub fn is_culled(backend: MediumBackend) -> bool {
    match backend {
        MediumBackend::Culled => true,
        _ => false,
    }
}

/// Wildcard inside an or-pattern: flagged.
pub fn cost_class(backend: MediumBackend) -> u32 {
    match backend {
        MediumBackend::Exhaustive | _ => 1,
    }
}

/// Guarded wildcard: flagged.
pub fn guarded(backend: MediumBackend, quick: bool) -> u32 {
    match backend {
        MediumBackend::Culled => 0,
        _ if quick => 1,
        MediumBackend::Exhaustive => 2,
    }
}

/// Justified wildcard: suppressed, not reported.
pub fn justified(backend: MediumBackend) -> u32 {
    match backend {
        MediumBackend::Culled => 0,
        // simlint: allow(backend-exhaustive) — transitional shim removed with the legacy path
        _ => 1,
    }
}

/// A match on something else entirely: the rule must not fire.
pub fn unrelated(n: u32) -> u32 {
    match n {
        0 => 1,
        _ => 0,
    }
}

/// A non-backend match nested inside a backend dispatch: the inner
/// wildcard belongs to the inner match and must not fire either.
pub fn nested(backend: MediumBackend, n: u32) -> u32 {
    match backend {
        MediumBackend::Exhaustive => match n {
            0 => 1,
            _ => 2,
        },
        MediumBackend::Culled => 3,
    }
}
