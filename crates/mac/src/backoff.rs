//! The DCF backoff counter.
//!
//! A node picks a uniform backoff in `[0, CW]` slots, decrements it while
//! the medium is idle, freezes it while busy, and transmits when it reaches
//! zero. Two contention-window policies are supported:
//!
//! * [`BackoffPolicy::Beb`] — standard binary exponential backoff
//!   (`CW_min … CW_max`, doubling after each failed attempt), used by the
//!   DCF baseline;
//! * [`BackoffPolicy::Constant`] — the fixed window `W` assumed by the
//!   analytical model (paper Section IV-D2, `τ = 2/(W+1)`), and the value
//!   CO-MAP's adaptation table installs per hidden-terminal count.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the contention window evolves across retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackoffPolicy {
    /// Binary exponential backoff between `cw_min` and `cw_max`
    /// (inclusive window bounds, conventionally `2^k − 1`).
    Beb {
        /// Initial (and post-success) contention window.
        cw_min: u32,
        /// Ceiling reached after repeated failures.
        cw_max: u32,
    },
    /// A fixed contention window `w` regardless of retries.
    Constant {
        /// The constant window.
        w: u32,
    },
}

impl BackoffPolicy {
    /// The 802.11b defaults: `CW_min = 31`, `CW_max = 1023`.
    pub const DSSS_DEFAULT: BackoffPolicy = BackoffPolicy::Beb {
        cw_min: 31,
        cw_max: 1023,
    };

    /// The contention window for a given retry count.
    pub fn window(self, retries: u32) -> u32 {
        match self {
            BackoffPolicy::Beb { cw_min, cw_max } => {
                let grown = (u64::from(cw_min) + 1) << retries.min(16);
                ((grown - 1) as u32).min(cw_max)
            }
            BackoffPolicy::Constant { w } => w,
        }
    }
}

/// A backoff counter mid-flight.
///
/// The counter is expressed in whole slots; the simulator converts elapsed
/// idle time into decremented slots when freezing.
///
/// ```rust
/// use comap_mac::backoff::{Backoff, BackoffPolicy};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut b = Backoff::draw(BackoffPolicy::Constant { w: 15 }, 0, &mut rng);
/// let start = b.slots_remaining();
/// b.consume(3);
/// assert_eq!(b.slots_remaining(), start.saturating_sub(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backoff {
    slots: u32,
}

impl Backoff {
    /// Draws a fresh uniform backoff in `[0, CW(retries)]`.
    pub fn draw<R: Rng + ?Sized>(policy: BackoffPolicy, retries: u32, rng: &mut R) -> Self {
        let cw = policy.window(retries);
        Backoff {
            slots: rng.gen_range(0..=cw),
        }
    }

    /// A backoff with an explicit number of slots (mainly for tests).
    pub fn from_slots(slots: u32) -> Self {
        Backoff { slots }
    }

    /// Slots still to be counted down.
    pub fn slots_remaining(self) -> u32 {
        self.slots
    }

    /// `true` once the counter reached zero and the node may transmit.
    pub fn is_expired(self) -> bool {
        self.slots == 0
    }

    /// Consumes up to `slots` idle slots (saturating at zero), returning
    /// how many were actually consumed.
    pub fn consume(&mut self, slots: u32) -> u32 {
        let consumed = self.slots.min(slots);
        self.slots -= consumed;
        consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beb_window_doubles_and_caps() {
        let p = BackoffPolicy::DSSS_DEFAULT;
        assert_eq!(p.window(0), 31);
        assert_eq!(p.window(1), 63);
        assert_eq!(p.window(2), 127);
        assert_eq!(p.window(5), 1023);
        assert_eq!(p.window(6), 1023);
        assert_eq!(p.window(60), 1023); // shift is clamped, no overflow
    }

    #[test]
    fn constant_window_ignores_retries() {
        let p = BackoffPolicy::Constant { w: 255 };
        assert_eq!(p.window(0), 255);
        assert_eq!(p.window(9), 255);
    }

    #[test]
    fn draw_is_within_window() {
        let mut rng = StdRng::seed_from_u64(3);
        for retries in 0..4 {
            for _ in 0..200 {
                let b = Backoff::draw(BackoffPolicy::DSSS_DEFAULT, retries, &mut rng);
                assert!(b.slots_remaining() <= BackoffPolicy::DSSS_DEFAULT.window(retries));
            }
        }
    }

    #[test]
    fn draw_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let w = 31;
        let sum: u64 = (0..n)
            .map(|_| {
                u64::from(
                    Backoff::draw(BackoffPolicy::Constant { w }, 0, &mut rng).slots_remaining(),
                )
            })
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 15.5).abs() < 0.3, "mean backoff = {mean}");
    }

    #[test]
    fn consume_freezes_at_zero() {
        let mut b = Backoff::from_slots(5);
        assert_eq!(b.consume(3), 3);
        assert!(!b.is_expired());
        assert_eq!(b.consume(10), 2);
        assert!(b.is_expired());
        assert_eq!(b.consume(1), 0);
    }

    #[test]
    fn zero_draw_expires_immediately() {
        let b = Backoff::from_slots(0);
        assert!(b.is_expired());
    }
}
