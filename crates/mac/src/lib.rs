//! # comap-mac — IEEE 802.11 MAC/PHY primitives
//!
//! The pieces of the 802.11 Distributed Coordination Function (DCF) that
//! both the plain-DCF baseline and CO-MAP build on:
//!
//! * [`time`] — integer-nanosecond simulation time and durations,
//! * [`timing`] — slot/SIFS/DIFS interframe spacing and frame airtime for
//!   the DSSS (802.11b) and ERP-OFDM (802.11g) PHYs,
//! * [`frames`] — frame kinds and on-air sizes, including CO-MAP's
//!   discovery header,
//! * [`backoff`] — the contention-window backoff counter (binary
//!   exponential or the constant window used by the analytical model),
//! * [`arq`] — the selective-repeat ARQ windows CO-MAP uses to survive
//!   ACK losses under concurrent exposed-terminal transmissions.
//!
//! Everything here is pure state-machine logic with no clocks or I/O; the
//! `comap-sim` crate drives it from a discrete-event loop.
//!
//! # Example
//!
//! Airtime of a 1500-byte payload at 11 Mbps with a long DSSS preamble:
//!
//! ```rust
//! use comap_mac::{frames::DATA_HEADER_BYTES, timing::PhyTiming};
//! use comap_radio::rates::Rate;
//!
//! let phy = PhyTiming::dsss();
//! let on_air = phy.frame_duration(DATA_HEADER_BYTES + 1500, Rate::Mbps11);
//! // 192 µs PLCP + (28 + 1500) * 8 / 11 µs ≈ 1303 µs
//! assert_eq!(on_air.as_micros_round(), 1303);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arq;
pub mod backoff;
pub mod frames;
pub mod time;
pub mod timing;

pub use arq::{Ack, SelectiveRepeatReceiver, SelectiveRepeatSender};
pub use backoff::{Backoff, BackoffPolicy};
pub use frames::FrameKind;
pub use time::{SimDuration, SimTime};
pub use timing::PhyTiming;
