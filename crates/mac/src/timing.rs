//! PHY timing: interframe spaces and frame airtimes.
//!
//! Two PHY profiles cover the paper's experiments:
//!
//! * **DSSS / HR-DSSS** (802.11b, the testbed's 2.4 GHz band, and the
//!   "HR/DSSS PHY specifications" of Table I): 20 µs slots, 10 µs SIFS,
//!   192 µs long PLCP preamble + header transmitted at 1 Mbps.
//! * **ERP-OFDM** (802.11g, used for the 6 Mbps NS-2 data rate): 9 µs
//!   slots, 10 µs SIFS, 20 µs preamble + SIGNAL, payload packed into 4 µs
//!   symbols with 16 SERVICE + 6 tail bits and a 6 µs signal extension.
//!
//! `DIFS = SIFS + 2 × slot` in both cases.

use serde::{Deserialize, Serialize};

use comap_radio::rates::{PhyStandard, Rate};

use crate::time::SimDuration;

/// Interframe spacing and preamble profile of a PHY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhyTiming {
    standard: PhyStandard,
    slot: SimDuration,
    sifs: SimDuration,
    plcp_overhead: SimDuration,
}

impl PhyTiming {
    /// DSSS / HR-DSSS (802.11b) timing with the long PLCP preamble.
    pub fn dsss() -> Self {
        PhyTiming {
            standard: PhyStandard::Dsss,
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            plcp_overhead: SimDuration::from_micros(192),
        }
    }

    /// ERP-OFDM (802.11g) timing with the 20 µs preamble+SIGNAL and long
    /// (compatibility) 20 µs slots, as used when b/g coexistence is
    /// assumed; pass `short_slots` to use 9 µs slots.
    pub fn erp_ofdm(short_slots: bool) -> Self {
        PhyTiming {
            standard: PhyStandard::ErpOfdm,
            slot: SimDuration::from_micros(if short_slots { 9 } else { 20 }),
            sifs: SimDuration::from_micros(10),
            plcp_overhead: SimDuration::from_micros(20),
        }
    }

    /// The PHY family this profile describes.
    pub fn standard(&self) -> PhyStandard {
        self.standard
    }

    /// One backoff slot.
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    /// Short interframe space (data → ACK turnaround).
    pub fn sifs(&self) -> SimDuration {
        self.sifs
    }

    /// DCF interframe space: `SIFS + 2 × slot`.
    pub fn difs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }

    /// PLCP preamble + PHY header overhead preceding the MPDU bits.
    pub fn plcp_overhead(&self) -> SimDuration {
        self.plcp_overhead
    }

    /// Airtime of an MPDU of `mpdu_bytes` at `rate`, including the PLCP
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `rate` does not belong to this PHY family.
    pub fn frame_duration(&self, mpdu_bytes: u32, rate: Rate) -> SimDuration {
        assert_eq!(
            rate.standard(),
            self.standard,
            "rate {rate} does not belong to {:?}",
            self.standard
        );
        let bits = u64::from(mpdu_bytes) * 8;
        let payload_time = match rate.bits_per_ofdm_symbol() {
            None => {
                // DSSS: bits go out serially at the nominal rate.
                let nanos = (bits as f64 * 1e9 / rate.bits_per_second()).ceil() as u64;
                SimDuration::from_nanos(nanos)
            }
            Some(ndbps) => {
                // OFDM: 16 SERVICE bits + MPDU + 6 tail bits, packed into
                // 4 µs symbols, plus the 6 µs ERP signal extension.
                let symbols = (16 + bits + 6).div_ceil(u64::from(ndbps));
                SimDuration::from_micros(symbols * 4 + 6)
            }
        };
        self.plcp_overhead + payload_time
    }

    /// Airtime of an ACK at the control rate of this PHY.
    pub fn ack_duration(&self) -> SimDuration {
        self.frame_duration(crate::frames::ACK_BYTES, self.control_rate())
    }

    /// The rate used for ACKs and other control responses: the base
    /// (most robust) rate of the family.
    pub fn control_rate(&self) -> Rate {
        match self.standard {
            PhyStandard::Dsss => Rate::Mbps1,
            PhyStandard::ErpOfdm => Rate::Mbps6,
        }
    }

    /// The rate used for CO-MAP discovery headers. Headers only need to
    /// reach *potential exposed/hidden terminals* — nodes within roughly
    /// the interference range — not the extreme edge of carrier sense, so
    /// DSSS uses 2 Mbps instead of 1 Mbps to keep the per-frame overhead
    /// tolerable (280 µs instead of 368 µs with the long preamble).
    pub fn header_rate(&self) -> Rate {
        match self.standard {
            PhyStandard::Dsss => Rate::Mbps2,
            PhyStandard::ErpOfdm => Rate::Mbps6,
        }
    }

    /// ACK timeout used by a sender: SIFS + ACK airtime + one slot of
    /// scheduling slack.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_duration() + self.slot
    }

    /// Duration of a *successful* data exchange for the analytical model
    /// (paper eq. 8): `T_s = T_HDR + T_payload + SIFS + T_ACK + DIFS`.
    pub fn success_duration(&self, payload_bytes: u32, rate: Rate) -> SimDuration {
        self.frame_duration(crate::frames::DATA_HEADER_BYTES + payload_bytes, rate)
            + self.sifs
            + self.ack_duration()
            + self.difs()
    }

    /// Duration wasted by a *collision* for the analytical model (paper
    /// eq. 8): `T_c = T_HDR + T_payload + DIFS` (no ACK follows).
    pub fn collision_duration(&self, payload_bytes: u32, rate: Rate) -> SimDuration {
        self.frame_duration(crate::frames::DATA_HEADER_BYTES + payload_bytes, rate) + self.difs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{ACK_BYTES, DATA_HEADER_BYTES};

    #[test]
    fn difs_is_sifs_plus_two_slots() {
        assert_eq!(PhyTiming::dsss().difs(), SimDuration::from_micros(50));
        assert_eq!(
            PhyTiming::erp_ofdm(true).difs(),
            SimDuration::from_micros(28)
        );
        assert_eq!(
            PhyTiming::erp_ofdm(false).difs(),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn dsss_frame_duration_reference() {
        // Classic value: 1500 B payload + 28 B MAC overhead at 11 Mbps with
        // long preamble = 192 + 1528*8/11 ≈ 1303.3 µs.
        let phy = PhyTiming::dsss();
        let d = phy.frame_duration(DATA_HEADER_BYTES + 1500, Rate::Mbps11);
        assert_eq!(d.as_micros_round(), 1303);
        // ACK at 1 Mbps: 192 + 14*8 = 304 µs.
        assert_eq!(phy.ack_duration(), SimDuration::from_micros(192 + 112));
    }

    #[test]
    fn ofdm_frame_duration_reference() {
        // 1500 B + 28 B at 54 Mbps: ceil((16+12224+6)/216) = 57 symbols
        // → 20 + 228 + 6 = 254 µs.
        let phy = PhyTiming::erp_ofdm(true);
        let d = phy.frame_duration(DATA_HEADER_BYTES + 1500, Rate::Mbps54);
        assert_eq!(d.as_micros_round(), 254);
        // ACK at 6 Mbps: ceil((16+112+6)/24) = 6 symbols → 20+24+6 = 50 µs.
        assert_eq!(
            phy.frame_duration(ACK_BYTES, Rate::Mbps6),
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn duration_grows_with_size_and_shrinks_with_rate() {
        let phy = PhyTiming::dsss();
        let small = phy.frame_duration(100, Rate::Mbps11);
        let large = phy.frame_duration(1000, Rate::Mbps11);
        assert!(small < large);
        let slow = phy.frame_duration(1000, Rate::Mbps1);
        assert!(large < slow);
    }

    #[test]
    fn success_exceeds_collision_duration() {
        let phy = PhyTiming::dsss();
        let s = phy.success_duration(500, Rate::Mbps11);
        let c = phy.collision_duration(500, Rate::Mbps11);
        assert_eq!(s - c, phy.sifs() + phy.ack_duration());
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn cross_family_rate_panics() {
        let _ = PhyTiming::dsss().frame_duration(100, Rate::Mbps6);
    }

    #[test]
    fn ack_timeout_covers_ack() {
        let phy = PhyTiming::dsss();
        assert!(phy.ack_timeout() > phy.sifs() + phy.ack_duration());
    }
}
