//! Frame kinds and on-air sizes.
//!
//! Sizes follow the 802.11 MPDU format: a 24-byte MAC header plus 4-byte
//! FCS around the payload, and a 14-byte ACK control frame. CO-MAP adds a
//! small *discovery header* frame transmitted right before each data frame
//! (paper Section V, "Implementation of header"): a self-contained packet
//! carrying the source and destination addresses plus its own FCS, so
//! neighbors learn about an ongoing transmission before the payload starts.

use serde::{Deserialize, Serialize};

/// MAC header (24 B) + FCS (4 B) wrapped around every data payload.
pub const DATA_HEADER_BYTES: u32 = 28;

/// An 802.11 ACK control frame (14 B).
pub const ACK_BYTES: u32 = 14;

/// CO-MAP's discovery header packet: frame control + duration + source +
/// destination + sequence + FCS = 2+2+6+6+2+4 bytes.
pub const DISCOVERY_HEADER_BYTES: u32 = 22;

/// An RTS control frame (20 B) — implemented as an optional baseline; the
/// paper's experiments disable RTS/CTS.
pub const RTS_BYTES: u32 = 20;

/// A CTS control frame (14 B).
pub const CTS_BYTES: u32 = 14;

/// The role of a frame on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// CO-MAP's discovery header announcing an imminent data frame.
    DiscoveryHeader,
    /// A data MPDU carrying payload bytes.
    Data,
    /// A (possibly selective-repeat) acknowledgment.
    Ack,
    /// Request-to-send (optional RTS/CTS baseline).
    Rts,
    /// Clear-to-send (optional RTS/CTS baseline).
    Cts,
}

impl FrameKind {
    /// Whether this kind is a control frame sent at the base rate without
    /// contending for the channel (it follows SIFS after the frame it
    /// answers).
    pub fn is_control_response(self) -> bool {
        matches!(self, FrameKind::Ack | FrameKind::Cts)
    }

    /// On-air MPDU size in bytes for a frame of this kind carrying
    /// `payload` payload bytes (payload is only meaningful for
    /// [`FrameKind::Data`]).
    pub fn on_air_bytes(self, payload: u32) -> u32 {
        match self {
            FrameKind::DiscoveryHeader => DISCOVERY_HEADER_BYTES,
            FrameKind::Data => DATA_HEADER_BYTES + payload,
            FrameKind::Ack => ACK_BYTES,
            FrameKind::Rts => RTS_BYTES,
            FrameKind::Cts => CTS_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frames_add_mac_overhead() {
        assert_eq!(FrameKind::Data.on_air_bytes(1500), 1528);
        assert_eq!(FrameKind::Data.on_air_bytes(0), DATA_HEADER_BYTES);
    }

    #[test]
    fn control_frames_have_fixed_size() {
        assert_eq!(FrameKind::Ack.on_air_bytes(999), ACK_BYTES);
        assert_eq!(
            FrameKind::DiscoveryHeader.on_air_bytes(0),
            DISCOVERY_HEADER_BYTES
        );
        assert_eq!(FrameKind::Rts.on_air_bytes(0), RTS_BYTES);
        assert_eq!(FrameKind::Cts.on_air_bytes(0), CTS_BYTES);
    }

    #[test]
    fn response_classification() {
        assert!(FrameKind::Ack.is_control_response());
        assert!(FrameKind::Cts.is_control_response());
        assert!(!FrameKind::Data.is_control_response());
        assert!(!FrameKind::Rts.is_control_response());
        assert!(!FrameKind::DiscoveryHeader.is_control_response());
    }
}
