//! Integer-nanosecond simulation time.
//!
//! All MAC timing (slots, interframe spaces, frame airtimes) is expressed
//! as integral nanoseconds, which keeps event ordering exact — two events
//! scheduled at the same instant compare equal instead of drifting apart by
//! floating-point residue.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is after {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`Self::duration_since`]; clamps at zero.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds, rounding to nearest.
    pub const fn as_micros_round(self) -> u64 {
        (self.0 + 500) / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division with ceiling, e.g. "how many whole slots cover this
    /// span".
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    pub fn div_ceil(self, unit: SimDuration) -> u64 {
        assert!(unit.0 > 0, "division by zero duration");
        self.0.div_ceil(unit.0)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating subtraction: durations never go negative.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// Truncating division: how many whole `rhs` fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}µs", self.0 as f64 / 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(50);
        assert_eq!(t.as_nanos(), 50_000);
        assert_eq!(
            t.duration_since(SimTime::ZERO),
            SimDuration::from_micros(50)
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "is after")]
    fn negative_elapsed_panics() {
        let t = SimTime::from_nanos(10);
        let _ = SimTime::ZERO.duration_since(t);
    }

    #[test]
    fn duration_subtraction_saturates() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_micros(10));
    }

    #[test]
    fn slot_division() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(SimDuration::from_micros(100) / slot, 5);
        assert_eq!(SimDuration::from_micros(119) / slot, 5);
        assert_eq!(SimDuration::from_micros(119).div_ceil(slot), 6);
        assert_eq!(SimDuration::from_micros(100).div_ceil(slot), 5);
    }

    #[test]
    fn micros_rounding() {
        assert_eq!(SimDuration::from_nanos(1_499).as_micros_round(), 1);
        assert_eq!(SimDuration::from_nanos(1_500).as_micros_round(), 2);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(SimDuration::from_micros(50).to_string(), "50µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }
}
