//! Selective-repeat ARQ (paper Section IV-C4).
//!
//! When an exposed terminal transmits concurrently with an ongoing frame,
//! the two transmissions rarely end at the same instant, so plain 802.11
//! stop-and-wait ACKs are often corrupted by the tail of the other data
//! frame. CO-MAP therefore runs a **selective-repeat** window: the sender
//! pushes up to `W_send` frames with consecutive sequence numbers, moving
//! on after an ACK timeout instead of retransmitting immediately, and only
//! resends the frames its ACKs report missing once the window has been
//! swept.
//!
//! The types here are pure window bookkeeping — the simulator decides
//! *when* to send and how long `t_ACKwait` is.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A link-layer sequence number.
pub type Seq = u64;

/// Error returned when an operation names a sequence number that is not
/// currently in the send window (never enqueued, already delivered, or
/// abandoned past the retry limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSeq(pub Seq);

impl fmt::Display for UnknownSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sequence {} not in send window", self.0)
    }
}

impl std::error::Error for UnknownSeq {}

/// A selective-repeat acknowledgment: everything below `base` has been
/// received, plus the frames flagged in `bitmap` (bit `i` ⇔ `base + i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Ack {
    /// Lowest sequence number **not** yet received in order.
    pub base: Seq,
    /// Out-of-order receptions above `base`.
    pub bitmap: u64,
}

impl Ack {
    /// Whether this ACK acknowledges `seq`.
    pub fn acknowledges(&self, seq: Seq) -> bool {
        if seq < self.base {
            true
        } else {
            let offset = seq - self.base;
            offset < 64 && (self.bitmap >> offset) & 1 == 1
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SendEntry {
    seq: Seq,
    payload_bytes: u32,
    acked: bool,
    attempts: u32,
}

/// Sender-side selective-repeat window.
///
/// ```rust
/// use comap_mac::arq::{SelectiveRepeatReceiver, SelectiveRepeatSender};
///
/// let mut tx = SelectiveRepeatSender::new(4);
/// let mut rx = SelectiveRepeatReceiver::new();
/// let s0 = tx.enqueue(500).unwrap();
/// let s1 = tx.enqueue(500).unwrap();
/// // s0 is lost, s1 arrives:
/// tx.mark_sent(s0).unwrap();
/// tx.mark_sent(s1).unwrap();
/// assert!(rx.on_frame(s1));
/// tx.on_ack(rx.ack());
/// // Only s0 still needs (re)sending.
/// assert_eq!(tx.next_to_send(), Some(s0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelectiveRepeatSender {
    window_size: usize,
    window: VecDeque<SendEntry>,
    next_seq: Seq,
    delivered: u64,
}

impl SelectiveRepeatSender {
    /// Creates a sender with window `W_send`.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero or above 64 (the ACK bitmap width).
    pub fn new(window_size: usize) -> Self {
        assert!(
            (1..=64).contains(&window_size),
            "window size must be in 1..=64, got {window_size}"
        );
        SelectiveRepeatSender {
            window_size,
            window: VecDeque::new(),
            next_seq: 0,
            delivered: 0,
        }
    }

    /// The configured window size.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Whether a new frame can enter the window.
    pub fn has_room(&self) -> bool {
        self.window.len() < self.window_size
    }

    /// Admits a new `payload_bytes`-byte frame, returning its sequence
    /// number, or `None` when the window is full.
    pub fn enqueue(&mut self, payload_bytes: u32) -> Option<Seq> {
        if !self.has_room() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.push_back(SendEntry {
            seq,
            payload_bytes,
            acked: false,
            attempts: 0,
        });
        Some(seq)
    }

    /// The next frame the selective-repeat discipline would transmit:
    /// unacked, fewest attempts first (so the first sweep sends everything
    /// once before any retransmission), FIFO among equals.
    pub fn next_to_send(&self) -> Option<Seq> {
        self.window
            .iter()
            .filter(|e| !e.acked)
            .min_by_key(|e| (e.attempts, e.seq))
            .map(|e| e.seq)
    }

    /// Payload size of an in-window frame.
    pub fn payload_of(&self, seq: Seq) -> Option<u32> {
        self.window
            .iter()
            .find(|e| e.seq == seq)
            .map(|e| e.payload_bytes)
    }

    /// Number of transmission attempts already made for `seq`.
    pub fn attempts_of(&self, seq: Seq) -> Option<u32> {
        self.window
            .iter()
            .find(|e| e.seq == seq)
            .map(|e| e.attempts)
    }

    /// Records that `seq` went on the air once.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSeq`] if `seq` is not in the window.
    pub fn mark_sent(&mut self, seq: Seq) -> Result<(), UnknownSeq> {
        let entry = self
            .window
            .iter_mut()
            .find(|e| e.seq == seq)
            .ok_or(UnknownSeq(seq))?;
        entry.attempts += 1;
        Ok(())
    }

    /// Applies an ACK, marking in-window frames delivered and sliding the
    /// window. Returns the number of frames newly confirmed delivered.
    pub fn on_ack(&mut self, ack: Ack) -> usize {
        self.on_ack_with(ack, |_| {})
    }

    /// Like [`on_ack`](Self::on_ack), but reports each newly confirmed
    /// sequence number (in window order) to `newly_acked` — the hook
    /// instrumentation uses to close per-frame latency spans without
    /// changing the window bookkeeping.
    pub fn on_ack_with(&mut self, ack: Ack, mut newly_acked: impl FnMut(Seq)) -> usize {
        let mut newly = 0;
        for entry in &mut self.window {
            if !entry.acked && ack.acknowledges(entry.seq) {
                entry.acked = true;
                newly += 1;
                newly_acked(entry.seq);
            }
        }
        while matches!(self.window.front(), Some(e) if e.acked) {
            self.window.pop_front();
            self.delivered += 1;
        }
        newly
    }

    /// Drops an in-window frame after exhausting its retries (the frame is
    /// lost for good, as 802.11 does past the retry limit). Frames are
    /// never silently skipped otherwise.
    pub fn abandon(&mut self, seq: Seq) {
        if let Some(idx) = self.window.iter().position(|e| e.seq == seq) {
            self.window.remove(idx);
        }
    }

    /// Frames currently in the window (sent or not) that are unacked.
    pub fn outstanding(&self) -> usize {
        self.window.iter().filter(|e| !e.acked).count()
    }

    /// `true` once every in-window frame has been sent at least once — the
    /// point at which the paper's discipline switches to retransmissions.
    pub fn window_swept(&self) -> bool {
        self.window.iter().all(|e| e.attempts > 0)
    }

    /// Total frames confirmed delivered over the lifetime of the sender.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

/// Receiver-side selective-repeat window: tracks which sequence numbers
/// arrived and builds cumulative-plus-bitmap ACKs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SelectiveRepeatReceiver {
    next_expected: Seq,
    out_of_order: BTreeSet<Seq>,
}

impl SelectiveRepeatReceiver {
    /// Creates an empty receiver window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame arrival. Returns `true` if the frame is new (it
    /// should count toward goodput) and `false` for duplicates.
    pub fn on_frame(&mut self, seq: Seq) -> bool {
        if seq < self.next_expected || self.out_of_order.contains(&seq) {
            return false;
        }
        self.out_of_order.insert(seq);
        while self.out_of_order.remove(&self.next_expected) {
            self.next_expected += 1;
        }
        true
    }

    /// Builds the ACK describing the current reception state.
    pub fn ack(&self) -> Ack {
        let mut bitmap = 0u64;
        for &seq in &self.out_of_order {
            let offset = seq - self.next_expected;
            if offset < 64 {
                bitmap |= 1 << offset;
            }
        }
        Ack {
            base: self.next_expected,
            bitmap,
        }
    }

    /// Lowest sequence number not yet received.
    pub fn next_expected(&self) -> Seq {
        self.next_expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_slides_window() {
        let mut tx = SelectiveRepeatSender::new(4);
        let mut rx = SelectiveRepeatReceiver::new();
        for _ in 0..4 {
            let seq = tx.enqueue(100).unwrap();
            tx.mark_sent(seq).unwrap();
            assert!(rx.on_frame(seq));
            tx.on_ack(rx.ack());
        }
        assert_eq!(tx.delivered(), 4);
        assert_eq!(tx.outstanding(), 0);
        assert!(tx.has_room());
    }

    #[test]
    fn window_fills_and_rejects() {
        let mut tx = SelectiveRepeatSender::new(2);
        assert!(tx.enqueue(10).is_some());
        assert!(tx.enqueue(10).is_some());
        assert_eq!(tx.enqueue(10), None);
    }

    #[test]
    fn loss_is_reported_and_retransmitted() {
        let mut tx = SelectiveRepeatSender::new(3);
        let mut rx = SelectiveRepeatReceiver::new();
        let s: Vec<Seq> = (0..3).map(|_| tx.enqueue(100).unwrap()).collect();
        // s0 lost; s1, s2 arrive.
        tx.mark_sent(s[0]).unwrap();
        tx.mark_sent(s[1]).unwrap();
        tx.mark_sent(s[2]).unwrap();
        assert!(rx.on_frame(s[1]));
        assert!(rx.on_frame(s[2]));
        let ack = rx.ack();
        assert_eq!(ack.base, 0);
        assert!(ack.acknowledges(s[1]) && ack.acknowledges(s[2]));
        assert!(!ack.acknowledges(s[0]));
        tx.on_ack(ack);
        assert!(tx.window_swept());
        assert_eq!(tx.next_to_send(), Some(s[0]));
        // Retransmission succeeds.
        tx.mark_sent(s[0]).unwrap();
        assert!(rx.on_frame(s[0]));
        tx.on_ack(rx.ack());
        assert_eq!(tx.delivered(), 3);
        assert_eq!(tx.outstanding(), 0);
    }

    #[test]
    fn first_sweep_before_retransmissions() {
        let mut tx = SelectiveRepeatSender::new(3);
        let s: Vec<Seq> = (0..3).map(|_| tx.enqueue(100).unwrap()).collect();
        assert_eq!(tx.next_to_send(), Some(s[0]));
        tx.mark_sent(s[0]).unwrap();
        // Even with s0 unacked, the sweep continues to s1 and s2 first.
        assert_eq!(tx.next_to_send(), Some(s[1]));
        tx.mark_sent(s[1]).unwrap();
        assert_eq!(tx.next_to_send(), Some(s[2]));
        tx.mark_sent(s[2]).unwrap();
        // Now the retransmission pass starts at the oldest unacked.
        assert_eq!(tx.next_to_send(), Some(s[0]));
    }

    #[test]
    fn duplicates_do_not_count_twice() {
        let mut rx = SelectiveRepeatReceiver::new();
        assert!(rx.on_frame(0));
        assert!(!rx.on_frame(0));
        assert!(rx.on_frame(2));
        assert!(!rx.on_frame(2));
        assert_eq!(rx.next_expected(), 1);
    }

    #[test]
    fn ack_bitmap_reports_gaps() {
        let mut rx = SelectiveRepeatReceiver::new();
        rx.on_frame(0);
        rx.on_frame(2);
        rx.on_frame(5);
        let ack = rx.ack();
        assert_eq!(ack.base, 1);
        assert!(ack.acknowledges(0));
        assert!(!ack.acknowledges(1));
        assert!(ack.acknowledges(2));
        assert!(!ack.acknowledges(3));
        assert!(ack.acknowledges(5));
    }

    #[test]
    fn on_ack_with_reports_each_newly_acked_seq_once() {
        let mut tx = SelectiveRepeatSender::new(4);
        let mut rx = SelectiveRepeatReceiver::new();
        let s: Vec<Seq> = (0..3).map(|_| tx.enqueue(100).unwrap()).collect();
        for &seq in &s {
            tx.mark_sent(seq).unwrap();
        }
        rx.on_frame(s[0]);
        rx.on_frame(s[2]);
        let mut reported = Vec::new();
        let newly = tx.on_ack_with(rx.ack(), |seq| reported.push(seq));
        assert_eq!(newly, 2);
        assert_eq!(reported, vec![s[0], s[2]]);
        // A duplicate ACK reports nothing new.
        reported.clear();
        assert_eq!(tx.on_ack_with(rx.ack(), |seq| reported.push(seq)), 0);
        assert!(reported.is_empty());
    }

    #[test]
    fn abandon_removes_frame() {
        let mut tx = SelectiveRepeatSender::new(2);
        let s0 = tx.enqueue(10).unwrap();
        let s1 = tx.enqueue(10).unwrap();
        tx.abandon(s0);
        assert_eq!(tx.outstanding(), 1);
        assert_eq!(tx.next_to_send(), Some(s1));
        assert!(tx.has_room());
    }

    #[test]
    fn marking_unknown_seq_is_an_error() {
        let mut tx = SelectiveRepeatSender::new(2);
        assert_eq!(tx.mark_sent(99), Err(UnknownSeq(99)));
        assert_eq!(UnknownSeq(99).to_string(), "sequence 99 not in send window");
    }

    #[test]
    #[should_panic(expected = "window size must be")]
    fn oversized_window_panics() {
        let _ = SelectiveRepeatSender::new(65);
    }
}
