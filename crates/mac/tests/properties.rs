//! Property-based tests for MAC primitives: the selective-repeat ARQ must
//! deliver every frame exactly once under arbitrary loss patterns, and
//! frame durations must be consistent across sizes and rates.

use comap_mac::arq::{SelectiveRepeatReceiver, SelectiveRepeatSender};
use comap_mac::backoff::{Backoff, BackoffPolicy};
use comap_mac::timing::PhyTiming;
use comap_radio::rates::Rate;
use proptest::prelude::*;

proptest! {
    /// Drive the ARQ through an arbitrary data-loss / ack-loss schedule;
    /// every enqueued frame must eventually be delivered exactly once.
    #[test]
    fn arq_delivers_everything_exactly_once(
        window in 1usize..16,
        frames in 1usize..40,
        losses in prop::collection::vec((any::<bool>(), any::<bool>()), 0..2000),
    ) {
        let mut tx = SelectiveRepeatSender::new(window);
        let mut rx = SelectiveRepeatReceiver::new();
        let mut enqueued = 0usize;
        let mut unique_rx = 0usize;
        let mut loss_iter = losses.into_iter().chain(std::iter::repeat((false, false)));

        // Safety bound: with loss exhausted, everything must drain.
        for _ in 0..20_000 {
            while enqueued < frames && tx.enqueue(64).is_some() {
                enqueued += 1;
            }
            let Some(seq) = tx.next_to_send() else {
                if enqueued == frames && tx.outstanding() == 0 {
                    break;
                }
                continue;
            };
            let (lose_data, lose_ack) = loss_iter.next().unwrap();
            tx.mark_sent(seq).unwrap();
            if !lose_data {
                if rx.on_frame(seq) {
                    unique_rx += 1;
                }
                if !lose_ack {
                    tx.on_ack(rx.ack());
                }
            }
        }
        prop_assert_eq!(enqueued, frames);
        prop_assert_eq!(unique_rx, frames, "receiver saw each frame once");
        prop_assert_eq!(tx.delivered(), frames as u64);
        prop_assert_eq!(tx.outstanding(), 0);
    }

    /// Receiver ACKs always acknowledge exactly the set of frames it has.
    #[test]
    fn ack_reflects_received_set(seqs in prop::collection::btree_set(0u64..80, 0..40)) {
        let mut rx = SelectiveRepeatReceiver::new();
        for &s in &seqs {
            rx.on_frame(s);
        }
        let ack = rx.ack();
        for s in 0..100u64 {
            let within_bitmap = s < ack.base + 64;
            if within_bitmap {
                prop_assert_eq!(ack.acknowledges(s), seqs.contains(&s), "seq {}", s);
            }
        }
    }

    #[test]
    fn backoff_consume_is_exact(start in 0u32..2048, steps in prop::collection::vec(0u32..64, 0..128)) {
        let mut b = Backoff::from_slots(start);
        let mut consumed_total = 0u32;
        for s in steps {
            consumed_total += b.consume(s);
        }
        prop_assert_eq!(consumed_total + b.slots_remaining(), start);
    }

    #[test]
    fn beb_window_is_monotone_in_retries(retries in 0u32..20) {
        let p = BackoffPolicy::DSSS_DEFAULT;
        prop_assert!(p.window(retries + 1) >= p.window(retries));
    }

    #[test]
    fn frame_duration_monotone_in_size(bytes in 1u32..2400) {
        for phy in [PhyTiming::dsss(), PhyTiming::erp_ofdm(true)] {
            let rate = phy.control_rate();
            let d1 = phy.frame_duration(bytes, rate);
            let d2 = phy.frame_duration(bytes + 1, rate);
            prop_assert!(d2 >= d1);
            prop_assert!(d1 > phy.plcp_overhead());
        }
    }

    #[test]
    fn faster_rates_never_take_longer(bytes in 1u32..2400) {
        let phy = PhyTiming::dsss();
        let mut rates = Rate::DSSS_ALL.to_vec();
        rates.sort();
        for w in rates.windows(2) {
            prop_assert!(phy.frame_duration(bytes, w[0]) >= phy.frame_duration(bytes, w[1]));
        }
    }
}
