//! Property-based tests for the strongly-typed radio units
//! (`comap_radio::units`) — the algebra the unit-hygiene lint exists to
//! protect. Each property pins one identity the physics code relies on:
//! dB arithmetic round-trips, the dBm↔mW bijection, linear-domain
//! summation monotonicity, and exact quantized-ledger cancellation.

use comap_radio::units::{Db, Dbm, Meters, MilliWatts, QuantizedPower};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dbm_plus_minus_db_round_trips(p in -120.0..40.0f64, g in -60.0..60.0f64) {
        let p = Dbm::new(p);
        let g = Db::new(g);
        prop_assert!(((p + g) - g - p).value().abs() < 1e-9);
        prop_assert!(((p - g) + g - p).value().abs() < 1e-9);
    }

    #[test]
    fn dbm_difference_is_the_db_ratio(a in -120.0..40.0f64, b in -120.0..40.0f64) {
        // (a − b) dB applied back to b recovers a: SIR is a ratio.
        let (a, b) = (Dbm::new(a), Dbm::new(b));
        let ratio = a - b;
        prop_assert!((b + ratio - a).value().abs() < 1e-9);
    }

    #[test]
    fn dbm_to_milliwatts_is_inverse_within_1e9(p in -150.0..50.0f64) {
        let back = Dbm::new(p).to_milliwatts().to_dbm();
        prop_assert!((back.value() - p).abs() < 1e-9);
    }

    #[test]
    fn milliwatts_to_dbm_is_inverse_relative(mw in 1e-15..1e5f64) {
        let back = MilliWatts::new(mw).to_dbm().to_milliwatts();
        prop_assert!((back.value() - mw).abs() / mw < 1e-9);
    }

    #[test]
    fn db_linear_round_trip(g in -80.0..80.0f64) {
        let g = Db::new(g);
        let back = Db::from_linear(g.to_linear());
        prop_assert!((back - g).value().abs() < 1e-9);
    }

    #[test]
    fn milliwatts_summation_is_monotone(
        powers in prop::collection::vec(0.0..1e3f64, 0..16),
        extra in 0.0..1e3f64,
    ) {
        // Adding an interferer can only raise the ambient power, and the
        // total dominates every contributor: the linear domain is the
        // only one where interference sums.
        let total: MilliWatts = powers.iter().map(|&p| MilliWatts::new(p)).sum();
        let grown = total + MilliWatts::new(extra);
        prop_assert!(grown.value() >= total.value());
        for &p in &powers {
            prop_assert!(total.value() >= p - 1e-9);
        }
    }

    #[test]
    fn summation_in_dbm_dominates_components(a in -90.0..20.0f64, b in -90.0..20.0f64) {
        // Combining two signals yields at least the stronger one and at
        // most 3.02 dB above it (equal-power worst case).
        let (a, b) = (Dbm::new(a), Dbm::new(b));
        let sum = (a.to_milliwatts() + b.to_milliwatts()).to_dbm();
        let strongest = if a.value() >= b.value() { a } else { b };
        prop_assert!(sum.value() >= strongest.value() - 1e-9);
        prop_assert!(sum.value() <= strongest.value() + 3.02);
    }

    #[test]
    fn quantized_ledger_cancels_exactly(
        powers in prop::collection::vec(1e-12..1e2f64, 1..12),
    ) {
        // Add every power to the ledger, then remove them in reverse:
        // the ledger returns to zero bit for bit — the invariant the
        // determinism lint protects in the medium.
        let grains: Vec<QuantizedPower> = powers
            .iter()
            .map(|&p| QuantizedPower::from_milliwatts(MilliWatts::new(p)))
            .collect();
        let mut ledger = QuantizedPower::ZERO;
        for &g in &grains {
            ledger += g;
        }
        let full = ledger;
        for &g in grains.iter().rev() {
            ledger -= g;
        }
        prop_assert!(ledger.is_zero());
        // And re-adding reproduces the identical total.
        let mut again = QuantizedPower::ZERO;
        for &g in &grains {
            again += g;
        }
        prop_assert_eq!(again, full);
    }

    #[test]
    fn meters_scale_and_ratio_agree(d in 0.1..1e4f64, k in 0.1..10.0f64) {
        let d = Meters::new(d);
        let scaled = d * k;
        prop_assert!((scaled / d - k).abs() < 1e-9);
    }
}
