//! Property-based tests for the radio math.

use comap_radio::math::{erf, erfc, std_normal_cdf, std_normal_quantile};
use comap_radio::pathloss::LogNormalShadowing;
use comap_radio::prr::ReceptionModel;
use comap_radio::units::{Db, Dbm, Meters};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = ReceptionModel> {
    (
        (-10.0..25.0f64),
        (2.0..4.5f64),
        (1.0..8.0f64),
        (2.0..12.0f64),
    )
        .prop_map(|(tx, alpha, sigma, t_sir)| {
            ReceptionModel::new(
                LogNormalShadowing::from_friis(Dbm::new(tx), alpha, Db::new(sigma)),
                Db::new(t_sir),
            )
        })
}

proptest! {
    #[test]
    fn erf_is_odd_and_bounded(x in -30.0..30.0f64) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((erf(-x) + v).abs() < 1e-12);
    }

    #[test]
    fn erf_plus_erfc_is_one(x in -20.0..20.0f64) {
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-11);
    }

    #[test]
    fn cdf_bounded_and_symmetric(x in -12.0..12.0f64) {
        let p = std_normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + std_normal_cdf(-x) - 1.0).abs() < 1e-11);
    }

    #[test]
    fn quantile_round_trips(p in 1e-6..(1.0 - 1e-6)) {
        let x = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(x) - p).abs() < 1e-8);
    }

    #[test]
    fn prr_is_probability_and_monotone_in_r(
        model in arb_model(),
        d in 1.0..80.0f64,
        r in 1.0..200.0f64,
    ) {
        let p = model.prr(Meters::new(d), Meters::new(r));
        prop_assert!((0.0..=1.0).contains(&p));
        let p_farther = model.prr(Meters::new(d), Meters::new(r * 1.5));
        prop_assert!(p_farther >= p - 1e-12);
    }

    #[test]
    fn prr_antimonotone_in_d(
        model in arb_model(),
        d in 1.0..80.0f64,
        r in 1.0..200.0f64,
    ) {
        let p = model.prr(Meters::new(d), Meters::new(r));
        let p_longer = model.prr(Meters::new(d * 1.5), Meters::new(r));
        prop_assert!(p_longer <= p + 1e-12);
    }

    #[test]
    fn cs_miss_monotone_in_distance(
        model in arb_model(),
        r in 1.0..300.0f64,
        t_cs in -95.0..-60.0f64,
    ) {
        let t = Dbm::new(t_cs);
        let near = model.cs_miss_probability(Meters::new(r), t);
        let far = model.cs_miss_probability(Meters::new(r * 1.3), t);
        prop_assert!((0.0..=1.0).contains(&near));
        prop_assert!(far >= near - 1e-12);
    }

    #[test]
    fn interference_range_is_consistent(
        model in arb_model(),
        d in 1.0..60.0f64,
        threshold in 0.05..0.95f64,
    ) {
        let r = model.interference_range(Meters::new(d), threshold);
        // Inside the range, the interferer drives PRR below the threshold.
        let inside = model.prr(Meters::new(d), Meters::new((r.value() * 0.8).max(0.1)));
        let outside = model.prr(Meters::new(d), r * 1.2);
        prop_assert!(inside <= threshold + 1e-9);
        prop_assert!(outside >= threshold - 1e-9);
    }

    #[test]
    fn mean_power_between_shadowing_extremes(
        tx in -10.0..25.0f64,
        alpha in 2.0..4.5f64,
        d in 1.0..120.0f64,
    ) {
        // With σ = 0 the sample equals the mean, whatever the RNG says.
        use rand::{rngs::StdRng, SeedableRng};
        let chan = LogNormalShadowing::from_friis(Dbm::new(tx), alpha, Db::ZERO);
        let mut rng = StdRng::seed_from_u64(0);
        let d = Meters::new(d);
        prop_assert_eq!(chan.sample_power(d, &mut rng), chan.mean_power(d));
    }
}
