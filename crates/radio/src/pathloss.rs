//! Radio propagation models.
//!
//! The paper (Section IV-B, eq. 1) uses the **log-normal shadowing** model:
//!
//! ```text
//! P(d) [dBm] = P(d₀) [dBm] − 10 α log₁₀(d/d₀) + X_σ
//! ```
//!
//! where `P(d₀)` is the received power at a reference distance `d₀`
//! (measured in the field or computed from the free-space Friis equation),
//! `α` is the path-loss exponent and `X_σ` a zero-mean Gaussian with
//! standard deviation `σ` capturing shadowing by environmental artifacts.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::units::{Db, Dbm, Meters};

/// Free-space (Friis) propagation at a given carrier frequency.
///
/// Used to derive the reference power `P(d₀)` when no field measurement is
/// available, exactly as the paper suggests ("calculated using the free
/// space Friis equation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreeSpace {
    /// Carrier frequency in Hz.
    frequency_hz: f64,
}

impl FreeSpace {
    /// Free space at the 2.4 GHz ISM band used by 802.11b/g.
    pub const WIFI_2_4GHZ: FreeSpace = FreeSpace {
        frequency_hz: 2.4e9,
    };

    /// Creates a free-space model for an arbitrary carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "carrier frequency must be positive");
        FreeSpace { frequency_hz }
    }

    /// The carrier wavelength in meters.
    pub fn wavelength(self) -> Meters {
        const C: f64 = 299_792_458.0;
        Meters::new(C / self.frequency_hz)
    }

    /// Free-space path loss over `distance` with unity antenna gains:
    /// `20 log₁₀(4πd/λ)`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero.
    pub fn path_loss(self, distance: Meters) -> Db {
        assert!(distance.value() > 0.0, "free-space loss needs d > 0");
        let ratio = 4.0 * std::f64::consts::PI * distance.value() / self.wavelength().value();
        Db::new(20.0 * ratio.log10())
    }

    /// Received power at `distance` for a transmitter at `tx_power`.
    pub fn received_power(self, tx_power: Dbm, distance: Meters) -> Dbm {
        tx_power - self.path_loss(distance)
    }
}

/// The log-normal shadowing propagation model of paper eq. (1).
///
/// The model is fully described by the mean received power at the reference
/// distance (`p_d0`, which already folds in the transmit power), the
/// path-loss exponent `alpha` and the shadowing deviation `sigma`.
///
/// ```rust
/// use comap_radio::{pathloss::LogNormalShadowing, units::{Dbm, Meters}};
/// let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
/// // Mean power decays monotonically with distance.
/// let near = chan.mean_power(Meters::new(5.0));
/// let far = chan.mean_power(Meters::new(50.0));
/// assert!(near > far);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalShadowing {
    p_d0: Dbm,
    d0: Meters,
    alpha: f64,
    sigma: Db,
}

impl LogNormalShadowing {
    /// Creates a model from an explicit reference power at `d0`.
    ///
    /// # Panics
    ///
    /// Panics if `d0` is zero, `alpha` is not positive, or `sigma` is
    /// negative.
    pub fn new(p_d0: Dbm, d0: Meters, alpha: f64, sigma: Db) -> Self {
        assert!(d0.value() > 0.0, "reference distance must be positive");
        assert!(alpha > 0.0, "path-loss exponent must be positive");
        assert!(
            sigma.value() >= 0.0,
            "shadowing deviation cannot be negative"
        );
        LogNormalShadowing {
            p_d0,
            d0,
            alpha,
            sigma,
        }
    }

    /// Creates a model whose reference power at 1 m comes from the Friis
    /// equation at 2.4 GHz for the given transmit power.
    pub fn from_friis(tx_power: Dbm, alpha: f64, sigma: Db) -> Self {
        let d0 = Meters::new(1.0);
        let p_d0 = FreeSpace::WIFI_2_4GHZ.received_power(tx_power, d0);
        Self::new(p_d0, d0, alpha, sigma)
    }

    /// The paper's **testbed** environment: an 800 m² office with hard
    /// partition panels, measured `α = 2.9` and `σ = 4 dB` (Section VI-A).
    pub fn testbed(tx_power: Dbm) -> Self {
        Self::from_friis(tx_power, 2.9, Db::new(4.0))
    }

    /// The paper's **large-scale** NS-2 environment: an office floor with a
    /// larger area and richer multipath, `α = 3.3` and `σ = 5 dB`
    /// (Table I).
    pub fn large_scale(tx_power: Dbm) -> Self {
        Self::from_friis(tx_power, 3.3, Db::new(5.0))
    }

    /// Mean (median) received power at `distance`, i.e. eq. (1) without the
    /// shadowing term. Distances below the reference distance are clamped
    /// to it, which keeps near-field powers finite.
    pub fn mean_power(&self, distance: Meters) -> Dbm {
        let d = distance.max(self.d0);
        self.p_d0 - Db::new(10.0 * self.alpha * (d / self.d0).log10())
    }

    /// Mean received power of a *link* at `distance`: [`mean_power`]
    /// behind the 1 m near-field clamp every link-cache fill applies.
    /// Two radios cannot be closer than about a meter of usable path,
    /// so the clamp keeps co-located test topologies finite — hoisted
    /// here so the clamp cannot drift between call sites.
    ///
    /// [`mean_power`]: LogNormalShadowing::mean_power
    pub fn link_mean_at(&self, distance: Meters) -> Dbm {
        self.mean_power(distance.max(Meters::new(1.0)))
    }

    /// A random received-power sample at `distance`: eq. (1) with a fresh
    /// shadowing draw `X_σ ~ N(0, σ²)`.
    pub fn sample_power<R: Rng + ?Sized>(&self, distance: Meters, rng: &mut R) -> Dbm {
        self.mean_power(distance) + Db::new(self.sigma.value() * sample_standard_normal(rng))
    }

    /// Mean received power at the reference distance.
    pub fn reference_power(&self) -> Dbm {
        self.p_d0
    }

    /// The reference distance `d₀`.
    pub fn reference_distance(&self) -> Meters {
        self.d0
    }

    /// The path-loss exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The shadowing standard deviation `σ`.
    pub fn sigma(&self) -> Db {
        self.sigma
    }

    /// The distance at which the *mean* received power falls to `threshold`
    /// — e.g. the nominal carrier-sense or communication range. Returns the
    /// reference distance if the threshold is already exceeded there.
    pub fn range_for_threshold(&self, threshold: Dbm) -> Meters {
        let margin = (self.p_d0 - threshold).value();
        if margin <= 0.0 {
            return self.d0;
        }
        Meters::new(self.d0.value() * 10f64.powf(margin / (10.0 * self.alpha)))
    }
}

/// Minimal inline standard-normal sampler (Marsaglia polar method), local so
/// that the crate does not need `rand_distr`.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one `N(0, 1)` sample.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

pub use rand_distr_normal::sample_standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn friis_loss_at_one_meter_2_4ghz() {
        // 20 log10(4π/0.1249) ≈ 40.05 dB
        let loss = FreeSpace::WIFI_2_4GHZ.path_loss(Meters::new(1.0));
        assert!((loss.value() - 40.05).abs() < 0.05, "loss = {loss}");
    }

    #[test]
    fn friis_loss_grows_20db_per_decade() {
        let fs = FreeSpace::WIFI_2_4GHZ;
        let l10 = fs.path_loss(Meters::new(10.0));
        let l100 = fs.path_loss(Meters::new(100.0));
        assert!(((l100 - l10).value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_decays_alpha_decibels_per_decade() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 2.9, Db::new(0.0));
        let p10 = chan.mean_power(Meters::new(10.0));
        let p100 = chan.mean_power(Meters::new(100.0));
        assert!(((p10 - p100).value() - 29.0).abs() < 1e-9);
    }

    #[test]
    fn distances_below_reference_are_clamped() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        assert_eq!(chan.mean_power(Meters::ZERO), chan.reference_power());
        assert_eq!(chan.mean_power(Meters::new(0.5)), chan.reference_power());
    }

    #[test]
    fn link_mean_clamps_the_near_field_to_one_meter() {
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let at_1m = chan.link_mean_at(Meters::new(1.0));
        assert_eq!(chan.link_mean_at(Meters::ZERO), at_1m);
        assert_eq!(chan.link_mean_at(Meters::new(0.2)), at_1m);
        // Beyond the clamp the helper is plain mean_power.
        assert_eq!(
            chan.link_mean_at(Meters::new(35.0)),
            chan.mean_power(Meters::new(35.0))
        );
    }

    #[test]
    fn range_inverts_mean_power() {
        let chan = LogNormalShadowing::large_scale(Dbm::new(20.0));
        let range = chan.range_for_threshold(Dbm::new(-80.0));
        let power = chan.mean_power(range);
        assert!(
            (power.value() - (-80.0)).abs() < 1e-9,
            "power at range = {power}"
        );
    }

    #[test]
    fn testbed_cs_range_is_plausible() {
        // 0 dBm tx, α = 2.9: the mean CS range at −82 dBm should be tens of
        // meters — the scale at which the paper's ET region (20–34 m) lives.
        let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
        let r = chan.range_for_threshold(Dbm::new(-82.0)).value();
        assert!(r > 15.0 && r < 50.0, "CS range = {r} m");
    }

    #[test]
    fn shadowing_samples_have_requested_spread() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 3.0, Db::new(5.0));
        let mut rng = StdRng::seed_from_u64(1);
        let d = Meters::new(20.0);
        let mean = chan.mean_power(d).value();
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| chan.sample_power(d, &mut rng).value())
            .collect();
        let avg = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - avg).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (avg - mean).abs() < 0.2,
            "sample mean {avg} vs model {mean}"
        );
        assert!((var.sqrt() - 5.0).abs() < 0.2, "sample σ = {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 3.0, Db::ZERO);
        let mut rng = StdRng::seed_from_u64(2);
        let d = Meters::new(15.0);
        assert_eq!(chan.sample_power(d, &mut rng), chan.mean_power(d));
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn invalid_alpha_panics() {
        let _ = LogNormalShadowing::from_friis(Dbm::new(0.0), 0.0, Db::ZERO);
    }

    #[test]
    fn standard_normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
