//! Strongly-typed radio units.
//!
//! Power levels ([`Dbm`]), power ratios ([`Db`]), linear power
//! ([`MilliWatts`]) and distances ([`Meters`]) are kept apart by the type
//! system so that, e.g., an SIR threshold can never be passed where an
//! absolute power level is expected (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// An absolute radio power level in decibel-milliwatts.
///
/// ```rust
/// use comap_radio::units::{Db, Dbm};
/// let tx = Dbm::new(20.0);
/// let loss = Db::new(60.0);
/// assert_eq!(tx - loss, Dbm::new(-40.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

/// A relative power ratio (gain or loss) in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(f64);

/// A linear power in milliwatts; used when summing interference from
/// several concurrent transmitters, which is only meaningful in the linear
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatts(f64);

/// A planar distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Meters(f64);

impl Dbm {
    /// The smallest representable power, used as "no signal at all".
    pub const MIN: Dbm = Dbm(f64::NEG_INFINITY);

    /// Creates a power level from a raw dBm value.
    pub const fn new(value: f64) -> Self {
        Dbm(value)
    }

    /// Returns the raw dBm value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    ///
    /// ```rust
    /// use comap_radio::units::Dbm;
    /// assert!((Dbm::new(0.0).to_milliwatts().value() - 1.0).abs() < 1e-12);
    /// assert!((Dbm::new(20.0).to_milliwatts().value() - 100.0).abs() < 1e-9);
    /// ```
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }

    /// Returns `true` if this is an actual (finite) power level.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Db {
    /// A zero (unity-gain) ratio.
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a raw dB value.
    pub const fn new(value: f64) -> Self {
        Db(value)
    }

    /// Returns the raw dB value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts the ratio to a linear factor (`10^(dB/10)`).
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a ratio from a linear factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn from_linear(factor: f64) -> Self {
        assert!(factor > 0.0, "linear ratio must be positive, got {factor}");
        Db(10.0 * factor.log10())
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Creates a linear power from a raw milliwatt value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "power cannot be negative, got {value}");
        MilliWatts(value)
    }

    /// Returns the raw milliwatt value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts back to dBm. Zero power maps to [`Dbm::MIN`].
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::MIN
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }
}

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0.0);

    /// Creates a distance from a raw meter value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "distance cannot be negative, got {value}");
        Meters(value)
    }

    /// Returns the raw meter value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the larger of two distances.
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }
}

impl Sub for Dbm {
    type Output = Db;
    /// The ratio between two power levels, e.g. a signal-to-interference
    /// ratio.
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}

impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}

impl Sub for MilliWatts {
    type Output = MilliWatts;
    /// Clamped subtraction: interference bookkeeping can accumulate tiny
    /// floating-point residue, so differences never go below zero.
    fn sub(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        MilliWatts(iter.map(|p| p.0).sum())
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters::new(self.0 * rhs)
    }
}

impl Div for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} mW", self.0)
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} m", self.0)
    }
}

impl From<f64> for Meters {
    fn from(value: f64) -> Self {
        Meters::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_to_milliwatts_round_trip() {
        for v in [-95.0, -40.0, 0.0, 17.5, 20.0] {
            let p = Dbm::new(v);
            let back = p.to_milliwatts().to_dbm();
            assert!((back.value() - v).abs() < 1e-9, "{v} round-tripped to {back}");
        }
    }

    #[test]
    fn zero_milliwatts_is_min_dbm() {
        assert_eq!(MilliWatts::ZERO.to_dbm(), Dbm::MIN);
        assert!(!Dbm::MIN.is_finite());
    }

    #[test]
    fn power_difference_is_a_ratio() {
        let sir = Dbm::new(-60.0) - Dbm::new(-70.0);
        assert_eq!(sir, Db::new(10.0));
        assert!((sir.to_linear() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn db_from_linear_round_trip() {
        for f in [0.01, 0.5, 1.0, 2.0, 1000.0] {
            let db = Db::from_linear(f);
            assert!((db.to_linear() - f).abs() / f < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn db_from_nonpositive_linear_panics() {
        let _ = Db::from_linear(0.0);
    }

    #[test]
    fn interference_sums_in_linear_domain() {
        // Two equal interferers are +3 dB, not +2x dBm.
        let one = Dbm::new(-80.0).to_milliwatts();
        let sum = one + one;
        assert!((sum.to_dbm().value() - (-80.0 + 3.0103)).abs() < 1e-3);
    }

    #[test]
    fn milliwatt_sum_iterator() {
        let total: MilliWatts = (0..4).map(|_| MilliWatts::new(0.25)).sum();
        assert!((total.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn milliwatt_subtraction_clamps_at_zero() {
        let tiny = MilliWatts::new(1.0) - MilliWatts::new(1.0 + 1e-18);
        assert_eq!(tiny.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_distance_panics() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm::new(-80.0).to_string(), "-80.00 dBm");
        assert_eq!(Db::new(4.0).to_string(), "4.00 dB");
        assert_eq!(Meters::new(36.0).to_string(), "36.00 m");
    }
}
