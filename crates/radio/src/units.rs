//! Strongly-typed radio units.
//!
//! Power levels ([`Dbm`]), power ratios ([`Db`]), linear power
//! ([`MilliWatts`]) and distances ([`Meters`]) are kept apart by the type
//! system so that, e.g., an SIR threshold can never be passed where an
//! absolute power level is expected (C-NEWTYPE).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute radio power level in decibel-milliwatts.
///
/// ```rust
/// use comap_radio::units::{Db, Dbm};
/// let tx = Dbm::new(20.0);
/// let loss = Db::new(60.0);
/// assert_eq!(tx - loss, Dbm::new(-40.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

/// A relative power ratio (gain or loss) in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(f64);

/// A linear power in milliwatts; used when summing interference from
/// several concurrent transmitters, which is only meaningful in the linear
/// domain.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct MilliWatts(f64);

/// A planar distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Meters(f64);

impl Dbm {
    /// The smallest representable power, used as "no signal at all".
    pub const MIN: Dbm = Dbm(f64::NEG_INFINITY);

    /// Creates a power level from a raw dBm value.
    pub const fn new(value: f64) -> Self {
        Dbm(value)
    }

    /// Returns the raw dBm value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    ///
    /// ```rust
    /// use comap_radio::units::Dbm;
    /// assert!((Dbm::new(0.0).to_milliwatts().value() - 1.0).abs() < 1e-12);
    /// assert!((Dbm::new(20.0).to_milliwatts().value() - 100.0).abs() < 1e-9);
    /// ```
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }

    /// Returns `true` if this is an actual (finite) power level.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Db {
    /// A zero (unity-gain) ratio.
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a raw dB value.
    pub const fn new(value: f64) -> Self {
        Db(value)
    }

    /// Returns the raw dB value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts the ratio to a linear factor (`10^(dB/10)`).
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds a ratio from a linear factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn from_linear(factor: f64) -> Self {
        assert!(factor > 0.0, "linear ratio must be positive, got {factor}");
        Db(10.0 * factor.log10())
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// Creates a linear power from a raw milliwatt value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "power cannot be negative, got {value}");
        MilliWatts(value)
    }

    /// Returns the raw milliwatt value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts back to dBm. Zero power maps to [`Dbm::MIN`].
    pub fn to_dbm(self) -> Dbm {
        if self.0 <= 0.0 {
            Dbm::MIN
        } else {
            Dbm(10.0 * self.0.log10())
        }
    }
}

/// A linear power snapped onto an exact integer grid, for drift-free
/// interference ledgers.
///
/// Summing many [`MilliWatts`] with `+=`/`-=` accumulates floating-point
/// residue: after millions of add/remove cycles the running total of a
/// node's ambient power no longer equals the sum over the currently
/// active transmitters. `QuantizedPower` fixes this by quantizing each
/// power once — onto a grid of [`QuantizedPower::STEP_MILLIWATTS`] — and
/// doing all ledger arithmetic in `u128`, where addition and subtraction
/// cancel exactly. A ledger built on grains is a *pure function of the
/// active set*: removing what was added restores the previous value bit
/// for bit.
///
/// The grid step of 1e-30 mW is ~17 orders of magnitude below the
/// faintest power the simulator distinguishes (thermal noise sits near
/// 3e-10 mW), and a u128 holds ~3.4e6 concurrent 100 mW transmitters
/// before saturating — far beyond any simulated scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QuantizedPower(u128);

impl QuantizedPower {
    /// Zero power.
    pub const ZERO: QuantizedPower = QuantizedPower(0);

    /// Milliwatts represented by one grain of the grid.
    pub const STEP_MILLIWATTS: f64 = 1e-30;

    /// Quantizes a linear power onto the grid (round to nearest grain).
    pub fn from_milliwatts(p: MilliWatts) -> Self {
        QuantizedPower((p.value() / Self::STEP_MILLIWATTS).round() as u128)
    }

    /// The represented power, as the nearest `f64` milliwatt value. This
    /// is a pure function of the grain count, so two ledgers holding the
    /// same active set convert to bit-identical milliwatts.
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts(self.0 as f64 * Self::STEP_MILLIWATTS)
    }

    /// The raw grain count.
    pub const fn grains(self) -> u128 {
        self.0
    }

    /// `true` when no power is recorded.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute difference between two ledger values, in grains.
    pub fn abs_diff(self, other: QuantizedPower) -> u128 {
        self.0.abs_diff(other.0)
    }
}

impl Add for QuantizedPower {
    type Output = QuantizedPower;
    fn add(self, rhs: QuantizedPower) -> QuantizedPower {
        // simlint: allow(panic-policy) — u128 grains cannot overflow from physical powers; aborting beats a corrupt ledger
        QuantizedPower(self.0.checked_add(rhs.0).expect("power ledger overflow"))
    }
}

impl AddAssign for QuantizedPower {
    fn add_assign(&mut self, rhs: QuantizedPower) {
        *self = *self + rhs;
    }
}

impl Sub for QuantizedPower {
    type Output = QuantizedPower;
    /// Exact subtraction. Unlike [`MilliWatts`]'s clamped subtraction,
    /// removing more than was added is a ledger bug, not residue.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, rhs: QuantizedPower) -> QuantizedPower {
        // simlint: allow(panic-policy) — underflow means the exact ledger is corrupt; aborting beats silent drift
        QuantizedPower(self.0.checked_sub(rhs.0).expect("power ledger underflow"))
    }
}

impl SubAssign for QuantizedPower {
    fn sub_assign(&mut self, rhs: QuantizedPower) {
        *self = *self - rhs;
    }
}

impl Sum for QuantizedPower {
    fn sum<I: Iterator<Item = QuantizedPower>>(iter: I) -> QuantizedPower {
        iter.fold(QuantizedPower::ZERO, |acc, p| acc + p)
    }
}

impl fmt::Display for QuantizedPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} grains)", self.to_milliwatts(), self.0)
    }
}

impl Meters {
    /// Zero distance.
    pub const ZERO: Meters = Meters(0.0);

    /// Creates a distance from a raw meter value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "distance cannot be negative, got {value}");
        Meters(value)
    }

    /// Returns the raw meter value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the larger of two distances.
    pub fn max(self, other: Meters) -> Meters {
        Meters(self.0.max(other.0))
    }
}

impl Sub for Dbm {
    type Output = Db;
    /// The ratio between two power levels, e.g. a signal-to-interference
    /// ratio.
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}

impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}

impl Sub for MilliWatts {
    type Output = MilliWatts;
    /// Clamped subtraction: interference bookkeeping can accumulate tiny
    /// floating-point residue, so differences never go below zero.
    fn sub(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for MilliWatts {
    fn sum<I: Iterator<Item = MilliWatts>>(iter: I) -> MilliWatts {
        MilliWatts(iter.map(|p| p.0).sum())
    }
}

impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters::new(self.0 * rhs)
    }
}

impl Div for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl fmt::Display for MilliWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} mW", self.0)
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} m", self.0)
    }
}

impl From<f64> for Meters {
    fn from(value: f64) -> Self {
        Meters::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_to_milliwatts_round_trip() {
        for v in [-95.0, -40.0, 0.0, 17.5, 20.0] {
            let p = Dbm::new(v);
            let back = p.to_milliwatts().to_dbm();
            assert!(
                (back.value() - v).abs() < 1e-9,
                "{v} round-tripped to {back}"
            );
        }
    }

    #[test]
    fn zero_milliwatts_is_min_dbm() {
        assert_eq!(MilliWatts::ZERO.to_dbm(), Dbm::MIN);
        assert!(!Dbm::MIN.is_finite());
    }

    #[test]
    fn power_difference_is_a_ratio() {
        let sir = Dbm::new(-60.0) - Dbm::new(-70.0);
        assert_eq!(sir, Db::new(10.0));
        assert!((sir.to_linear() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn db_from_linear_round_trip() {
        for f in [0.01, 0.5, 1.0, 2.0, 1000.0] {
            let db = Db::from_linear(f);
            assert!((db.to_linear() - f).abs() / f < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn db_from_nonpositive_linear_panics() {
        let _ = Db::from_linear(0.0);
    }

    #[test]
    fn interference_sums_in_linear_domain() {
        // Two equal interferers are +3 dB, not +2x dBm.
        let one = Dbm::new(-80.0).to_milliwatts();
        let sum = one + one;
        assert!((sum.to_dbm().value() - (-80.0 + 3.0103)).abs() < 1e-3);
    }

    #[test]
    fn milliwatt_sum_iterator() {
        let total: MilliWatts = (0..4).map(|_| MilliWatts::new(0.25)).sum();
        assert!((total.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn milliwatt_subtraction_clamps_at_zero() {
        let tiny = MilliWatts::new(1.0) - MilliWatts::new(1.0 + 1e-18);
        assert_eq!(tiny.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_distance_panics() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    fn quantized_add_remove_cycles_cancel_exactly() {
        // The float ledger this type replaces drifts here: repeatedly
        // adding and removing powers of very different magnitudes leaves
        // residue. Grains must cancel bit for bit.
        let strong = QuantizedPower::from_milliwatts(Dbm::new(-40.0).to_milliwatts());
        let faint = QuantizedPower::from_milliwatts(Dbm::new(-120.0).to_milliwatts());
        let mut ledger = QuantizedPower::ZERO;
        ledger += faint;
        for _ in 0..1_000_000 {
            ledger += strong;
            ledger -= strong;
        }
        assert_eq!(ledger, faint);
        assert_eq!(ledger.to_milliwatts(), faint.to_milliwatts());
    }

    #[test]
    fn quantized_round_trip_is_exact_at_radio_scales() {
        for dbm in [-130.0, -95.0, -60.0, -30.0, 0.0, 20.0] {
            let p = Dbm::new(dbm).to_milliwatts();
            let q = QuantizedPower::from_milliwatts(p);
            let back = q.to_milliwatts().value();
            assert!(
                (back - p.value()).abs() <= p.value() * 1e-12,
                "{dbm} dBm: {} vs {back}",
                p.value()
            );
        }
    }

    #[test]
    fn quantized_sum_matches_fold() {
        let parts: Vec<QuantizedPower> = (1..=5)
            .map(|i| QuantizedPower::from_milliwatts(MilliWatts::new(i as f64 * 1e-9)))
            .collect();
        let total: QuantizedPower = parts.iter().copied().sum();
        assert_eq!(
            total.grains(),
            parts.iter().map(|p| p.grains()).sum::<u128>()
        );
        assert!(!total.is_zero() && QuantizedPower::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "ledger underflow")]
    fn quantized_underflow_panics() {
        let a = QuantizedPower::from_milliwatts(MilliWatts::new(1e-10));
        let b = QuantizedPower::from_milliwatts(MilliWatts::new(2e-10));
        let _ = a - b;
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm::new(-80.0).to_string(), "-80.00 dBm");
        assert_eq!(Db::new(4.0).to_string(), "4.00 dB");
        assert_eq!(Meters::new(36.0).to_string(), "36.00 m");
    }
}
