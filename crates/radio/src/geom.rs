//! Planar geometry for node placement.
//!
//! CO-MAP only needs 2-D coordinates: the paper's neighbor tables store
//! `(X, Y)` offsets in meters (Fig. 3) and every interference computation
//! reduces to pairwise distances.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::units::Meters;

/// A 2-D position in meters.
///
/// ```rust
/// use comap_radio::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b).value(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Position {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(self, other: Position) -> Meters {
        Meters::new((self.x - other.x).hypot(self.y - other.y))
    }

    /// Returns this position displaced by `(dx, dy)` meters.
    pub fn offset(self, dx: f64, dy: f64) -> Position {
        Position::new(self.x + dx, self.y + dy)
    }

    /// Returns this position perturbed by a uniformly random error inside a
    /// disc of the given radius.
    ///
    /// This is the paper's position-inaccuracy study (Section VI-B): "we add
    /// random error within a certain range to the coordinates of each node".
    /// Sampling is area-uniform (radius ∝ √u), so errors are not biased
    /// toward the center.
    pub fn with_error<R: Rng + ?Sized>(self, radius: Meters, rng: &mut R) -> Position {
        // An error radius is non-negative; zero means exact positions.
        if radius.value() <= 0.0 {
            return self;
        }
        let r = radius.value() * rng.gen::<f64>().sqrt();
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        self.offset(r * theta.cos(), r * theta.sin())
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(-8.0, 0.0);
        let b = Position::new(36.0, 2.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Position::new(12.5, -3.0);
        assert_eq!(p.distance_to(p), Meters::ZERO);
    }

    #[test]
    fn error_stays_within_radius() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Position::new(10.0, 10.0);
        for _ in 0..1000 {
            let q = p.with_error(Meters::new(10.0), &mut rng);
            assert!(p.distance_to(q).value() <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn zero_error_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Position::new(1.0, 2.0);
        assert_eq!(p.with_error(Meters::ZERO, &mut rng), p);
    }

    #[test]
    fn error_is_area_uniform() {
        // With area-uniform sampling, ~25% of samples fall inside r/2.
        let mut rng = StdRng::seed_from_u64(42);
        let p = Position::ORIGIN;
        let n = 20_000;
        let inside = (0..n)
            .filter(|_| {
                p.with_error(Meters::new(8.0), &mut rng)
                    .distance_to(p)
                    .value()
                    < 4.0
            })
            .count();
        let frac = inside as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "inner-disc fraction {frac}");
    }
}
