//! Packet-reception and carrier-sense probabilities (paper eqs. 2–4).
//!
//! These closed forms are the analytical heart of CO-MAP: a node converts
//! the *positions* of its neighbors into *interference relations* without
//! any trial transmissions.
//!
//! With both senders at equal transmit power and log-normal shadowing, the
//! SIR at a receiver `d` meters from its sender and `r` meters from an
//! interferer is `−10 α log₁₀(d/r) + (X_σ − X'_σ)`, where the two shadowing
//! draws are independent. The composed variable is Gaussian with deviation
//! `√2 σ`, giving eq. (3):
//!
//! ```text
//! PRR = 1 − Φ( (T_SIR + 10 α log₁₀(d/r)) / (√2 σ) )
//! ```
//!
//! and eq. (4) for the probability that a neighbor at distance `r` *cannot*
//! carrier-sense a sender:
//!
//! ```text
//! Pr{P_r < T_cs} = Φ( (T_cs − P_d₀ + 10 α log₁₀(r/d₀)) / σ )
//! ```

use serde::{Deserialize, Serialize};

use crate::math::std_normal_cdf;
use crate::pathloss::LogNormalShadowing;
use crate::units::{Db, Dbm, Meters};

/// The probabilistic reception model of paper Section IV-B.
///
/// Bundles a propagation environment with the SIR decoding threshold
/// `T_SIR`, and exposes eq. (3) / eq. (4) as methods.
///
/// ```rust
/// use comap_radio::{ReceptionModel, LogNormalShadowing,
///                   units::{Db, Dbm, Meters}};
/// let model = ReceptionModel::new(
///     LogNormalShadowing::testbed(Dbm::new(0.0)), Db::new(4.0));
/// // An interferer much closer to the receiver than the sender is fatal…
/// assert!(model.prr(Meters::new(30.0), Meters::new(3.0)) < 0.05);
/// // …while a remote one is harmless.
/// assert!(model.prr(Meters::new(3.0), Meters::new(200.0)) > 0.99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReceptionModel {
    channel: LogNormalShadowing,
    t_sir: Db,
}

impl ReceptionModel {
    /// Creates a reception model over `channel` with decoding threshold
    /// `t_sir` (the paper uses 4 dB for the lowest 802.11b rate and 10 for
    /// the NS-2 experiments, Table I).
    pub fn new(channel: LogNormalShadowing, t_sir: Db) -> Self {
        ReceptionModel { channel, t_sir }
    }

    /// The underlying propagation model.
    pub fn channel(&self) -> &LogNormalShadowing {
        &self.channel
    }

    /// The SIR decoding threshold `T_SIR`.
    pub fn t_sir(&self) -> Db {
        self.t_sir
    }

    /// Eq. (3): probability that a packet over a link of length `d` is
    /// received despite one concurrent interferer `r` meters from the
    /// receiver (equal transmit powers).
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero (an interferer colocated with the receiver).
    pub fn prr(&self, d: Meters, r: Meters) -> f64 {
        assert!(r.value() > 0.0, "interferer distance must be positive");
        let d = d.max(self.channel.reference_distance());
        let r = r.max(self.channel.reference_distance());
        let sigma = self.channel.sigma().value();
        let arg = self.t_sir.value() + 10.0 * self.channel.alpha() * (d / r).log10();
        // A standard deviation is non-negative; zero means deterministic.
        if sigma <= 0.0 {
            // Deterministic channel: step function.
            return if arg > 0.0 { 0.0 } else { 1.0 };
        }
        1.0 - std_normal_cdf(arg / (std::f64::consts::SQRT_2 * sigma))
    }

    /// Eq. (3) with an explicit SIR threshold, for rate-dependent checks.
    pub fn prr_with_threshold(&self, d: Meters, r: Meters, t_sir: Db) -> f64 {
        ReceptionModel {
            channel: self.channel,
            t_sir,
        }
        .prr(d, r)
    }

    /// Eq. (4): probability that a node `r` meters from a sender receives
    /// its signal below the carrier-sense threshold `t_cs` — i.e. *fails*
    /// to detect the transmission.
    pub fn cs_miss_probability(&self, r: Meters, t_cs: Dbm) -> f64 {
        let r = r.max(self.channel.reference_distance());
        let sigma = self.channel.sigma().value();
        let mean = self.channel.mean_power(r); // P_d0 − 10 α log10(r/d0)
        let arg = (t_cs - mean).value();
        // A standard deviation is non-negative; zero means deterministic.
        if sigma <= 0.0 {
            return if arg > 0.0 { 1.0 } else { 0.0 };
        }
        std_normal_cdf(arg / sigma)
    }

    /// The distance beyond which [`Self::cs_miss_probability`] exceeds
    /// `p` — the paper's probabilistic carrier-sense range (a node is a
    /// *potential hidden terminal* when `Pr{P_r < T_cs} > 90 %`).
    ///
    /// Solved in closed form: the miss probability is monotonically
    /// increasing in `r`, so invert eq. (4) at `Φ⁻¹(p)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn cs_range_for_miss_probability(&self, t_cs: Dbm, p: f64) -> Meters {
        let z = crate::math::std_normal_quantile(p);
        // T_cs − P(d0) + 10 α log10(r/d0) = z σ
        let margin =
            (self.channel.reference_power() - t_cs).value() + z * self.channel.sigma().value();
        if margin <= 0.0 {
            return self.channel.reference_distance();
        }
        Meters::new(
            self.channel.reference_distance().value()
                * 10f64.powf(margin / (10.0 * self.channel.alpha())),
        )
    }

    /// The distance inside which an interferer drives PRR on a `d`-meter
    /// link below `threshold` — the paper's *interference range* used when
    /// enumerating potential hidden terminals.
    ///
    /// Solved in closed form from eq. (3).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold < 1`.
    pub fn interference_range(&self, d: Meters, threshold: f64) -> Meters {
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "PRR threshold must be in (0, 1)"
        );
        let d = d.max(self.channel.reference_distance());
        let sigma = self.channel.sigma().value();
        // PRR = threshold  ⇔  (T_sir + 10α log10(d/r)) / (√2 σ) = Φ⁻¹(1 − threshold)
        let z = crate::math::std_normal_quantile(1.0 - threshold);
        let log_ratio = (z * std::f64::consts::SQRT_2 * sigma - self.t_sir.value())
            / (10.0 * self.channel.alpha());
        // log10(d/r) = log_ratio  ⇒  r = d / 10^log_ratio
        Meters::new(d.value() / 10f64.powf(log_ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReceptionModel {
        ReceptionModel::new(LogNormalShadowing::testbed(Dbm::new(0.0)), Db::new(4.0))
    }

    #[test]
    fn prr_is_a_probability() {
        let m = model();
        for d in [1.0, 5.0, 15.0, 40.0] {
            for r in [1.0, 5.0, 15.0, 40.0, 100.0] {
                let p = m.prr(Meters::new(d), Meters::new(r));
                assert!((0.0..=1.0).contains(&p), "prr({d},{r}) = {p}");
            }
        }
    }

    #[test]
    fn prr_improves_as_interferer_recedes() {
        let m = model();
        let d = Meters::new(15.0);
        let mut prev = 0.0;
        for r in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
            let p = m.prr(d, Meters::new(r));
            assert!(p >= prev, "PRR not monotone at r = {r}");
            prev = p;
        }
    }

    #[test]
    fn prr_degrades_with_longer_links() {
        let m = model();
        let r = Meters::new(30.0);
        let near = m.prr(Meters::new(5.0), r);
        let far = m.prr(Meters::new(25.0), r);
        assert!(near > far);
    }

    #[test]
    fn equal_distances_give_fixed_quantile() {
        // d == r ⇒ PRR = 1 − Φ(T_sir / (√2 σ)); for T_sir = 4, σ = 4:
        // 1 − Φ(0.7071) ≈ 0.2398.
        let m = model();
        let p = m.prr(Meters::new(20.0), Meters::new(20.0));
        assert!((p - 0.2398).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn deterministic_channel_is_a_step() {
        let chan = LogNormalShadowing::from_friis(Dbm::new(0.0), 3.0, Db::ZERO);
        let m = ReceptionModel::new(chan, Db::new(4.0));
        // d/r small (strong signal): success; d/r large: failure.
        assert_eq!(m.prr(Meters::new(5.0), Meters::new(50.0)), 1.0);
        assert_eq!(m.prr(Meters::new(50.0), Meters::new(5.0)), 0.0);
    }

    #[test]
    fn cs_miss_probability_grows_with_distance() {
        let m = model();
        let t_cs = Dbm::new(-82.0);
        let mut prev = 0.0;
        for r in [5.0, 10.0, 20.0, 30.0, 50.0, 80.0] {
            let p = m.cs_miss_probability(Meters::new(r), t_cs);
            assert!(p >= prev, "not monotone at {r}");
            prev = p;
        }
        assert!(m.cs_miss_probability(Meters::new(5.0), t_cs) < 0.01);
        assert!(m.cs_miss_probability(Meters::new(200.0), t_cs) > 0.99);
    }

    #[test]
    fn cs_range_inverts_miss_probability() {
        let m = model();
        let t_cs = Dbm::new(-82.0);
        for p in [0.1, 0.5, 0.9] {
            let r = m.cs_range_for_miss_probability(t_cs, p);
            let back = m.cs_miss_probability(r, t_cs);
            assert!((back - p).abs() < 1e-9, "p = {p}: r = {r}, back = {back}");
        }
    }

    #[test]
    fn cs_range_at_half_matches_mean_range() {
        // At p = 0.5 the probabilistic range equals the mean-power range.
        let m = model();
        let t_cs = Dbm::new(-82.0);
        let r = m.cs_range_for_miss_probability(t_cs, 0.5);
        let mean_range = m.channel().range_for_threshold(t_cs);
        assert!((r.value() - mean_range.value()).abs() < 1e-6);
    }

    #[test]
    fn interference_range_inverts_prr() {
        let m = model();
        let d = Meters::new(15.0);
        for threshold in [0.5, 0.9, 0.95] {
            let r = m.interference_range(d, threshold);
            let back = m.prr(d, r);
            assert!(
                (back - threshold).abs() < 1e-9,
                "threshold {threshold}: r = {r}"
            );
        }
    }

    #[test]
    fn interference_range_grows_with_stricter_threshold() {
        let m = model();
        let d = Meters::new(15.0);
        let loose = m.interference_range(d, 0.5);
        let strict = m.interference_range(d, 0.95);
        assert!(strict > loose);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn colocated_interferer_panics() {
        let _ = model().prr(Meters::new(10.0), Meters::ZERO);
    }
}
