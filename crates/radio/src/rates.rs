//! 802.11 bit rates and their decoding requirements.
//!
//! The testbed experiments run 802.11b/g hardware (Intel 4965AGN) with
//! Minstrel rate adaptation; the NS-2 experiments fix 6 Mbps (Table I).
//! Rates matter to CO-MAP twice: transmission *durations* scale with the
//! rate, and each rate has a minimum SINR below which frames are lost —
//! the paper quotes "10 dB for 11 Mbps down to 4 dB for 1 Mbps".

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::Db;

/// The PHY family a rate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhyStandard {
    /// DSSS / HR-DSSS (802.11b): 1–11 Mbps.
    Dsss,
    /// ERP-OFDM (802.11g): 6–54 Mbps.
    ErpOfdm,
}

/// An 802.11 b/g bit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Rate {
    Mbps1,
    Mbps2,
    Mbps5_5,
    Mbps11,
    Mbps6,
    Mbps9,
    Mbps12,
    Mbps18,
    Mbps24,
    Mbps36,
    Mbps48,
    Mbps54,
}

impl Rate {
    /// All DSSS/HR-DSSS (802.11b) rates, slowest first.
    pub const DSSS_ALL: [Rate; 4] = [Rate::Mbps1, Rate::Mbps2, Rate::Mbps5_5, Rate::Mbps11];

    /// All ERP-OFDM (802.11g) rates, slowest first.
    pub const OFDM_ALL: [Rate; 8] = [
        Rate::Mbps6,
        Rate::Mbps9,
        Rate::Mbps12,
        Rate::Mbps18,
        Rate::Mbps24,
        Rate::Mbps36,
        Rate::Mbps48,
        Rate::Mbps54,
    ];

    /// The rate set of a PHY standard, slowest first.
    pub fn all(standard: PhyStandard) -> &'static [Rate] {
        match standard {
            PhyStandard::Dsss => &Self::DSSS_ALL,
            PhyStandard::ErpOfdm => &Self::OFDM_ALL,
        }
    }

    /// Nominal bit rate in bits per second.
    pub fn bits_per_second(self) -> f64 {
        match self {
            Rate::Mbps1 => 1e6,
            Rate::Mbps2 => 2e6,
            Rate::Mbps5_5 => 5.5e6,
            Rate::Mbps11 => 11e6,
            Rate::Mbps6 => 6e6,
            Rate::Mbps9 => 9e6,
            Rate::Mbps12 => 12e6,
            Rate::Mbps18 => 18e6,
            Rate::Mbps24 => 24e6,
            Rate::Mbps36 => 36e6,
            Rate::Mbps48 => 48e6,
            Rate::Mbps54 => 54e6,
        }
    }

    /// The PHY family this rate belongs to.
    pub fn standard(self) -> PhyStandard {
        match self {
            Rate::Mbps1 | Rate::Mbps2 | Rate::Mbps5_5 | Rate::Mbps11 => PhyStandard::Dsss,
            _ => PhyStandard::ErpOfdm,
        }
    }

    /// Minimum SINR required to decode this rate.
    ///
    /// DSSS numbers follow the paper ("10 dB for 11 Mbps down to 4 dB for
    /// 1 Mbps"); ERP-OFDM numbers are standard receiver-sensitivity-derived
    /// values.
    pub fn min_sinr(self) -> Db {
        Db::new(match self {
            Rate::Mbps1 => 4.0,
            Rate::Mbps2 => 7.0,
            Rate::Mbps5_5 => 9.0,
            Rate::Mbps11 => 10.0,
            Rate::Mbps6 => 6.0,
            Rate::Mbps9 => 8.0,
            Rate::Mbps12 => 10.0,
            Rate::Mbps18 => 12.0,
            Rate::Mbps24 => 17.0,
            Rate::Mbps36 => 21.0,
            Rate::Mbps48 => 25.0,
            Rate::Mbps54 => 27.0,
        })
    }

    /// Data bits per OFDM symbol (`N_DBPS`), for ERP-OFDM duration math.
    /// Returns `None` for DSSS rates, which are not symbol-blocked.
    pub fn bits_per_ofdm_symbol(self) -> Option<u32> {
        match self {
            Rate::Mbps6 => Some(24),
            Rate::Mbps9 => Some(36),
            Rate::Mbps12 => Some(48),
            Rate::Mbps18 => Some(72),
            Rate::Mbps24 => Some(96),
            Rate::Mbps36 => Some(144),
            Rate::Mbps48 => Some(192),
            Rate::Mbps54 => Some(216),
            _ => None,
        }
    }

    /// The slowest (most robust) rate of this rate's PHY family, used for
    /// control frames and broadcast discovery headers.
    pub fn base_rate(self) -> Rate {
        match self.standard() {
            PhyStandard::Dsss => Rate::Mbps1,
            PhyStandard::ErpOfdm => Rate::Mbps6,
        }
    }

    /// The highest rate of the family whose minimum SINR is at most `sinr`,
    /// or `None` if even the base rate cannot be decoded. This is the
    /// "ideal" rate-selection rule used by the simulator's auto-rate.
    pub fn best_for_sinr(standard: PhyStandard, sinr: Db) -> Option<Rate> {
        Rate::all(standard)
            .iter()
            .rev()
            .find(|r| r.min_sinr() <= sinr)
            .copied()
    }

    /// The next rate down in the family, or `None` at the base rate.
    pub fn step_down(self) -> Option<Rate> {
        let set = Rate::all(self.standard());
        let idx = set.iter().position(|&r| r == self)?;
        idx.checked_sub(1).map(|i| set[i])
    }

    /// The next rate up in the family, or `None` at the top rate.
    pub fn step_up(self) -> Option<Rate> {
        let set = Rate::all(self.standard());
        let idx = set.iter().position(|&r| r == self)?;
        set.get(idx + 1).copied()
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbps", self.bits_per_second() / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_sets_are_sorted_by_speed() {
        for std in [PhyStandard::Dsss, PhyStandard::ErpOfdm] {
            let rates = Rate::all(std);
            for w in rates.windows(2) {
                assert!(w[0].bits_per_second() < w[1].bits_per_second());
            }
        }
    }

    #[test]
    fn min_sinr_is_monotone_in_rate() {
        for std in [PhyStandard::Dsss, PhyStandard::ErpOfdm] {
            let rates = Rate::all(std);
            for w in rates.windows(2) {
                assert!(w[0].min_sinr() < w[1].min_sinr(), "{} vs {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn paper_quoted_dsss_thresholds() {
        assert_eq!(Rate::Mbps1.min_sinr(), Db::new(4.0));
        assert_eq!(Rate::Mbps11.min_sinr(), Db::new(10.0));
    }

    #[test]
    fn best_for_sinr_picks_fastest_decodable() {
        assert_eq!(
            Rate::best_for_sinr(PhyStandard::Dsss, Db::new(30.0)),
            Some(Rate::Mbps11)
        );
        assert_eq!(
            Rate::best_for_sinr(PhyStandard::Dsss, Db::new(9.5)),
            Some(Rate::Mbps5_5)
        );
        assert_eq!(
            Rate::best_for_sinr(PhyStandard::Dsss, Db::new(4.0)),
            Some(Rate::Mbps1)
        );
        assert_eq!(Rate::best_for_sinr(PhyStandard::Dsss, Db::new(3.9)), None);
        assert_eq!(
            Rate::best_for_sinr(PhyStandard::ErpOfdm, Db::new(22.0)),
            Some(Rate::Mbps36)
        );
    }

    #[test]
    fn stepping_walks_the_family() {
        assert_eq!(Rate::Mbps1.step_down(), None);
        assert_eq!(Rate::Mbps11.step_up(), None);
        assert_eq!(Rate::Mbps2.step_down(), Some(Rate::Mbps1));
        assert_eq!(Rate::Mbps2.step_up(), Some(Rate::Mbps5_5));
        assert_eq!(Rate::Mbps54.step_down(), Some(Rate::Mbps48));
    }

    #[test]
    fn ofdm_symbol_bits_match_rate() {
        // N_DBPS * 250k symbols/s == bit rate
        for r in Rate::OFDM_ALL {
            let ndbps = r.bits_per_ofdm_symbol().unwrap();
            assert_eq!(ndbps as f64 * 250_000.0, r.bits_per_second(), "{r}");
        }
        assert_eq!(Rate::Mbps11.bits_per_ofdm_symbol(), None);
    }

    #[test]
    fn base_rates() {
        assert_eq!(Rate::Mbps11.base_rate(), Rate::Mbps1);
        assert_eq!(Rate::Mbps54.base_rate(), Rate::Mbps6);
    }
}
