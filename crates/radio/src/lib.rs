//! # comap-radio — propagation and interference models
//!
//! Radio-layer substrate of the CO-MAP reproduction: strongly-typed power
//! and distance units, planar geometry, the log-normal shadowing propagation
//! model (paper eq. 1), and the closed-form packet-reception and
//! carrier-sense-miss probabilities the CO-MAP protocol is built on
//! (paper eqs. 2–4).
//!
//! The module map follows the paper's Section IV-B:
//!
//! * [`units`] — `Dbm`, `Db`, `MilliWatts`, `Meters` newtypes,
//! * [`geom`] — [`Position`] and distances,
//! * [`math`] — `erf`, the standard normal CDF `Φ` and its inverse,
//! * [`pathloss`] — Friis free-space reference and [`LogNormalShadowing`],
//! * [`prr`] — eq. (3) `PRR` and eq. (4) `Pr{P_r < T_cs}`,
//! * [`rates`] — 802.11 (HR/DSSS and ERP-OFDM) bit rates with minimum SINR,
//! * [`stream`] — counter-based keyed random streams (SplitMix64), the
//!   order-independent draw discipline every per-event sample follows.
//!
//! # Example
//!
//! Probability that a transmission at 15 m survives an interferer at 22 m
//! (the paper's hidden-terminal testbed geometry, Fig. 2):
//!
//! ```rust
//! use comap_radio::{prr::ReceptionModel, pathloss::LogNormalShadowing,
//!                   units::{Db, Dbm, Meters}};
//!
//! let chan = LogNormalShadowing::testbed(Dbm::new(0.0));
//! let model = ReceptionModel::new(chan, Db::new(4.0));
//! let p = model.prr(Meters::new(15.0), Meters::new(22.0));
//! assert!(p > 0.5 && p < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod geom;
pub mod math;
pub mod pathloss;
pub mod prr;
pub mod rates;
pub mod stream;
pub mod units;

pub use geom::Position;
pub use pathloss::{FreeSpace, LogNormalShadowing};
pub use prr::ReceptionModel;
pub use rates::{PhyStandard, Rate};
pub use units::{Db, Dbm, Meters, MilliWatts};

/// Default thermal noise floor of a 2.4 GHz WLAN receiver.
///
/// The paper (Section IV-B) treats the noise floor as an environment
/// constant of −95 dBm and studies conflicts through SIR rather than SINR.
pub const NOISE_FLOOR: Dbm = Dbm::new(-95.0);
