//! Special functions used by the reception model.
//!
//! The paper's eqs. (3) and (4) are stated in terms of `Φ`, the cumulative
//! distribution function of the standard normal distribution. `f64` has no
//! built-in `erf`, so we implement one from two classical, individually
//! verifiable pieces: the Maclaurin series of `erf` for small arguments and
//! the Legendre continued fraction of `erfc` for the tails (evaluated with
//! the modified Lentz algorithm). Both converge to full `f64` precision in
//! the ranges where they are used.

/// Crossover point between the series and the continued fraction.
const SPLIT: f64 = 1.5;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// ```rust
/// use comap_radio::math::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x.abs() <= SPLIT {
        erf_series(x)
    } else if x > 0.0 {
        1.0 - erfc_cf(x)
    } else {
        erfc_cf(-x) - 1.0
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, accurate for
/// large positive arguments where `1 − erf(x)` would lose all precision.
///
/// ```rust
/// use comap_radio::math::erfc;
/// assert!(erfc(6.0) > 0.0 && erfc(6.0) < 1e-15);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > SPLIT {
        erfc_cf(x)
    } else if x >= -SPLIT {
        1.0 - erf_series(x)
    } else {
        2.0 - erfc_cf(-x)
    }
}

/// Maclaurin series `erf(x) = 2/√π Σ (−1)ⁿ x^(2n+1) / (n! (2n+1))`.
///
/// For `|x| ≤ 1.5` the terms shrink fast enough that 40 terms reach full
/// precision; we stop once a term no longer changes the sum.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^(2n+1) / n!
    let mut sum = x; // accumulates term / (2n+1)
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contribution = term / (2 * n + 1) as f64;
        let new_sum = sum + contribution;
        if new_sum == sum {
            break;
        }
        sum = new_sum;
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Legendre continued fraction
/// `erfc(x) = e^(−x²)/√π · 1/(x + (1/2)/(x + (2/2)/(x + (3/2)/(x + …))))`
/// for `x > 0`, evaluated with the modified Lentz algorithm.
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    if x > 27.0 {
        // exp(-x^2) underflows to 0 well before this point.
        return 0.0;
    }
    const TINY: f64 = 1e-300;
    let mut f = x;
    let mut c = x;
    let mut d = 0.0;
    for n in 1..500 {
        let a = n as f64 / 2.0;
        // b coefficients alternate x, x, x... in this form: each level is
        // x + a_n / (next). Modified Lentz with b = x, a = n/2.
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 {
            break;
        }
    }
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * f)
}

/// The standard normal cumulative distribution function
/// `Φ(x) = (1/√2π) ∫_{−∞}^{x} e^(−t²/2) dt`.
///
/// ```rust
/// use comap_radio::math::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// The inverse of [`std_normal_cdf`] (the probit function), an initial
/// rational guess refined with Newton steps. Used to convert probability
/// thresholds such as the paper's "`Pr{P_r < T_cs} > 90 %`" hidden-terminal
/// criterion into equivalent power margins.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    let mut x = {
        let q = p - 0.5;
        if q.abs() <= 0.425 {
            let r = 0.180625 - q * q;
            q * (2.5066282388 + 30.0 * r) / (1.0 + 10.0 * r)
        } else {
            let r = if q < 0.0 { p } else { 1.0 - p };
            let t = (-2.0 * r.ln()).sqrt();
            let sign = if q < 0.0 { -1.0 } else { 1.0 };
            sign * (t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t))
        }
    };
    for _ in 0..60 {
        let f = std_normal_cdf(x) - p;
        let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        if pdf < 1e-300 {
            break;
        }
        let step = f / pdf;
        x -= step;
        if step.abs() < 1e-14 {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun table 7.1 and scipy.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-12, "erf({x}) = {got}, want {want}");
            assert!((erf(-x) + want).abs() < 1e-12, "erf is odd at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [
            -3.0, -1.6, -1.0, -0.2, 0.0, 0.3, 1.4, 1.5, 1.6, 1.7, 3.9, 5.0,
        ] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "at {x}");
        }
    }

    #[test]
    fn erfc_tail_is_accurate() {
        // scipy: erfc(6) = 2.1519736712498913e-17
        let v = erfc(6.0);
        assert!((v - 2.1519736712498913e-17).abs() < 1e-28, "erfc(6) = {v}");
        // scipy: erfc(10) = 2.0884875837625446e-45
        let v = erfc(10.0);
        assert!((v - 2.0884875837625446e-45).abs() < 1e-56, "erfc(10) = {v}");
        assert_eq!(erfc(30.0), 0.0);
    }

    #[test]
    fn erfc_is_continuous_at_split() {
        let below = erfc(SPLIT - 1e-9);
        let above = erfc(SPLIT + 1e-9);
        assert!((below - above).abs() < 1e-8);
    }

    #[test]
    fn cdf_matches_reference_values() {
        // scipy.stats.norm.cdf
        let table = [
            (-3.0, 0.0013498980316300933),
            (-1.0, 0.15865525393145707),
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (1.6448536269514722, 0.95),
            (3.0, 0.9986501019683699),
        ];
        for (x, want) in table {
            let got = std_normal_cdf(x);
            assert!((got - want).abs() < 1e-12, "Φ({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -8.0;
        while x <= 8.0 {
            let v = std_normal_cdf(x);
            assert!(v >= prev, "Φ not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.05, 0.1, 0.5, 0.9, 0.95, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-10, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn quantile_of_90_percent_is_1_2816() {
        assert!((std_normal_quantile(0.9) - 1.2815515655446004).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires 0 < p < 1")]
    fn quantile_rejects_unit_probability() {
        let _ = std_normal_quantile(1.0);
    }
}
