//! Counter-based (splittable) random streams.
//!
//! Every per-event draw in the simulator is a **pure function of a
//! stable key** — `(seed, identity, counter)` — instead of the next
//! value of a shared sequential generator. Keyed draws are
//! order-independent by construction: any sweep order, any backend,
//! any shard visits the same key and reads the same value, so there is
//! no mutable RNG state to serialize the hot path or to split across
//! region shards.
//!
//! The derivation is SplitMix64 throughout: [`mix64`] is the
//! full-avalanche finalizer, [`keyed_state`] folds the key into a
//! 64-bit stream state, and the `*_from_state` samplers expand that
//! state into the distributions the simulator needs. [`CounterRng`]
//! wraps a keyed state as an [`RngCore`](rand::RngCore) for callees
//! that take a generic `impl Rng` (backoff draws, localization noise):
//! within one key it steps like an ordinary SplitMix64 generator, but
//! the whole stream is still a pure function of the key.
//!
//! The slow-fade streams introduced with the mobility rework (DESIGN.md
//! §8) pioneered this pattern; the fast-fade, hazard-survival, backoff
//! and localization draws follow it (DESIGN.md §11), which is what the
//! `rng-discipline` lint's zero budget enforces.

use rand::RngCore;

/// Normal draws from [`normal_from_state`] are clamped to this many
/// standard deviations. The clip is a modeling choice (one-sided mass
/// beyond 6σ is ≈ 1e-9, far below anything the simulator can resolve)
/// that buys hard geometric bounds: a fade can never lift a link's
/// power by more than `6σ` dB, so relevance scans may reject far nodes
/// on distance alone.
pub const NORMAL_CLAMP_SIGMA: f64 = 6.0;

/// `2⁻⁵³` — converts the top 53 bits of a `u64` into a `[0, 1)` float.
const F64_SCALE: f64 = 1.0 / 9_007_199_254_740_992.0;

/// SplitMix64's golden-gamma increment, also used to decorrelate the
/// second Box–Muller input from the first.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Packs an ordered pair of node ids into the 64-bit identity half of a
/// stream key. Injective for ids below 2³², which bounds the node count
/// far above anything the simulator will see.
#[inline]
pub fn link_key(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Folds `(seed, ident, counter)` into a 64-bit stream state — the root
/// of every counter-based draw. Each component passes through its own
/// [`mix64`] round, so neighbouring keys (same link, consecutive
/// counters; same counter, neighbouring links) land in statistically
/// unrelated states. The seed is mixed *before* the identity joins:
/// without that round, `(seed ⊕ d, ident ⊕ d)` would alias
/// `(seed, ident)` exactly — structured nearby seeds (a base plus a
/// node index, say) would hand adjacent identities the same stream.
/// The collision-freedom proptest in `rng_props.rs` pins this.
#[inline]
pub fn keyed_state(seed: u64, ident: u64, counter: u64) -> u64 {
    let h = mix64(seed ^ 0x5851_F42D_4C95_7F2D);
    let h = mix64(h ^ ident);
    mix64(h ^ counter)
}

/// One standard-normal draw from a keyed state: two decorrelated
/// uniforms through Box–Muller, clamped to ±[`NORMAL_CLAMP_SIGMA`].
///
/// The first uniform takes the top 53 bits offset by half an ulp, so it
/// is strictly inside `(0, 1)`: the Box–Muller radius is always finite
/// and no rejection loop is needed — the draw is exactly two
/// [`mix64`] rounds per key, unconditionally.
#[inline]
pub fn normal_from_state(h: u64) -> f64 {
    let a = mix64(h);
    let b = mix64(h.wrapping_add(GOLDEN_GAMMA));
    let u1 = ((a >> 11) as f64 + 0.5) * F64_SCALE;
    let u2 = (b >> 11) as f64 * F64_SCALE;
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    z.clamp(-NORMAL_CLAMP_SIGMA, NORMAL_CLAMP_SIGMA)
}

/// One uniform draw in `[0, 1)` from a keyed state (53 random mantissa
/// bits, matching the `Standard` `f64` distribution of the vendored
/// `rand`).
#[inline]
pub fn uniform_from_state(h: u64) -> f64 {
    (mix64(h) >> 11) as f64 * F64_SCALE
}

/// A counter-keyed generator: SplitMix64 seeded by [`keyed_state`].
///
/// Use this where a callee takes a generic `impl Rng` (uniform backoff
/// slots, the area-uniform localization-error disc) but the draw must
/// still be a pure function of a stable key. Every `next_u64` advances
/// the state by the golden gamma and finalizes with [`mix64`] — the
/// standard SplitMix64 stream — so a key owns an entire independent
/// sequence, not just one value.
///
/// ```rust
/// use comap_radio::stream::CounterRng;
/// use rand::Rng;
///
/// let mut a = CounterRng::from_key(7, 3, 41);
/// let mut b = CounterRng::from_key(7, 3, 41);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // pure function of the key
/// ```
#[derive(Debug, Clone)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// A generator whose stream is a pure function of
    /// `(seed, ident, counter)`.
    #[inline]
    pub fn from_key(seed: u64, ident: u64, counter: u64) -> Self {
        CounterRng {
            state: keyed_state(seed, ident, counter),
        }
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn keyed_state_separates_every_component() {
        let base = keyed_state(1, 2, 3);
        assert_eq!(base, keyed_state(1, 2, 3));
        assert_ne!(base, keyed_state(2, 2, 3));
        assert_ne!(base, keyed_state(1, 3, 3));
        assert_ne!(base, keyed_state(1, 2, 4));
    }

    #[test]
    fn link_key_is_injective_and_ordered() {
        assert_ne!(link_key(1, 2), link_key(2, 1));
        assert_ne!(link_key(0, 1), link_key(1, 0));
        assert_eq!(link_key(7, 9), (7u64 << 32) | 9);
    }

    #[test]
    fn normal_from_state_has_standard_moments() {
        let n = 50_000u32;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for i in 0..n {
            let z = normal_from_state(keyed_state(0xFEED, u64::from(i % 211), u64::from(i)));
            assert!(z.abs() <= NORMAL_CLAMP_SIGMA);
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / f64::from(n);
        let var = sumsq / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn uniform_from_state_is_uniform_in_unit_interval() {
        let n = 50_000u32;
        let mut sum = 0.0;
        for i in 0..n {
            let u = uniform_from_state(keyed_state(3, 5, u64::from(i)));
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn counter_rng_streams_are_keyed_and_uniform() {
        let mut a = CounterRng::from_key(11, 4, 9);
        let mut b = CounterRng::from_key(11, 4, 9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = CounterRng::from_key(11, 4, 10);
        assert_ne!(a.next_u64(), c.next_u64());

        // gen_range through the blanket Rng impl stays in range and
        // roughly uniform.
        let mut sum = 0u64;
        let n = 40_000u32;
        for i in 0..n {
            let mut rng = CounterRng::from_key(1, 2, u64::from(i));
            let v = rng.gen_range(0u32..=31);
            assert!(v <= 31);
            sum += u64::from(v);
        }
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 15.5).abs() < 0.3, "mean = {mean}");
    }
}
