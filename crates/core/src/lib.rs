//! # comap-core — the CO-MAP protocol
//!
//! CO-MAP (*Co-Occurrence MAP*) is the primary contribution of the paper
//! being reproduced: a unified, distributed framework that converts device
//! **positions** into **interference relations** to handle both exposed-
//! and hidden-terminal problems in mobile WLANs.
//!
//! The crate mirrors the paper's Section IV design:
//!
//! * [`neighbor`] — per-node neighbor tables of 2-hop positions, with the
//!   movement-threshold update rule of Section V (mobility management),
//! * [`validate`] — concurrency validation of an exposed transmission
//!   against an ongoing one via eq. (3), in both directions (Fig. 4),
//! * [`cooccurrence`] — the co-occurrence map itself: per-link caches of
//!   validated concurrent receivers (Fig. 5),
//! * [`hidden`] — the hidden-terminal census of Section IV-D1
//!   (interference range ∩ `Pr{P_r < T_cs} > 90 %`),
//! * [`model`] — the analytical goodput model of Section IV-D2 extending
//!   Bianchi's DCF analysis with hidden terminals (eqs. 5–9),
//! * [`adapt`] — the precomputed best-(CW, payload) table indexed by
//!   hidden-terminal and contender counts (Section IV-D3),
//! * [`scheduler`] — the enhanced multiple-ET scheduling rule
//!   (`RSSI₂ ≥ RSSI₁ + T'_cs` ⇒ abandon, Section IV-C3),
//! * [`location`] — the location-sharing service and its update policy,
//! * [`protocol`] — [`Protocol`], the façade tying the pieces together.
//!
//! # Example
//!
//! Validate a concurrent transmission in the paper's Fig. 4 geometry:
//!
//! ```rust
//! use comap_core::{ProtocolConfig, Protocol};
//! use comap_radio::Position;
//!
//! # fn main() -> Result<(), comap_core::CoMapError<&'static str>> {
//! let mut proto = Protocol::new("C11", ProtocolConfig::testbed());
//! proto.set_own_position(Position::new(6.0, 0.0));
//! proto.on_position_report("AP1", Position::new(10.0, 0.0));
//! proto.on_position_report("C2", Position::new(-30.0, 0.0));
//! proto.on_position_report("AP0", Position::new(-34.0, 0.0));
//!
//! // While C2 → AP0 is on the air, may C11 transmit to AP1?
//! let decision = proto.concurrency_decision(("C2", "AP0"), "AP1")?;
//! assert!(decision.allowed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapt;
pub mod config;
pub mod cooccurrence;
pub mod error;
pub mod hidden;
pub mod location;
pub mod model;
pub mod neighbor;
pub mod protocol;
pub mod scheduler;
pub mod validate;

pub use adapt::{AdaptationTable, TxSetting};
pub use config::{MobilityConfig, ProtocolConfig};
pub use cooccurrence::CoOccurrenceMap;
pub use error::CoMapError;
pub use hidden::{HtCensus, NeighborClass};
pub use location::LocationService;
pub use model::{DcfModel, ModelInput};
pub use neighbor::NeighborTable;
pub use protocol::Protocol;
pub use scheduler::{EtAction, EtScheduler};
pub use validate::{ConcurrencyDecision, ConcurrencyValidator};

/// The address bound required of node identifiers throughout the crate.
///
/// Implemented automatically for anything cheap to copy, hashable and
/// orderable — `&'static str` in the examples, small integer ids in the
/// simulator.
pub trait Addr: Copy + Eq + std::hash::Hash + Ord + std::fmt::Debug {}

impl<T: Copy + Eq + std::hash::Hash + Ord + std::fmt::Debug> Addr for T {}

/// A directed link `src → dst`.
pub type Link<A> = (A, A);
