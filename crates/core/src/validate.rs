//! Concurrency validation (paper Section IV-C1, Fig. 4).
//!
//! On discovering an ongoing transmission `src → dst`, a candidate exposed
//! terminal `me` wanting to send to `rx` checks **both directions** of
//! eq. (3):
//!
//! 1. *its own impact on the ongoing link*: `PRR(d₁ = |src−dst|,
//!    r₁ = |me−dst|)` — will the ongoing receiver still decode?
//! 2. *the ongoing link's impact on it*: `PRR(d₂ = |me−rx|,
//!    r₂ = |rx−src|)` — will my receiver decode despite the ongoing
//!    sender?
//!
//! The transmission pair is compatible when both PRRs exceed `T_PRR`.

use comap_radio::prr::ReceptionModel;
use comap_radio::Position;

/// Outcome of validating one candidate concurrent transmission.
///
/// Both intermediate PRRs are exposed (C-INTERMEDIATE): the protocol uses
/// them to populate the PRR table of Fig. 5, and a node whose *receiver*
/// side fails may try another receiver (an AP picking a different client).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyDecision {
    /// PRR of the ongoing link under my interference (direction 1).
    pub prr_ongoing: f64,
    /// PRR of my link under the ongoing sender's interference
    /// (direction 2).
    pub prr_mine: f64,
    /// The threshold both must exceed.
    pub threshold: f64,
}

impl ConcurrencyDecision {
    /// `true` when the concurrent transmission is safe in both directions.
    pub fn allowed(&self) -> bool {
        self.harmless_to_ongoing() && self.viable_for_me()
    }

    /// Direction 1 passed: I do not break the ongoing reception.
    pub fn harmless_to_ongoing(&self) -> bool {
        self.prr_ongoing >= self.threshold
    }

    /// Direction 2 passed: my own receiver survives the ongoing sender.
    /// When this is the only failing direction, the paper suggests trying
    /// "another receiver further away from the current transmitter".
    pub fn viable_for_me(&self) -> bool {
        self.prr_mine >= self.threshold
    }
}

/// Stateless validator bundling the reception model and `T_PRR`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrencyValidator {
    reception: ReceptionModel,
    t_prr: f64,
}

impl ConcurrencyValidator {
    /// Creates a validator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t_prr < 1`.
    pub fn new(reception: ReceptionModel, t_prr: f64) -> Self {
        assert!(
            t_prr > 0.0 && t_prr < 1.0,
            "T_PRR must be in (0, 1), got {t_prr}"
        );
        ConcurrencyValidator { reception, t_prr }
    }

    /// The validation threshold `T_PRR`.
    pub fn t_prr(&self) -> f64 {
        self.t_prr
    }

    /// Validates `me → rx` against the ongoing `src → dst` using the four
    /// node positions (Fig. 4 geometry).
    pub fn validate(
        &self,
        me: Position,
        rx: Position,
        src: Position,
        dst: Position,
    ) -> ConcurrencyDecision {
        let d1 = src.distance_to(dst);
        let r1 = me.distance_to(dst);
        let d2 = me.distance_to(rx);
        let r2 = rx.distance_to(src);
        let eps = self.reception.channel().reference_distance();
        ConcurrencyDecision {
            prr_ongoing: self.reception.prr(d1, r1.max(eps)),
            prr_mine: self.reception.prr(d2, r2.max(eps)),
            threshold: self.t_prr,
        }
    }

    /// The pairwise PRR row of the paper's Fig. 5: for me transmitting to
    /// `rx` while a neighbor transmits to `their_rx`, the PRR of *their*
    /// link and of *mine*.
    pub fn pairwise(
        &self,
        me: Position,
        rx: Position,
        neighbor: Position,
        their_rx: Position,
    ) -> (f64, f64) {
        let d = self.validate(me, rx, neighbor, their_rx);
        (d.prr_ongoing, d.prr_mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_radio::pathloss::LogNormalShadowing;
    use comap_radio::units::{Db, Dbm, Meters};

    fn validator() -> ConcurrencyValidator {
        ConcurrencyValidator::new(
            ReceptionModel::new(LogNormalShadowing::testbed(Dbm::new(0.0)), Db::new(4.0)),
            0.95,
        )
    }

    #[test]
    fn well_separated_cells_are_compatible() {
        // Two short links 120 m apart: clearly concurrent.
        let v = validator();
        let d = v.validate(
            Position::new(0.0, 0.0),
            Position::new(4.0, 0.0),
            Position::new(120.0, 0.0),
            Position::new(124.0, 0.0),
        );
        assert!(d.allowed(), "{d:?}");
        assert!(d.prr_ongoing > 0.99 && d.prr_mine > 0.99);
    }

    #[test]
    fn interfering_with_ongoing_receiver_is_rejected() {
        // I sit right next to the ongoing receiver: direction 1 fails.
        let v = validator();
        let d = v.validate(
            Position::new(31.0, 0.0), // me, 1 m from dst
            Position::new(80.0, 0.0), // my rx, far away
            Position::new(0.0, 0.0),  // ongoing src
            Position::new(30.0, 0.0), // ongoing dst
        );
        assert!(!d.harmless_to_ongoing(), "{d:?}");
        assert!(!d.allowed());
    }

    #[test]
    fn receiver_too_close_to_ongoing_sender_is_rejected() {
        // My receiver sits next to the ongoing transmitter: direction 2
        // fails even though I am harmless to the ongoing link.
        let v = validator();
        let d = v.validate(
            Position::new(100.0, 0.0), // me, far from ongoing dst
            Position::new(2.0, 0.0),   // my rx, 2 m from ongoing src
            Position::new(0.0, 0.0),   // ongoing src
            Position::new(-30.0, 0.0), // ongoing dst (away from me)
        );
        assert!(d.harmless_to_ongoing(), "{d:?}");
        assert!(!d.viable_for_me(), "{d:?}");
        assert!(!d.allowed());
    }

    #[test]
    fn moving_the_exposed_node_away_flips_the_decision() {
        // Sweep my distance from the ongoing receiver; the decision must
        // flip exactly once, from rejected to allowed.
        let v = validator();
        let src = Position::new(0.0, 0.0);
        let dst = Position::new(10.0, 0.0);
        let mut last = false;
        let mut flips = 0;
        for x in (12..400).step_by(4) {
            let me = Position::new(x as f64, 0.0);
            let rx = me.offset(4.0, 0.0);
            let now = v.validate(me, rx, src, dst).allowed();
            if now != last {
                flips += 1;
                last = now;
            }
        }
        assert!(last, "far away must be allowed");
        assert_eq!(flips, 1, "decision must be monotone in distance");
    }

    #[test]
    fn pairwise_matches_validate() {
        let v = validator();
        let (a, b) = v.pairwise(
            Position::new(6.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(-30.0, 0.0),
            Position::new(-34.0, 0.0),
        );
        let d = v.validate(
            Position::new(6.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(-30.0, 0.0),
            Position::new(-34.0, 0.0),
        );
        assert_eq!((d.prr_ongoing, d.prr_mine), (a, b));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn threshold_is_validated() {
        let _ = ConcurrencyValidator::new(
            ReceptionModel::new(LogNormalShadowing::testbed(Dbm::new(0.0)), Db::new(4.0)),
            1.0,
        );
    }

    #[test]
    fn colocated_nodes_do_not_panic() {
        // me == dst: the epsilon clamp keeps eq. (3) well-defined.
        let v = validator();
        let p = Position::new(5.0, 5.0);
        let d = v.validate(p, Position::new(9.0, 5.0), Position::new(0.0, 5.0), p);
        assert!(!d.allowed());
        let _ = Meters::ZERO; // type sanity
    }

    #[test]
    fn pairwise_is_symmetric_in_geometry() {
        // Swapping the two links swaps the PRR pair.
        let v = validator();
        let (a1, b1) = v.pairwise(
            Position::new(0.0, 0.0),
            Position::new(5.0, 0.0),
            Position::new(40.0, 0.0),
            Position::new(45.0, 0.0),
        );
        let (a2, b2) = v.pairwise(
            Position::new(40.0, 0.0),
            Position::new(45.0, 0.0),
            Position::new(0.0, 0.0),
            Position::new(5.0, 0.0),
        );
        assert!((a1 - b2).abs() < 1e-12 && (b1 - a2).abs() < 1e-12);
    }
}
