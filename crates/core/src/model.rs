//! The analytical goodput model (paper Section IV-D2, eqs. 5–9).
//!
//! Bianchi's saturated-DCF analysis assumes an ideal channel: every
//! station hears every other, so losses come only from synchronized slot
//! collisions. The paper extends it with **hidden terminals**: a node `i`
//! with `c` contending neighbors and `h` hidden terminals succeeds in a
//! randomly chosen slot with probability
//!
//! ```text
//! P_sᵢ = τ (1−τ)ᶜ [(1−τ)ʰ]ᵏ        (eq. 9)
//! ```
//!
//! where `k = (T_s + T_i)/E[slot_HT]` is the number of slots during which
//! a hidden terminal could start and overlap the transmission — the
//! classic "vulnerability window" spanning the node's own frame plus a
//! hidden frame before it. Crucially, `k` is measured in the **hidden
//! terminal's own** expected slot length: a hidden terminal cannot
//! carrier-sense the tagged cell, so its clock advances through its own
//! idle slots and transmissions, `E[slot_HT] = (1−τ)σ + τT_s`. (Measuring
//! `k` in the tagged cell's slot length would make the per-frame collision
//! probability almost independent of the payload size and erase the
//! interior payload optimum that the paper's Fig. 2 and Fig. 7 observe.)
//! The goodput of node `i` is then `S_i = P_sᵢ · L / E[slot]` (eq. 5) with
//! Bianchi's slot length
//!
//! ```text
//! E[slot] = (1−P_tr) T₀ + P_tr P_s T_s + P_tr (1−P_s) T_c
//! ```
//!
//! The backoff window is assumed constant (`τ = 2/(W+1)`), which is what
//! CO-MAP installs when it adapts parameters.

use serde::{Deserialize, Serialize};

use comap_mac::time::SimDuration;
use comap_mac::timing::PhyTiming;
use comap_radio::rates::Rate;

/// Behaviour assumed of the hidden terminals when they do not mirror the
/// tagged cell (the heterogeneous extension used by the adaptation
/// table: the HTs are ordinary DCF stations that keep their own window
/// and frame size while *we* adapt ours).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HiddenProfile {
    /// The hidden terminals' (constant-equivalent) contention window.
    pub cw: u32,
    /// The hidden terminals' payload size in bytes.
    pub payload_bytes: u32,
}

impl HiddenProfile {
    /// A stock 802.11 DCF station: `CW_min = 31`, 1000-byte frames.
    pub const DCF_DEFAULT: HiddenProfile = HiddenProfile {
        cw: 31,
        payload_bytes: 1000,
    };
}

/// Inputs of one model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelInput {
    /// PHY timing profile (slots, SIFS/DIFS, preamble).
    pub phy: PhyTiming,
    /// Data rate of every station (homogeneous network).
    pub rate: Rate,
    /// Constant contention window `W`.
    pub cw: u32,
    /// Number of *other* contending stations `c` (the cell has `c + 1`).
    pub contenders: usize,
    /// Number of potential hidden terminals `h`.
    pub hidden: usize,
    /// Payload length `L` in bytes.
    pub payload_bytes: u32,
    /// `None` — the paper's homogeneous network (HTs share `cw` and
    /// `payload_bytes`); `Some` — heterogeneous HTs with their own
    /// profile.
    pub hidden_profile: Option<HiddenProfile>,
}

/// Intermediate quantities of one evaluation, exposed for validation
/// against simulation (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotStats {
    /// Per-slot transmission probability `τ = 2/(W+1)`.
    pub tau: f64,
    /// Probability a slot carries at least one transmission (eq. 6).
    pub p_tr: f64,
    /// Probability a busy slot is a success, ignoring HTs (eq. 7).
    pub p_s: f64,
    /// Duration of a successful exchange `T_s` (eq. 8).
    pub t_s: SimDuration,
    /// Duration of a collision `T_c` (eq. 8).
    pub t_c: SimDuration,
    /// Expected slot length `E[slot]` of the tagged cell.
    pub e_slot: f64,
    /// Expected slot length of a (lone, saturated) hidden terminal.
    pub e_slot_ht: f64,
    /// Vulnerability window in HT slots, `k = (T_s + T_i)/E[slot_HT]`.
    pub k: f64,
    /// Per-slot success probability of the tagged node under HTs (eq. 9).
    pub p_s_i: f64,
}

/// The extended-Bianchi DCF model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DcfModel;

impl DcfModel {
    /// Evaluates every intermediate quantity for `input`.
    ///
    /// # Panics
    ///
    /// Panics if `cw` is zero.
    pub fn slot_stats(input: &ModelInput) -> SlotStats {
        assert!(input.cw >= 1, "contention window must be at least 1");
        let tau = 2.0 / (f64::from(input.cw) + 1.0);
        let c = input.contenders as i32;
        // Eq. (6): at least one of the c+1 stations transmits.
        let p_tr = 1.0 - (1.0 - tau).powi(c + 1);
        // Eq. (7): exactly one transmits, conditioned on someone doing so.
        // The clamp absorbs the last-ulp excess of τ/(1−(1−τ)) at c = 0.
        let p_s = if p_tr > 0.0 {
            ((c as f64 + 1.0) * tau * (1.0 - tau).powi(c) / p_tr).min(1.0)
        } else {
            0.0
        };
        let t_s = input.phy.success_duration(input.payload_bytes, input.rate);
        let t_c = input
            .phy
            .collision_duration(input.payload_bytes, input.rate);
        let t0 = input.phy.slot().as_secs_f64();
        let e_slot = (1.0 - p_tr) * t0
            + p_tr * p_s * t_s.as_secs_f64()
            + p_tr * (1.0 - p_s) * t_c.as_secs_f64();
        // A hidden terminal's own slot: it hears neither the tagged cell
        // nor (in the paper's topologies) other HTs, so its slots are
        // empty σ-slots except when it transmits itself. In the
        // homogeneous case (paper eq. 9) the HT mirrors the tagged node;
        // a heterogeneous profile gives it its own window and frame size.
        let (tau_ht, t_i) = match input.hidden_profile {
            None => (tau, t_s),
            Some(p) => (
                2.0 / (f64::from(p.cw) + 1.0),
                input.phy.success_duration(p.payload_bytes, input.rate),
            ),
        };
        let e_slot_ht = (1.0 - tau_ht) * t0 + tau_ht * t_i.as_secs_f64();
        // The vulnerability window spans the tagged frame plus one hidden
        // frame before it: T_s + T_i.
        let k = (t_s.as_secs_f64() + t_i.as_secs_f64()) / e_slot_ht;
        let h = input.hidden as f64;
        let p_s_i = tau * (1.0 - tau).powi(c) * (1.0 - tau_ht).powf(h * k);
        SlotStats {
            tau,
            p_tr,
            p_s,
            t_s,
            t_c,
            e_slot,
            e_slot_ht,
            k,
            p_s_i,
        }
    }

    /// Eq. (5): per-node saturated goodput of the tagged station, in
    /// bits per second.
    pub fn per_node_goodput(input: &ModelInput) -> f64 {
        let stats = Self::slot_stats(input);
        stats.p_s_i * f64::from(input.payload_bytes) * 8.0 / stats.e_slot
    }

    /// Aggregate goodput of the whole `c + 1`-station cell (each station
    /// faces the same `h` hidden terminals), in bits per second.
    pub fn aggregate_goodput(input: &ModelInput) -> f64 {
        (input.contenders as f64 + 1.0) * Self::per_node_goodput(input)
    }

    /// Classic Bianchi saturation throughput (no hidden terminals) of the
    /// whole cell — the baseline the extension reduces to when `h = 0`.
    pub fn bianchi_aggregate(input: &ModelInput) -> f64 {
        let mut ideal = *input;
        ideal.hidden = 0;
        Self::aggregate_goodput(&ideal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(cw: u32, contenders: usize, hidden: usize, payload: u32) -> ModelInput {
        ModelInput {
            phy: PhyTiming::dsss(),
            rate: Rate::Mbps11,
            cw,
            contenders,
            hidden,
            payload_bytes: payload,
            hidden_profile: None,
        }
    }

    #[test]
    fn tau_formula() {
        let s = DcfModel::slot_stats(&input(63, 4, 0, 1000));
        assert!((s.tau - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn single_station_never_collides() {
        let s = DcfModel::slot_stats(&input(63, 0, 0, 1000));
        assert!((s.p_s - 1.0).abs() < 1e-12, "p_s = {}", s.p_s);
        assert!((s.p_tr - s.tau).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_probabilities() {
        for cw in [15, 63, 255, 1023] {
            for c in [0, 1, 4, 9] {
                for h in [0, 3, 7] {
                    let s = DcfModel::slot_stats(&input(cw, c, h, 800));
                    for (name, v) in [
                        ("tau", s.tau),
                        ("p_tr", s.p_tr),
                        ("p_s", s.p_s),
                        ("p_s_i", s.p_s_i),
                    ] {
                        assert!(
                            (0.0..=1.0).contains(&v),
                            "{name} = {v} at cw={cw} c={c} h={h}"
                        );
                    }
                    assert!(s.e_slot > 0.0 && s.k > 0.0);
                }
            }
        }
    }

    #[test]
    fn no_ht_matches_bianchi_baseline() {
        let i = input(63, 4, 0, 1000);
        assert_eq!(
            DcfModel::aggregate_goodput(&i),
            DcfModel::bianchi_aggregate(&i)
        );
    }

    #[test]
    fn hidden_terminals_reduce_goodput() {
        let base = DcfModel::per_node_goodput(&input(63, 4, 0, 1000));
        let mut prev = base;
        for h in 1..6 {
            let s = DcfModel::per_node_goodput(&input(63, 4, h, 1000));
            assert!(s < prev, "goodput must fall with each extra HT (h = {h})");
            prev = s;
        }
        assert!(
            prev < 0.5 * base,
            "5 HTs should cost more than half the goodput"
        );
    }

    #[test]
    fn goodput_without_ht_grows_with_payload() {
        // Ideal channel: bigger frames amortize overhead monotonically.
        let mut prev = 0.0;
        for payload in (100..=2200).step_by(100) {
            let s = DcfModel::per_node_goodput(&input(63, 4, 0, payload));
            assert!(s > prev, "payload {payload}");
            prev = s;
        }
    }

    #[test]
    fn goodput_with_many_hts_has_interior_optimum() {
        // The paper's Fig. 2/7 signature: with HTs, moderate payloads beat
        // both tiny and maximal ones.
        let sweep: Vec<f64> = (1..=22)
            .map(|i| DcfModel::per_node_goodput(&input(255, 4, 3, i * 100)))
            .collect();
        let best = sweep.iter().cloned().fold(f64::MIN, f64::max);
        let first = sweep[0];
        let last = *sweep.last().unwrap();
        assert!(
            best > first && best > last,
            "optimum must be interior: {sweep:?}"
        );
    }

    #[test]
    fn larger_window_helps_under_hts() {
        // Section VI-B: "when the number of HTs increases, CW size should
        // be set to the maximum value".
        let small = DcfModel::per_node_goodput(&input(63, 4, 5, 1000));
        let large = DcfModel::per_node_goodput(&input(1023, 4, 5, 1000));
        assert!(
            large > small,
            "W=1023 {large} must beat W=63 {small} with 5 HTs"
        );
    }

    #[test]
    fn small_window_wins_without_hts() {
        // Without HTs a huge window just wastes idle slots.
        let small = DcfModel::per_node_goodput(&input(63, 4, 0, 1000));
        let large = DcfModel::per_node_goodput(&input(1023, 4, 0, 1000));
        assert!(small > large);
    }

    #[test]
    fn aggregate_is_plausible_fraction_of_rate() {
        // 5 saturated stations at 11 Mbps, 1000-byte frames, long
        // preamble: aggregate in the low-megabit range, below the rate.
        let s = DcfModel::aggregate_goodput(&input(63, 4, 0, 1000));
        assert!(s > 3e6 && s < 8e6, "aggregate = {s}");
    }

    #[test]
    #[should_panic(expected = "contention window")]
    fn zero_window_panics() {
        let _ = DcfModel::slot_stats(&input(0, 4, 0, 1000));
    }

    #[test]
    fn heterogeneous_hts_do_not_reward_our_window_growth() {
        // With DCF-profile hidden terminals, growing OUR window no longer
        // slows the HTs down, so the survival term must not improve.
        let mk = |cw| ModelInput {
            hidden_profile: Some(HiddenProfile::DCF_DEFAULT),
            ..input(cw, 1, 1, 1000)
        };
        let small = DcfModel::slot_stats(&mk(63));
        let large = DcfModel::slot_stats(&mk(1023));
        let surv_small = small.p_s_i / (small.tau * (1.0 - small.tau));
        let surv_large = large.p_s_i / (large.tau * (1.0 - large.tau));
        assert!(
            (surv_small - surv_large).abs() < 1e-9,
            "survival must be window-independent: {surv_small} vs {surv_large}"
        );
        // And the small window yields more goodput (it simply sends more).
        assert!(DcfModel::per_node_goodput(&mk(63)) > DcfModel::per_node_goodput(&mk(1023)));
    }

    #[test]
    fn homogeneous_profile_matches_explicit_mirror() {
        let implicit = input(255, 4, 3, 900);
        let explicit = ModelInput {
            hidden_profile: Some(HiddenProfile {
                cw: 255,
                payload_bytes: 900,
            }),
            ..implicit
        };
        let a = DcfModel::per_node_goodput(&implicit);
        let b = DcfModel::per_node_goodput(&explicit);
        assert!((a - b).abs() / a < 1e-12, "{a} vs {b}");
    }
}
