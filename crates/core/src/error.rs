//! Error type of the CO-MAP protocol.

use std::error::Error;
use std::fmt;

/// Reasons a CO-MAP computation cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoMapError<A> {
    /// A node involved in the query has never reported a position.
    UnknownNeighbor(A),
    /// This node has not set its own position yet.
    OwnPositionUnknown,
    /// The query names this node as its own neighbor/peer.
    SelfReference(A),
}

impl<A: fmt::Debug> fmt::Display for CoMapError<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoMapError::UnknownNeighbor(a) => {
                write!(f, "no position known for neighbor {a:?}")
            }
            CoMapError::OwnPositionUnknown => {
                write!(f, "own position has not been set")
            }
            CoMapError::SelfReference(a) => {
                write!(f, "node {a:?} referenced as its own peer")
            }
        }
    }
}

impl<A: fmt::Debug> Error for CoMapError<A> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let e: CoMapError<&str> = CoMapError::UnknownNeighbor("C7");
        assert!(e.to_string().contains("C7"));
        let e: CoMapError<&str> = CoMapError::OwnPositionUnknown;
        assert!(e.to_string().contains("own position"));
        let e: CoMapError<&str> = CoMapError::SelfReference("C1");
        assert!(e.to_string().contains("C1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoMapError<u32>>();
    }
}
