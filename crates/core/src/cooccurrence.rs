//! The co-occurrence map (paper Section IV-C2, Fig. 5).
//!
//! Each entry records one ongoing link together with the receivers this
//! node may transmit to concurrently with it. A mobile client has a single
//! receiver (its AP), so its entries degenerate to "link → yes"; an AP's
//! entries enumerate every client it could serve concurrently.
//!
//! The map is a *cache* over [`crate::validate`]: it starts empty, is
//! populated as transmissions are discovered and validated ("built
//! gradually as the network operates" — no site survey, no initialization
//! losses), and is invalidated per-node when the neighbor table reports a
//! significant position change.

use std::collections::{BTreeMap, BTreeSet};

use crate::{Addr, Link};

/// Cached concurrency knowledge: ongoing link → receivers this node can
/// use concurrently (and the receivers known to be unusable).
///
/// ```rust
/// use comap_core::CoOccurrenceMap;
///
/// let mut map: CoOccurrenceMap<&str> = CoOccurrenceMap::new();
/// map.record(("C2", "AP0"), "AP1", true);
/// assert_eq!(map.lookup(("C2", "AP0"), "AP1"), Some(true));
/// assert_eq!(map.lookup(("C2", "AP0"), "C12"), None); // not yet validated
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoOccurrenceMap<A: Addr> {
    entries: BTreeMap<Link<A>, EntryState<A>>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct EntryState<A: Addr> {
    allowed: BTreeSet<A>,
    denied: BTreeSet<A>,
}

impl<A: Addr> Default for EntryState<A> {
    fn default() -> Self {
        EntryState {
            allowed: BTreeSet::new(),
            denied: BTreeSet::new(),
        }
    }
}

impl<A: Addr> CoOccurrenceMap<A> {
    /// Creates an empty map (the paper's cold-start state).
    pub fn new() -> Self {
        CoOccurrenceMap {
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a cached verdict for transmitting to `receiver` while
    /// `ongoing` is on the air. `None` means "never validated" and the
    /// caller should fall back to computation (and then [`record`] it).
    ///
    /// [`record`]: Self::record
    pub fn lookup(&mut self, ongoing: Link<A>, receiver: A) -> Option<bool> {
        let verdict = self.entries.get(&ongoing).and_then(|e| {
            if e.allowed.contains(&receiver) {
                Some(true)
            } else if e.denied.contains(&receiver) {
                Some(false)
            } else {
                None
            }
        });
        match verdict {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        verdict
    }

    /// Caches a validation outcome for (`ongoing`, `receiver`).
    pub fn record(&mut self, ongoing: Link<A>, receiver: A, allowed: bool) {
        let entry = self.entries.entry(ongoing).or_default();
        if allowed {
            entry.denied.remove(&receiver);
            entry.allowed.insert(receiver);
        } else {
            entry.allowed.remove(&receiver);
            entry.denied.insert(receiver);
        }
    }

    /// All receivers cached as concurrent-safe with `ongoing`.
    pub fn allowed_receivers(&self, ongoing: Link<A>) -> impl Iterator<Item = A> + '_ {
        self.entries
            .get(&ongoing)
            .into_iter()
            .flat_map(|e| e.allowed.iter().copied())
    }

    /// Number of ongoing links with at least one cached verdict.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry that involves `addr` — as an endpoint of the
    /// ongoing link or as a cached receiver. Called when `addr` moves
    /// beyond the mobility threshold.
    pub fn invalidate_involving(&mut self, addr: A) {
        self.entries.retain(|link, entry| {
            if link.0 == addr || link.1 == addr {
                return false;
            }
            entry.allowed.remove(&addr);
            entry.denied.remove(&addr);
            !(entry.allowed.is_empty() && entry.denied.is_empty())
        });
    }

    /// Clears the whole cache (e.g. when this node itself moves).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// `(hits, misses)` of [`Self::lookup`] since construction — the
    /// paper's motivation for the cache is saving repeated eq. (3)
    /// computations, so the ratio is worth reporting.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Iterates over `(ongoing link, allowed receivers)` for display, in
    /// deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Link<A>, Vec<A>)> + '_ {
        self.entries
            .iter()
            .map(|(l, e)| (*l, e.allowed.iter().copied().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_misses() {
        let mut m: CoOccurrenceMap<u32> = CoOccurrenceMap::new();
        assert!(m.is_empty());
        assert_eq!(m.lookup((1, 2), 3), None);
        assert_eq!(m.stats(), (0, 1));
    }

    #[test]
    fn records_both_verdicts() {
        let mut m = CoOccurrenceMap::new();
        m.record((1, 2), 3, true);
        m.record((1, 2), 4, false);
        assert_eq!(m.lookup((1, 2), 3), Some(true));
        assert_eq!(m.lookup((1, 2), 4), Some(false));
        assert_eq!(m.stats(), (2, 0));
        assert_eq!(m.allowed_receivers((1, 2)).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn re_recording_flips_verdict() {
        let mut m = CoOccurrenceMap::new();
        m.record((1, 2), 3, true);
        m.record((1, 2), 3, false);
        assert_eq!(m.lookup((1, 2), 3), Some(false));
        m.record((1, 2), 3, true);
        assert_eq!(m.lookup((1, 2), 3), Some(true));
    }

    #[test]
    fn ap_entries_hold_multiple_receivers() {
        let mut m = CoOccurrenceMap::new();
        m.record((10, 20), 1, true);
        m.record((10, 20), 2, true);
        m.record((10, 20), 3, false);
        assert_eq!(m.allowed_receivers((10, 20)).count(), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn invalidation_drops_links_and_receivers() {
        let mut m = CoOccurrenceMap::new();
        m.record((1, 2), 3, true);
        m.record((4, 5), 1, true); // node 1 as receiver
        m.record((4, 5), 6, true);
        m.record((7, 8), 9, true);
        m.invalidate_involving(1);
        assert_eq!(m.lookup((1, 2), 3), None, "link with 1 dropped");
        assert_eq!(m.lookup((4, 5), 1), None, "receiver 1 dropped");
        assert_eq!(m.lookup((4, 5), 6), Some(true), "others kept");
        assert_eq!(m.lookup((7, 8), 9), Some(true));
    }

    #[test]
    fn invalidation_removes_emptied_entries() {
        let mut m = CoOccurrenceMap::new();
        m.record((4, 5), 1, true);
        m.invalidate_involving(1);
        assert!(m.is_empty());
    }

    #[test]
    fn clear_resets_entries_not_stats() {
        let mut m = CoOccurrenceMap::new();
        m.record((1, 2), 3, true);
        let _ = m.lookup((1, 2), 3);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.stats(), (1, 0));
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut m = CoOccurrenceMap::new();
        m.record((2, 1), 5, true);
        m.record((1, 2), 4, true);
        let links: Vec<_> = m.iter().map(|(l, _)| l).collect();
        assert_eq!(links, vec![(1, 2), (2, 1)]);
    }
}
