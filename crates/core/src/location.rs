//! Location sharing (paper Section IV-A and Section V).
//!
//! Clients report their positions to their AP; APs piggyback the reports
//! onto ordinary traffic so that every node learns its 2-hop
//! neighborhood. [`LocationService`] implements the *sender* side: it
//! decides when a movement is large enough to justify a fresh report
//! (the mobility-management rule) and counts the reports issued, which is
//! the protocol's entire communication overhead.

use comap_radio::units::Meters;
use comap_radio::Position;

use crate::config::MobilityConfig;

/// Decides when this node's own position must be re-broadcast.
///
/// ```rust
/// use comap_core::{LocationService, MobilityConfig};
/// use comap_radio::{Position, units::Meters};
///
/// let policy = MobilityConfig::for_tolerated_inaccuracy(Meters::new(10.0));
/// let mut svc = LocationService::new(policy);
/// assert!(svc.observe(Position::new(0.0, 0.0)).is_some()); // first fix
/// assert!(svc.observe(Position::new(2.0, 0.0)).is_none()); // < 5 m: quiet
/// assert!(svc.observe(Position::new(7.0, 0.0)).is_some()); // > 5 m: report
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationService {
    policy: MobilityConfig,
    last_reported: Option<Position>,
    reports: u64,
    suppressed: u64,
}

impl LocationService {
    /// Creates a service that has not yet obtained a position fix.
    pub fn new(policy: MobilityConfig) -> Self {
        LocationService {
            policy,
            last_reported: None,
            reports: 0,
            suppressed: 0,
        }
    }

    /// Feeds a new localization fix. Returns `Some(position)` when the fix
    /// should be reported to the AP (first fix, or moved beyond the
    /// threshold), `None` when it is absorbed.
    pub fn observe(&mut self, fix: Position) -> Option<Position> {
        let must_report = match self.last_reported {
            None => true,
            Some(prev) => fix.distance_to(prev).value() > self.policy.update_threshold.value(),
        };
        if must_report {
            self.last_reported = Some(fix);
            self.reports += 1;
            Some(fix)
        } else {
            self.suppressed += 1;
            None
        }
    }

    /// The last position actually reported.
    pub fn last_reported(&self) -> Option<Position> {
        self.last_reported
    }

    /// `(reports sent, fixes suppressed)` — the overhead counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.reports, self.suppressed)
    }

    /// The movement threshold in force.
    pub fn threshold(&self) -> Meters {
        self.policy.update_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> LocationService {
        LocationService::new(MobilityConfig::for_tolerated_inaccuracy(Meters::new(10.0)))
    }

    #[test]
    fn first_fix_is_always_reported() {
        let mut s = service();
        assert_eq!(
            s.observe(Position::new(1.0, 1.0)),
            Some(Position::new(1.0, 1.0))
        );
        assert_eq!(s.stats(), (1, 0));
    }

    #[test]
    fn jitter_is_suppressed() {
        let mut s = service();
        s.observe(Position::ORIGIN);
        for i in 0..10 {
            let wiggle = Position::new((i % 3) as f64, (i % 2) as f64);
            assert_eq!(s.observe(wiggle), None);
        }
        assert_eq!(s.stats(), (1, 10));
        assert_eq!(s.last_reported(), Some(Position::ORIGIN));
    }

    #[test]
    fn long_walks_report_per_threshold_crossing() {
        // Walk 25 m in 1 m steps with a 5 m threshold: the first fix plus
        // a report each time the accumulated displacement exceeds 5 m.
        let mut s = service();
        let mut reports = 0;
        for x in 0..=25 {
            if s.observe(Position::new(x as f64, 0.0)).is_some() {
                reports += 1;
            }
        }
        assert_eq!(
            reports,
            1 + 4,
            "1 initial + 4 threshold crossings (6,12,18,24)"
        );
    }

    #[test]
    fn report_updates_reference_point() {
        let mut s = service();
        s.observe(Position::ORIGIN);
        s.observe(Position::new(6.0, 0.0));
        // Moving back within 5 m of the new reference stays quiet.
        assert_eq!(s.observe(Position::new(2.0, 0.0)), None);
        assert_eq!(s.last_reported(), Some(Position::new(6.0, 0.0)));
    }
}
