//! Hidden-terminal census (paper Section IV-D1).
//!
//! For a link `S → R`, a neighbor is a **potential hidden terminal** when
//! it satisfies both conditions:
//!
//! 1. it lies inside the link's *interference range* — a concurrent
//!    transmission from it would drive the link's PRR (eq. 3) below a
//!    threshold, and
//! 2. it (probably) cannot carrier-sense `S`: by eq. (4),
//!    `Pr{P_r < T_cs} > 90 %`.
//!
//! Neighbors that *can* sense `S` and interfere are **contenders** — they
//! share the channel through CSMA rather than colliding blindly. Both
//! counts feed the analytical model's `(h, c)` lookup.

use comap_radio::prr::ReceptionModel;
use comap_radio::units::Dbm;
use comap_radio::Position;

use crate::neighbor::NeighborTable;
use crate::Addr;

/// How a neighbor relates to a given link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborClass {
    /// Interferes with the link and cannot sense its sender: collides
    /// blindly.
    Hidden,
    /// Interferes (or shares airtime) but defers via carrier sense.
    Contender,
    /// Too far to matter: concurrent transmissions are harmless.
    Independent,
}

/// The censused neighborhood of one link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtCensus<A> {
    /// Potential hidden terminals (paper's `N_ht`).
    pub hidden: Vec<A>,
    /// Contending nodes visible to carrier sense (paper's `c`).
    pub contenders: Vec<A>,
    /// Neighbors with no impact on the link.
    pub independent: Vec<A>,
}

impl<A> HtCensus<A> {
    /// `N_ht`, the count the adaptation table is indexed by.
    pub fn n_ht(&self) -> usize {
        self.hidden.len()
    }

    /// `c`, the number of contending nodes.
    pub fn n_contenders(&self) -> usize {
        self.contenders.len()
    }
}

/// Census engine bundling the thresholds of Section IV-D1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HtCensusEngine {
    reception: ReceptionModel,
    t_cs: Dbm,
    /// PRR threshold defining "interferes with the link".
    interference_prr: f64,
    /// CS-miss probability above which a node counts as hidden (90 %).
    miss_probability: f64,
}

impl HtCensusEngine {
    /// Creates a census engine.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities are in `(0, 1)`.
    pub fn new(
        reception: ReceptionModel,
        t_cs: Dbm,
        interference_prr: f64,
        miss_probability: f64,
    ) -> Self {
        assert!(
            interference_prr > 0.0 && interference_prr < 1.0,
            "interference PRR threshold must be in (0, 1)"
        );
        assert!(
            miss_probability > 0.0 && miss_probability < 1.0,
            "miss probability must be in (0, 1)"
        );
        HtCensusEngine {
            reception,
            t_cs,
            interference_prr,
            miss_probability,
        }
    }

    /// Classifies a single neighbor with respect to the link `s → r`.
    pub fn classify(&self, s: Position, r: Position, neighbor: Position) -> NeighborClass {
        let d = s.distance_to(r);
        let eps = self.reception.channel().reference_distance();
        let interferer_dist = neighbor.distance_to(r).max(eps);
        let interferes = self.reception.prr(d, interferer_dist) < self.interference_prr;
        let sense_dist = neighbor.distance_to(s).max(eps);
        let senses =
            self.reception.cs_miss_probability(sense_dist, self.t_cs) <= self.miss_probability;
        match (interferes, senses) {
            (true, false) => NeighborClass::Hidden,
            (_, true) => NeighborClass::Contender,
            (false, false) => NeighborClass::Independent,
        }
    }

    /// Runs the census of the link `s → r` over a neighbor table,
    /// excluding the link's own endpoints.
    pub fn census<A: Addr>(
        &self,
        table: &NeighborTable<A>,
        s_addr: A,
        s: Position,
        r_addr: A,
        r: Position,
    ) -> HtCensus<A> {
        let mut census = HtCensus {
            hidden: Vec::new(),
            contenders: Vec::new(),
            independent: Vec::new(),
        };
        for (addr, entry) in table.iter() {
            if addr == s_addr || addr == r_addr {
                continue;
            }
            match self.classify(s, r, entry.position) {
                NeighborClass::Hidden => census.hidden.push(addr),
                NeighborClass::Contender => census.contenders.push(addr),
                NeighborClass::Independent => census.independent.push(addr),
            }
        }
        census
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MobilityConfig, ProtocolConfig};

    fn engine() -> HtCensusEngine {
        let cfg = ProtocolConfig::testbed();
        HtCensusEngine::new(
            cfg.reception(),
            cfg.t_cs,
            cfg.census_interference_prr,
            cfg.ht_miss_probability,
        )
    }

    #[test]
    fn nearby_node_is_a_contender() {
        // 10 m from the sender: surely senses it, counted as contender.
        let e = engine();
        let class = e.classify(
            Position::new(0.0, 0.0),
            Position::new(15.0, 0.0),
            Position::new(10.0, 0.0),
        );
        assert_eq!(class, NeighborClass::Contender);
    }

    #[test]
    fn paper_fig2_geometry_is_hidden() {
        // C1 at 0, AP1 at 15 m, C2 at 37 m: C2 cannot sense C1 (37 m is
        // beyond the ~28 m mean CS range) but its signal corrupts AP1
        // (22 m from AP1, close to the 15 m link length).
        let e = engine();
        let class = e.classify(
            Position::new(0.0, 0.0),
            Position::new(15.0, 0.0),
            Position::new(37.0, 0.0),
        );
        assert_eq!(class, NeighborClass::Hidden);
    }

    #[test]
    fn remote_node_is_independent() {
        let e = engine();
        let class = e.classify(
            Position::new(0.0, 0.0),
            Position::new(10.0, 0.0),
            Position::new(400.0, 0.0),
        );
        assert_eq!(class, NeighborClass::Independent);
    }

    #[test]
    fn census_excludes_link_endpoints() {
        let e = engine();
        let mut t = NeighborTable::new(MobilityConfig::default());
        t.insert("S", Position::new(0.0, 0.0));
        t.insert("R", Position::new(15.0, 0.0));
        t.insert("H", Position::new(37.0, 0.0));
        t.insert("C", Position::new(10.0, 0.0));
        t.insert("I", Position::new(400.0, 0.0));
        let census = e.census(
            &t,
            "S",
            Position::new(0.0, 0.0),
            "R",
            Position::new(15.0, 0.0),
        );
        assert_eq!(census.hidden, vec!["H"]);
        assert_eq!(census.contenders, vec!["C"]);
        assert_eq!(census.independent, vec!["I"]);
        assert_eq!(census.n_ht(), 1);
        assert_eq!(census.n_contenders(), 1);
    }

    #[test]
    fn class_transitions_with_distance_are_ordered() {
        // Sweeping a neighbor away from the sender along the link axis:
        // contender region, then hidden region, then independent.
        let e = engine();
        let s = Position::new(0.0, 0.0);
        let r = Position::new(15.0, 0.0);
        let mut seen = Vec::new();
        for x in (16..500).step_by(2) {
            let class = e.classify(s, r, Position::new(x as f64, 0.0));
            if seen.last() != Some(&class) {
                seen.push(class);
            }
        }
        assert_eq!(
            seen,
            vec![
                NeighborClass::Contender,
                NeighborClass::Hidden,
                NeighborClass::Independent
            ]
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn thresholds_are_validated() {
        let cfg = ProtocolConfig::testbed();
        let _ = HtCensusEngine::new(cfg.reception(), cfg.t_cs, 0.95, 1.5);
    }
}
