//! Protocol configuration and the paper's two canonical parameter sets.

use serde::{Deserialize, Serialize};

use comap_mac::timing::PhyTiming;
use comap_radio::pathloss::LogNormalShadowing;

use crate::model::HiddenProfile;
use comap_radio::prr::ReceptionModel;
use comap_radio::rates::Rate;
use comap_radio::units::{Db, Dbm, Meters};
use comap_radio::NOISE_FLOOR;

/// Position-update policy (paper Section V, "Mobility management").
///
/// A node re-broadcasts its position only after moving more than
/// `update_threshold`, set to half of the highest position inaccuracy the
/// protocol is expected to tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityConfig {
    /// Movement (in meters) beyond which the position is re-reported.
    pub update_threshold: Meters,
}

impl MobilityConfig {
    /// Derives the threshold from the highest tolerated inaccuracy, as the
    /// paper prescribes ("we set it to the half of the highest position
    /// inaccuracy we can tolerate").
    pub fn for_tolerated_inaccuracy(inaccuracy: Meters) -> Self {
        MobilityConfig {
            update_threshold: inaccuracy * 0.5,
        }
    }
}

impl Default for MobilityConfig {
    fn default() -> Self {
        Self::for_tolerated_inaccuracy(Meters::new(10.0))
    }
}

/// Everything CO-MAP needs to turn positions into decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Transmit power assumed for every node (the paper assumes equal
    /// transmit powers in eq. 2).
    pub tx_power: Dbm,
    /// Propagation environment (eq. 1 parameters).
    pub channel: LogNormalShadowing,
    /// SIR decoding threshold `T_SIR` used in eq. (3).
    pub t_sir: Db,
    /// Concurrency-validation threshold `T_PRR`: a transmission pair is
    /// compatible when both directional PRRs exceed this (95 % in Table I).
    pub t_prr: f64,
    /// Carrier-sense (CCA) threshold `T_cs`.
    pub t_cs: Dbm,
    /// `T'_cs`: the part of `T_cs` not containing the noise floor, used by
    /// the enhanced ET scheduler's RSSI-delta rule.
    pub t_cs_delta: Dbm,
    /// A node is a *potential hidden terminal* when its probability of
    /// missing carrier sense exceeds this (90 % in Section IV-D1).
    pub ht_miss_probability: f64,
    /// PRR threshold below which a neighbor counts as *interfering* for
    /// the census. Stricter than `t_prr` (which guards concurrency):
    /// only neighbors that actually corrupt a meaningful share of frames
    /// should trigger payload shrinking.
    pub census_interference_prr: f64,
    /// PHY timing profile for the analytical model and duration math.
    pub phy: PhyTiming,
    /// Data rate assumed by the analytical model.
    pub model_rate: Rate,
    /// Selective-repeat ARQ send-window size `W_send`.
    pub arq_window: usize,
    /// Position-update policy.
    pub mobility: MobilityConfig,
    /// Behaviour assumed of hidden terminals by the adaptation table.
    /// The equivalent window is calibrated to a *loss-throttled* (TCP-
    /// like) interferer whose overlaps are further thinned by capture —
    /// a stock saturated-DCF profile would overstate the pressure and
    /// shrink payloads too aggressively.
    pub hidden_profile: HiddenProfile,
    /// Ceiling on the payload sizes the adaptation table may install.
    /// Bounded by the application's datagram size: a CBR/VoIP source
    /// cannot be coalesced into bigger MPDUs without violating latency.
    pub max_adapted_payload: u32,
    /// Whether the adaptation table may change the contention window as
    /// well as the payload. The window dimension is only beneficial in
    /// isolated cells (the model's world, Fig. 7); in multi-cell
    /// deployments with partial carrier sense it backfires, so the
    /// large-scale preset adapts payload only.
    pub adapt_cw: bool,
}

impl ProtocolConfig {
    /// The paper's **testbed** configuration (Section VI-A): 0 dBm transmit
    /// power, `α = 2.9`, `σ = 4 dB`, `T_SIR = 4` (lowest rate), DSSS PHY.
    /// The CCA threshold is −80 dBm: with the measured `α = 2.9`,
    /// `σ = 4 dB` office channel this puts the 90 % CS-miss boundary at
    /// ≈ 36 m — just inside the paper's 37 m hidden-terminal placement
    /// (Fig. 2), which is how the authors' geometry classifies correctly.
    pub fn testbed() -> Self {
        let tx_power = Dbm::new(0.0);
        let t_cs = Dbm::new(-80.0);
        ProtocolConfig {
            tx_power,
            channel: LogNormalShadowing::testbed(tx_power),
            t_sir: Db::new(4.0),
            t_prr: 0.95,
            t_cs,
            t_cs_delta: subtract_noise_floor(t_cs),
            ht_miss_probability: 0.9,
            census_interference_prr: 0.75,
            phy: PhyTiming::dsss(),
            model_rate: Rate::Mbps11,
            arq_window: 8,
            mobility: MobilityConfig::default(),
            hidden_profile: HiddenProfile {
                cw: 511,
                payload_bytes: 1000,
            },
            max_adapted_payload: crate::adapt::DEFAULT_MAX_PAYLOAD,
            adapt_cw: true,
        }
    }

    /// The paper's **large-scale NS-2** configuration (Table I): 6 Mbps,
    /// 20 dBm, `T_PRR = 95 %`, `T_cs = −80 dBm`, `α = 3.3`, `σ = 5 dB`,
    /// `T_SIR = 10`.
    pub fn large_scale() -> Self {
        let tx_power = Dbm::new(20.0);
        let t_cs = Dbm::new(-80.0);
        ProtocolConfig {
            tx_power,
            channel: LogNormalShadowing::large_scale(tx_power),
            t_sir: Db::new(10.0),
            t_prr: 0.95,
            t_cs,
            t_cs_delta: subtract_noise_floor(t_cs),
            ht_miss_probability: 0.9,
            census_interference_prr: 0.75,
            phy: PhyTiming::erp_ofdm(false),
            model_rate: Rate::Mbps6,
            arq_window: 8,
            mobility: MobilityConfig::default(),
            hidden_profile: HiddenProfile {
                cw: 511,
                payload_bytes: 1000,
            },
            max_adapted_payload: 1000,
            adapt_cw: false,
        }
    }

    /// The reception model (channel + `T_SIR`) used by every eq. (3) / (4)
    /// computation.
    pub fn reception(&self) -> ReceptionModel {
        ReceptionModel::new(self.channel, self.t_sir)
    }

    /// Replaces the carrier-sense threshold, keeping `T'_cs` consistent.
    /// Used to calibrate per-site CS sensitivity (the paper's two testbed
    /// floors behave differently).
    pub fn set_t_cs(&mut self, t_cs: Dbm) {
        self.t_cs = t_cs;
        self.t_cs_delta = subtract_noise_floor(t_cs);
    }
}

/// `T'_cs` — removes the noise-floor power from a CCA threshold, leaving
/// the pure signal component (Table I lists `T_cs = −80 dBm` alongside
/// `T'_cs = −80.14 dBm`, which is exactly this subtraction).
fn subtract_noise_floor(t_cs: Dbm) -> Dbm {
    (t_cs.to_milliwatts() - NOISE_FLOOR.to_milliwatts()).to_dbm()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_t_cs_delta_matches_paper() {
        // Table I: T_cs = −80 dBm, T'_cs = −80.14 dBm.
        let cfg = ProtocolConfig::large_scale();
        assert!(
            (cfg.t_cs_delta.value() - (-80.14)).abs() < 0.01,
            "T'_cs = {}",
            cfg.t_cs_delta
        );
    }

    #[test]
    fn presets_match_paper_sections() {
        let tb = ProtocolConfig::testbed();
        assert_eq!(tb.channel.alpha(), 2.9);
        assert_eq!(tb.channel.sigma(), Db::new(4.0));
        assert_eq!(tb.t_sir, Db::new(4.0));

        let ls = ProtocolConfig::large_scale();
        assert_eq!(ls.channel.alpha(), 3.3);
        assert_eq!(ls.channel.sigma(), Db::new(5.0));
        assert_eq!(ls.t_sir, Db::new(10.0));
        assert_eq!(ls.tx_power, Dbm::new(20.0));
        assert_eq!(ls.model_rate, Rate::Mbps6);
        assert_eq!(ls.t_prr, 0.95);
    }

    #[test]
    fn mobility_threshold_is_half_inaccuracy() {
        let m = MobilityConfig::for_tolerated_inaccuracy(Meters::new(10.0));
        assert_eq!(m.update_threshold, Meters::new(5.0));
    }

    #[test]
    fn noise_subtraction_is_small_for_high_thresholds() {
        let t = subtract_noise_floor(Dbm::new(-60.0));
        assert!((t.value() - (-60.0)).abs() < 0.01);
    }

    #[test]
    fn reception_model_uses_config_threshold() {
        let cfg = ProtocolConfig::testbed();
        assert_eq!(cfg.reception().t_sir(), cfg.t_sir);
    }
}
