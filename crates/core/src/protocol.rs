//! The CO-MAP protocol façade.
//!
//! [`Protocol`] is the per-node object tying the pipeline of paper Fig. 5
//! together: position reports flow into the [`NeighborTable`], concurrency
//! queries flow through the [`CoOccurrenceMap`] cache backed by eq.-(3)
//! validation, and transmission parameters come from the hidden-terminal
//! census plus the precomputed [`AdaptationTable`].

use comap_radio::units::Dbm;
use comap_radio::Position;

use crate::adapt::{AdaptationTable, TxSetting};
use crate::config::ProtocolConfig;
use crate::cooccurrence::CoOccurrenceMap;
use crate::error::CoMapError;
use crate::hidden::{HtCensus, HtCensusEngine};
use crate::location::LocationService;
use crate::neighbor::NeighborTable;
use crate::scheduler::EtScheduler;
use crate::validate::{ConcurrencyDecision, ConcurrencyValidator};
use crate::{Addr, Link};

/// Default table extents: the paper's Fig. 7 explores up to 5 HTs; we
/// precompute a margin beyond that.
const TABLE_MAX_HIDDEN: usize = 8;
const TABLE_MAX_CONTENDERS: usize = 8;

/// Per-node CO-MAP state and decision logic.
///
/// See the crate-level example for the typical flow.
#[derive(Debug, Clone)]
pub struct Protocol<A: Addr> {
    addr: A,
    config: ProtocolConfig,
    own_position: Option<Position>,
    neighbors: NeighborTable<A>,
    map: CoOccurrenceMap<A>,
    validator: ConcurrencyValidator,
    census: HtCensusEngine,
    adaptation: AdaptationTable,
    location: LocationService,
}

impl<A: Addr> Protocol<A> {
    /// Creates the protocol instance for node `addr`, precomputing the
    /// adaptation table for the configured PHY and model rate.
    pub fn new(addr: A, config: ProtocolConfig) -> Self {
        let reception = config.reception();
        Protocol {
            addr,
            config,
            own_position: None,
            neighbors: NeighborTable::new(config.mobility),
            map: CoOccurrenceMap::new(),
            validator: ConcurrencyValidator::new(reception, config.t_prr),
            census: HtCensusEngine::new(
                reception,
                config.t_cs,
                config.census_interference_prr,
                config.ht_miss_probability,
            ),
            adaptation: AdaptationTable::precompute_with(
                config.phy,
                config.model_rate,
                TABLE_MAX_HIDDEN,
                TABLE_MAX_CONTENDERS,
                config.max_adapted_payload,
                Some(config.hidden_profile),
                if config.adapt_cw {
                    &crate::adapt::CW_CANDIDATES
                } else {
                    &[31]
                },
            ),
            location: LocationService::new(config.mobility),
        }
    }

    /// This node's address.
    pub fn addr(&self) -> A {
        self.addr
    }

    /// The active configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Sets this node's own position unconditionally (bootstrap).
    pub fn set_own_position(&mut self, position: Position) {
        self.own_position = Some(position);
        self.location.observe(position);
        // Our own geometry underlies every cached verdict.
        self.map.clear();
    }

    /// Feeds a localization fix through the mobility-management policy.
    /// Returns the position to broadcast when a report is due.
    pub fn observe_position(&mut self, fix: Position) -> Option<Position> {
        let report = self.location.observe(fix)?;
        self.own_position = Some(report);
        self.map.clear();
        Some(report)
    }

    /// This node's current position, if known.
    pub fn own_position(&self) -> Option<Position> {
        self.own_position
    }

    /// Ingests a neighbor's position report. Returns `true` when the
    /// neighborhood actually changed (and dependent caches were
    /// invalidated).
    pub fn on_position_report(&mut self, addr: A, position: Position) -> bool {
        if addr == self.addr {
            self.set_own_position(position);
            return true;
        }
        let changed = self.neighbors.update(addr, position);
        if changed {
            self.map.invalidate_involving(addr);
        }
        changed
    }

    /// Full eq.-(3) validation of "may I transmit to `receiver` while
    /// `ongoing` is on the air", bypassing the cache.
    ///
    /// # Errors
    ///
    /// Fails when any involved position is unknown or the query references
    /// this node as part of the ongoing link.
    pub fn concurrency_decision(
        &self,
        ongoing: Link<A>,
        receiver: A,
    ) -> Result<ConcurrencyDecision, CoMapError<A>> {
        let me = self.own_position.ok_or(CoMapError::OwnPositionUnknown)?;
        let (src, dst) = ongoing;
        if src == self.addr || dst == self.addr {
            return Err(CoMapError::SelfReference(self.addr));
        }
        let rx = self.neighbor_position(receiver)?;
        let src_pos = self.neighbor_position(src)?;
        let dst_pos = self.neighbor_position(dst)?;
        Ok(self.validator.validate(me, rx, src_pos, dst_pos))
    }

    /// Cached concurrency check — the hot path a MAC calls on every
    /// discovery header. Consults the co-occurrence map first and falls
    /// back to computation, recording the verdict.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::concurrency_decision`].
    pub fn concurrency_allowed(
        &mut self,
        ongoing: Link<A>,
        receiver: A,
    ) -> Result<bool, CoMapError<A>> {
        if let Some(cached) = self.map.lookup(ongoing, receiver) {
            return Ok(cached);
        }
        let allowed = self.concurrency_decision(ongoing, receiver)?.allowed();
        self.map.record(ongoing, receiver, allowed);
        Ok(allowed)
    }

    /// Hidden-terminal census for the link `self → receiver`.
    ///
    /// # Errors
    ///
    /// Fails when positions are missing.
    pub fn ht_census(&self, receiver: A) -> Result<HtCensus<A>, CoMapError<A>> {
        let me = self.own_position.ok_or(CoMapError::OwnPositionUnknown)?;
        let rx = self.neighbor_position(receiver)?;
        Ok(self
            .census
            .census(&self.neighbors, self.addr, me, receiver, rx))
    }

    /// The transmission parameters CO-MAP installs for the link
    /// `self → receiver`: the adaptation-table entry for the censused
    /// `(N_ht, c)`.
    ///
    /// # Errors
    ///
    /// Fails when positions are missing.
    pub fn tx_setting(&self, receiver: A) -> Result<TxSetting, CoMapError<A>> {
        let census = self.ht_census(receiver)?;
        Ok(self
            .adaptation
            .setting(census.n_ht(), census.n_contenders()))
    }

    /// Records the observed outcome of a *concurrent* transmission: a
    /// success confirms the cached verdict, a failure blacklists the
    /// (ongoing link, receiver) pair. With static (per-link) shadowing a
    /// geometry that the mean-field eq. (3) admits can be persistently
    /// bad; feeding MAC outcomes back into the co-occurrence map stops
    /// the protocol from re-trying such pairs forever.
    pub fn record_concurrency_outcome(&mut self, ongoing: Link<A>, receiver: A, success: bool) {
        self.map.record(ongoing, receiver, success);
    }

    /// Arms the enhanced-scheduling RSSI watchdog with the power observed
    /// at discovery time.
    pub fn arm_scheduler(&self, rssi1: Dbm) -> EtScheduler {
        EtScheduler::arm(rssi1, self.config.t_cs_delta)
    }

    /// Read access to the neighbor table.
    pub fn neighbors(&self) -> &NeighborTable<A> {
        &self.neighbors
    }

    /// Read access to the co-occurrence map.
    pub fn cooccurrence(&self) -> &CoOccurrenceMap<A> {
        &self.map
    }

    /// Read access to the adaptation table.
    pub fn adaptation(&self) -> &AdaptationTable {
        &self.adaptation
    }

    /// `(reports, suppressed)` counters of the location service.
    pub fn location_stats(&self) -> (u64, u64) {
        self.location.stats()
    }

    fn neighbor_position(&self, addr: A) -> Result<Position, CoMapError<A>> {
        if addr == self.addr {
            return self.own_position.ok_or(CoMapError::OwnPositionUnknown);
        }
        self.neighbors
            .position(addr)
            .ok_or(CoMapError::UnknownNeighbor(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3 example network, scaled so the distances suit the
    /// testbed channel: C2 → AP0 ongoing on the left, C11 → AP1 candidate
    /// on the right, C1 close to AP0.
    fn fig3() -> Protocol<&'static str> {
        let mut p = Protocol::new("C11", ProtocolConfig::testbed());
        p.set_own_position(Position::new(6.0, 0.0));
        p.on_position_report("AP1", Position::new(10.0, 0.0));
        p.on_position_report("C2", Position::new(-30.0, 0.0));
        p.on_position_report("AP0", Position::new(-34.0, 0.0));
        p.on_position_report("C1", Position::new(-33.0, 2.0));
        p
    }

    #[test]
    fn fig3_c11_can_ride_alongside_c2() {
        let mut p = fig3();
        assert!(p.concurrency_allowed(("C2", "AP0"), "AP1").unwrap());
        // Second query hits the cache.
        assert!(p.concurrency_allowed(("C2", "AP0"), "AP1").unwrap());
        let (hits, misses) = p.cooccurrence().stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn missing_positions_error_cleanly() {
        let mut p: Protocol<&str> = Protocol::new("X", ProtocolConfig::testbed());
        assert_eq!(
            p.concurrency_allowed(("A", "B"), "C"),
            Err(CoMapError::OwnPositionUnknown)
        );
        p.set_own_position(Position::ORIGIN);
        assert_eq!(
            p.concurrency_allowed(("A", "B"), "C"),
            Err(CoMapError::UnknownNeighbor("C"))
        );
    }

    #[test]
    fn own_link_is_rejected_as_ongoing() {
        let mut p = fig3();
        assert_eq!(
            p.concurrency_allowed(("C11", "AP1"), "AP1"),
            Err(CoMapError::SelfReference("C11"))
        );
    }

    #[test]
    fn neighbor_motion_invalidates_cache() {
        let mut p = fig3();
        assert!(p.concurrency_allowed(("C2", "AP0"), "AP1").unwrap());
        assert_eq!(p.cooccurrence().len(), 1);
        // C2 walks 20 m: every cached verdict involving it must go.
        assert!(p.on_position_report("C2", Position::new(-10.0, 0.0)));
        assert_eq!(p.cooccurrence().len(), 0);
    }

    #[test]
    fn sub_threshold_motion_keeps_cache() {
        let mut p = fig3();
        let _ = p.concurrency_allowed(("C2", "AP0"), "AP1").unwrap();
        assert!(!p.on_position_report("C2", Position::new(-29.0, 0.0)));
        assert_eq!(p.cooccurrence().len(), 1);
    }

    #[test]
    fn own_motion_clears_cache() {
        let mut p = fig3();
        let _ = p.concurrency_allowed(("C2", "AP0"), "AP1").unwrap();
        p.set_own_position(Position::new(7.0, 0.0));
        assert!(p.cooccurrence().is_empty());
    }

    #[test]
    fn census_and_setting_flow() {
        // A 20 m link with a node 42 m from the sender (past the ~36 m
        // 90 %-miss boundary) and 22 m from the receiver (inside the
        // interference range of a 20 m link): a textbook hidden terminal.
        let mut p = Protocol::new("me", ProtocolConfig::testbed());
        p.set_own_position(Position::new(0.0, 0.0));
        p.on_position_report("AP", Position::new(20.0, 0.0));
        p.on_position_report("H", Position::new(42.0, 0.0));
        let census = p.ht_census("AP").unwrap();
        assert_eq!(census.hidden, vec!["H"], "census = {census:?}");
        let setting = p.tx_setting("AP").unwrap();
        let calm = p.adaptation().setting(0, census.n_contenders());
        assert!(setting.payload_bytes <= calm.payload_bytes);
    }

    #[test]
    fn position_report_about_self_sets_own() {
        let mut p: Protocol<&str> = Protocol::new("me", ProtocolConfig::testbed());
        assert!(p.on_position_report("me", Position::new(1.0, 2.0)));
        assert_eq!(p.own_position(), Some(Position::new(1.0, 2.0)));
    }

    #[test]
    fn observe_position_respects_threshold() {
        let mut p: Protocol<&str> = Protocol::new("me", ProtocolConfig::testbed());
        assert!(p.observe_position(Position::ORIGIN).is_some());
        assert!(p.observe_position(Position::new(1.0, 0.0)).is_none());
        assert_eq!(p.own_position(), Some(Position::ORIGIN));
        assert!(p.observe_position(Position::new(9.0, 0.0)).is_some());
        assert_eq!(p.location_stats().0, 2);
    }
}
