//! Packet-size / contention-window adaptation (paper Section IV-D3).
//!
//! "To reduce the computation overhead on mobile devices, we calculate the
//! best packet configurations for different number of HTs and contending
//! nodes beforehand. The results are recorded in a 2-dimension array."
//!
//! [`AdaptationTable::precompute`] grid-searches the analytical model over
//! candidate windows and payload sizes for every `(h, c)` cell; lookups
//! clamp out-of-range counts to the table edge.

use serde::{Deserialize, Serialize};

use comap_mac::timing::PhyTiming;
use comap_radio::rates::Rate;

use crate::model::{DcfModel, HiddenProfile, ModelInput};

/// One precomputed best setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxSetting {
    /// Contention window to install.
    pub cw: u32,
    /// Payload size in bytes.
    pub payload_bytes: u32,
    /// The model-predicted per-node goodput at this setting (bits/s).
    pub predicted_goodput: f64,
}

/// The 2-D array of best `(CW, payload)` settings, indexed by
/// `(hidden terminals, contenders)`.
///
/// ```rust
/// use comap_core::AdaptationTable;
/// use comap_mac::timing::PhyTiming;
/// use comap_radio::rates::Rate;
///
/// let table = AdaptationTable::precompute(PhyTiming::dsss(), Rate::Mbps11, 5, 5);
/// let calm = table.setting(0, 4);
/// let noisy = table.setting(5, 4);
/// // More hidden terminals ⇒ shorter packets.
/// assert!(noisy.payload_bytes <= calm.payload_bytes);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationTable {
    max_hidden: usize,
    max_contenders: usize,
    /// Row-major `[h][c]`.
    settings: Vec<TxSetting>,
}

/// Candidate contention windows (the `2^k − 1` ladder the paper sweeps in
/// Fig. 7).
pub const CW_CANDIDATES: [u32; 6] = [31, 63, 127, 255, 511, 1023];

/// Candidate payload sizes in bytes (100 B steps up to the Ethernet-ish
/// 2200 B the paper sweeps).
pub fn payload_candidates() -> impl Iterator<Item = u32> {
    (1..=22).map(|i| i * 100)
}

/// MTU-ish ceiling installed by the protocol's own table: real stacks do
/// not send 2200-byte MPDUs.
pub const DEFAULT_MAX_PAYLOAD: u32 = 1500;

impl AdaptationTable {
    /// Precomputes best settings for `h ∈ 0..=max_hidden` and
    /// `c ∈ 0..=max_contenders`, with payload candidates capped at
    /// [`DEFAULT_MAX_PAYLOAD`] and hidden terminals modelled as stock DCF
    /// stations ([`HiddenProfile::DCF_DEFAULT`]) — they keep *their* window
    /// whatever we install for ourselves.
    pub fn precompute(
        phy: PhyTiming,
        rate: Rate,
        max_hidden: usize,
        max_contenders: usize,
    ) -> Self {
        Self::precompute_with(
            phy,
            rate,
            max_hidden,
            max_contenders,
            DEFAULT_MAX_PAYLOAD,
            Some(HiddenProfile::DCF_DEFAULT),
            &CW_CANDIDATES,
        )
    }

    /// Fully parameterized precomputation (ablations use this to restore
    /// the homogeneous model or other payload ceilings). `cw_choices`
    /// restricts the window candidates — pass `&[31]` for payload-only
    /// adaptation.
    pub fn precompute_with(
        phy: PhyTiming,
        rate: Rate,
        max_hidden: usize,
        max_contenders: usize,
        max_payload: u32,
        hidden_profile: Option<HiddenProfile>,
        cw_choices: &[u32],
    ) -> Self {
        assert!(
            !cw_choices.is_empty(),
            "at least one window candidate required"
        );
        let mut settings = Vec::with_capacity((max_hidden + 1) * (max_contenders + 1));
        for h in 0..=max_hidden {
            for c in 0..=max_contenders {
                settings.push(Self::optimize(
                    phy,
                    rate,
                    h,
                    c,
                    max_payload,
                    hidden_profile,
                    cw_choices,
                ));
            }
        }
        AdaptationTable {
            max_hidden,
            max_contenders,
            settings,
        }
    }

    /// Grid-argmax of the analytical model for one `(h, c)` cell.
    fn optimize(
        phy: PhyTiming,
        rate: Rate,
        hidden: usize,
        contenders: usize,
        max_payload: u32,
        hidden_profile: Option<HiddenProfile>,
        cw_choices: &[u32],
    ) -> TxSetting {
        let mut best = TxSetting {
            cw: cw_choices[0],
            payload_bytes: 100,
            predicted_goodput: f64::MIN,
        };
        for &cw in cw_choices {
            for payload_bytes in payload_candidates().filter(|&p| p <= max_payload) {
                let input = ModelInput {
                    phy,
                    rate,
                    cw,
                    contenders,
                    hidden,
                    payload_bytes,
                    hidden_profile,
                };
                let goodput = DcfModel::per_node_goodput(&input);
                if goodput > best.predicted_goodput {
                    best = TxSetting {
                        cw,
                        payload_bytes,
                        predicted_goodput: goodput,
                    };
                }
            }
        }
        best
    }

    /// The best setting for `hidden` HTs and `contenders` contending
    /// nodes; out-of-range counts clamp to the table edge.
    pub fn setting(&self, hidden: usize, contenders: usize) -> TxSetting {
        let h = hidden.min(self.max_hidden);
        let c = contenders.min(self.max_contenders);
        self.settings[h * (self.max_contenders + 1) + c]
    }

    /// Largest hidden-terminal count materialized in the table.
    pub fn max_hidden(&self) -> usize {
        self.max_hidden
    }

    /// Largest contender count materialized in the table.
    pub fn max_contenders(&self) -> usize {
        self.max_contenders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AdaptationTable {
        AdaptationTable::precompute(PhyTiming::dsss(), Rate::Mbps11, 5, 5)
    }

    #[test]
    fn no_ht_prefers_large_payload_small_window() {
        // Section VI-B: "the highest goodput of a link without HT is
        // achieved with the largest payload length and a small CW size".
        let t = table();
        let s = t.setting(0, 4);
        assert_eq!(
            s.payload_bytes, DEFAULT_MAX_PAYLOAD,
            "largest payload, got {s:?}"
        );
        assert!(s.cw <= 127, "small window, got {s:?}");
    }

    #[test]
    fn many_hts_prefer_short_payload() {
        let t = table();
        let calm = t.setting(0, 4);
        let noisy = t.setting(5, 4);
        assert!(
            noisy.payload_bytes < calm.payload_bytes,
            "payload must shrink with HTs: {calm:?} vs {noisy:?}"
        );
        // Under the heterogeneous model, growing our own window cannot
        // slow down the hidden terminals, so the optimizer must not pick
        // a pointlessly passive window either.
        assert!(
            noisy.cw <= 255,
            "window should stay reactive, got {noisy:?}"
        );
    }

    #[test]
    fn payload_is_monotone_nonincreasing_in_hidden_count() {
        let t = table();
        for c in 0..=5 {
            let mut prev = u32::MAX;
            for h in 0..=5 {
                let s = t.setting(h, c);
                assert!(
                    s.payload_bytes <= prev,
                    "payload grew from {prev} to {} at h={h}, c={c}",
                    s.payload_bytes
                );
                prev = s.payload_bytes;
            }
        }
    }

    #[test]
    fn lookups_clamp_to_edges() {
        let t = table();
        assert_eq!(t.setting(50, 50), t.setting(5, 5));
        assert_eq!(t.setting(0, 99), t.setting(0, 5));
    }

    #[test]
    fn predicted_goodput_is_positive_and_consistent() {
        let t = table();
        for h in 0..=5 {
            for c in 0..=5 {
                let s = t.setting(h, c);
                assert!(s.predicted_goodput > 0.0);
                let input = ModelInput {
                    phy: PhyTiming::dsss(),
                    rate: Rate::Mbps11,
                    cw: s.cw,
                    contenders: c,
                    hidden: h,
                    payload_bytes: s.payload_bytes,
                    hidden_profile: Some(HiddenProfile::DCF_DEFAULT),
                };
                let re = DcfModel::per_node_goodput(&input);
                assert!((re - s.predicted_goodput).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stored_setting_beats_alternatives() {
        let t = table();
        let s = t.setting(3, 4);
        for &cw in &CW_CANDIDATES {
            for payload_bytes in payload_candidates().filter(|&p| p <= DEFAULT_MAX_PAYLOAD) {
                let input = ModelInput {
                    phy: PhyTiming::dsss(),
                    rate: Rate::Mbps11,
                    cw,
                    contenders: 4,
                    hidden: 3,
                    payload_bytes,
                    hidden_profile: Some(HiddenProfile::DCF_DEFAULT),
                };
                assert!(DcfModel::per_node_goodput(&input) <= s.predicted_goodput + 1e-9);
            }
        }
    }
}
