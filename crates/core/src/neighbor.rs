//! The neighbor table: positions of nodes within two hops.
//!
//! Every node reports its position to its associated AP; APs disseminate
//! the reports, so each node learns the coordinates of its relative
//! neighbors "within 2-hop" (paper Fig. 3 and Section V). The table also
//! implements the paper's mobility-management rule: an update that moves a
//! neighbor by less than the configured threshold is absorbed without
//! signalling a change, so downstream caches are not needlessly
//! invalidated.

use std::collections::BTreeMap;

use comap_radio::units::Meters;
use comap_radio::Position;

use crate::config::MobilityConfig;
use crate::Addr;

/// One row of the neighbor table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborEntry {
    /// Last accepted position.
    pub position: Position,
    /// How many position reports were accepted for this neighbor.
    pub updates: u64,
}

/// A node's view of the positions of its 2-hop neighborhood.
///
/// ```rust
/// use comap_core::{NeighborTable, MobilityConfig};
/// use comap_radio::Position;
///
/// let mut t = NeighborTable::new(MobilityConfig::default());
/// assert!(t.update("C2", Position::new(4.0, -10.0)));
/// // A 1 m wiggle is below the default 5 m threshold: absorbed.
/// assert!(!t.update("C2", Position::new(4.5, -10.0)));
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable<A: Addr> {
    entries: BTreeMap<A, NeighborEntry>,
    mobility: MobilityConfig,
}

impl<A: Addr> NeighborTable<A> {
    /// Creates an empty table with the given mobility policy.
    pub fn new(mobility: MobilityConfig) -> Self {
        NeighborTable {
            entries: BTreeMap::new(),
            mobility,
        }
    }

    /// Records a position report. Returns `true` when the table content
    /// *changed* — a new neighbor, or a move beyond the mobility
    /// threshold — so the caller knows to invalidate derived state.
    pub fn update(&mut self, addr: A, position: Position) -> bool {
        match self.entries.get_mut(&addr) {
            None => {
                self.entries.insert(
                    addr,
                    NeighborEntry {
                        position,
                        updates: 1,
                    },
                );
                true
            }
            Some(entry) => {
                let moved = entry.position.distance_to(position);
                if moved.value() > self.mobility.update_threshold.value() {
                    entry.position = position;
                    entry.updates += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Forces a position in, bypassing the movement threshold (used when
    /// bootstrapping from a topology description).
    pub fn insert(&mut self, addr: A, position: Position) {
        self.entries
            .entry(addr)
            .and_modify(|e| {
                e.position = position;
                e.updates += 1;
            })
            .or_insert(NeighborEntry {
                position,
                updates: 1,
            });
    }

    /// Drops a neighbor (e.g. on disassociation).
    pub fn remove(&mut self, addr: A) -> Option<NeighborEntry> {
        self.entries.remove(&addr)
    }

    /// The last accepted position of `addr`, if known.
    pub fn position(&self, addr: A) -> Option<Position> {
        self.entries.get(&addr).map(|e| e.position)
    }

    /// Distance between two known neighbors.
    pub fn distance(&self, a: A, b: A) -> Option<Meters> {
        Some(self.position(a)?.distance_to(self.position(b)?))
    }

    /// Number of known neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no neighbor has reported yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `addr` is in the table.
    pub fn contains(&self, addr: A) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Iterates over `(addr, entry)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (A, &NeighborEntry)> + '_ {
        self.entries.iter().map(|(a, e)| (*a, e))
    }

    /// Addresses of all known neighbors, in order.
    pub fn addrs(&self) -> impl Iterator<Item = A> + '_ {
        self.entries.keys().copied()
    }

    /// The mobility policy in force.
    pub fn mobility(&self) -> MobilityConfig {
        self.mobility
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> NeighborTable<&'static str> {
        NeighborTable::new(MobilityConfig::for_tolerated_inaccuracy(Meters::new(10.0)))
    }

    #[test]
    fn first_report_always_changes() {
        let mut t = table();
        assert!(t.update("C0", Position::ORIGIN));
        assert_eq!(t.len(), 1);
        assert_eq!(t.position("C0"), Some(Position::ORIGIN));
    }

    #[test]
    fn small_moves_are_absorbed() {
        let mut t = table();
        t.update("C0", Position::ORIGIN);
        assert!(!t.update("C0", Position::new(3.0, 0.0)));
        // Position stays at the previously accepted value.
        assert_eq!(t.position("C0"), Some(Position::ORIGIN));
    }

    #[test]
    fn large_moves_are_applied() {
        let mut t = table();
        t.update("C0", Position::ORIGIN);
        assert!(t.update("C0", Position::new(6.0, 0.0)));
        assert_eq!(t.position("C0"), Some(Position::new(6.0, 0.0)));
    }

    #[test]
    fn absorbed_moves_do_not_accumulate_silently_forever() {
        // Repeated sub-threshold reports relative to the *accepted*
        // position eventually cross the threshold and are applied.
        let mut t = table();
        t.update("C0", Position::ORIGIN);
        assert!(!t.update("C0", Position::new(4.0, 0.0)));
        assert!(t.update("C0", Position::new(8.0, 0.0)));
    }

    #[test]
    fn insert_bypasses_threshold() {
        let mut t = table();
        t.insert("C0", Position::ORIGIN);
        t.insert("C0", Position::new(1.0, 0.0));
        assert_eq!(t.position("C0"), Some(Position::new(1.0, 0.0)));
        assert_eq!(t.entries.get("C0").unwrap().updates, 2);
    }

    #[test]
    fn distance_between_neighbors() {
        let mut t = table();
        t.insert("A", Position::ORIGIN);
        t.insert("B", Position::new(3.0, 4.0));
        assert_eq!(t.distance("A", "B"), Some(Meters::new(5.0)));
        assert_eq!(t.distance("A", "Z"), None);
    }

    #[test]
    fn remove_forgets_neighbor() {
        let mut t = table();
        t.insert("A", Position::ORIGIN);
        assert!(t.remove("A").is_some());
        assert!(t.is_empty());
        assert!(!t.contains("A"));
    }

    #[test]
    fn iteration_is_ordered() {
        let mut t = table();
        t.insert("C", Position::ORIGIN);
        t.insert("A", Position::ORIGIN);
        t.insert("B", Position::ORIGIN);
        let order: Vec<_> = t.addrs().collect();
        assert_eq!(order, vec!["A", "B", "C"]);
    }
}
