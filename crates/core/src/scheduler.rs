//! Enhanced scheduling among multiple exposed terminals
//! (paper Section IV-C3, Fig. 6).
//!
//! Several ETs may pass concurrency validation against the same ongoing
//! transmission; letting them all fire would collide *with each other*.
//! CO-MAP's rule keeps the DCF backoff race but changes what "busy" means:
//!
//! 1. On discovering the ongoing transmission, an ET records the current
//!    received power `RSSI₁` and **resumes** its backoff instead of
//!    freezing.
//! 2. While counting down it keeps measuring `RSSI₂`. If
//!    `RSSI₂ ≥ RSSI₁ + T'_cs` — the ambient power rose by at least one
//!    carrier-sense-level signal — another ET has already claimed the
//!    concurrency opportunity, and the node abandons it.
//! 3. Otherwise it transmits when its counter expires.
//!
//! `T'_cs` is the CCA threshold with the noise floor removed (Table I:
//! −80.14 dBm for `T_cs = −80 dBm`), because the delta of two RSSI
//! readings cancels the floor. The comparison happens in linear
//! milliwatts: power sums, not dB values.

use comap_radio::units::{Dbm, MilliWatts};

/// What the ET should do after an RSSI observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtAction {
    /// Keep counting down toward the concurrent transmission.
    Continue,
    /// Another exposed terminal fired first: abandon the opportunity and
    /// fall back to ordinary deference.
    Abandon,
}

/// The RSSI-delta watchdog an ET runs during its (resumed) backoff.
///
/// ```rust
/// use comap_core::{EtAction, EtScheduler};
/// use comap_radio::units::Dbm;
///
/// let sched = EtScheduler::arm(Dbm::new(-62.0), Dbm::new(-80.14));
/// // Ambient power unchanged: keep going.
/// assert_eq!(sched.on_rssi(Dbm::new(-62.0)), EtAction::Continue);
/// // A second ET's −70 dBm signal lands on top: abandon.
/// assert_eq!(sched.on_rssi(Dbm::new(-61.0)), EtAction::Abandon);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtScheduler {
    rssi1: MilliWatts,
    threshold: MilliWatts,
}

impl EtScheduler {
    /// Arms the watchdog with the power observed at discovery time
    /// (`RSSI₁`) and the noise-free CCA threshold `T'_cs`.
    pub fn arm(rssi1: Dbm, t_cs_delta: Dbm) -> Self {
        EtScheduler {
            rssi1: rssi1.to_milliwatts(),
            threshold: t_cs_delta.to_milliwatts(),
        }
    }

    /// Evaluates one RSSI reading against the abandon rule.
    pub fn on_rssi(&self, rssi2: Dbm) -> EtAction {
        let delta = rssi2.to_milliwatts() - self.rssi1;
        if delta.value() >= self.threshold.value() {
            EtAction::Abandon
        } else {
            EtAction::Continue
        }
    }

    /// The armed reference power `RSSI₁`.
    pub fn rssi1(&self) -> Dbm {
        self.rssi1.to_dbm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comap_radio::units::Db;

    const T_CS_DELTA: Dbm = Dbm::new(-80.14);

    #[test]
    fn steady_rssi_continues() {
        let s = EtScheduler::arm(Dbm::new(-60.0), T_CS_DELTA);
        assert_eq!(s.on_rssi(Dbm::new(-60.0)), EtAction::Continue);
        // Small fades below RSSI1 are also fine.
        assert_eq!(s.on_rssi(Dbm::new(-63.0)), EtAction::Continue);
    }

    #[test]
    fn a_second_strong_et_triggers_abandon() {
        // RSSI1 = −60 dBm; a −70 dBm second signal adds ~0.1 µW — far over
        // the 9.7 pW threshold at T'_cs = −80.14 dBm.
        let s = EtScheduler::arm(Dbm::new(-60.0), T_CS_DELTA);
        let combined = (Dbm::new(-60.0).to_milliwatts() + Dbm::new(-70.0).to_milliwatts()).to_dbm();
        assert_eq!(s.on_rssi(combined), EtAction::Abandon);
    }

    #[test]
    fn a_sub_threshold_whisper_is_ignored() {
        // A −95 dBm addition stays below the −80.14 dBm delta threshold.
        let s = EtScheduler::arm(Dbm::new(-60.0), T_CS_DELTA);
        let combined = (Dbm::new(-60.0).to_milliwatts() + Dbm::new(-95.0).to_milliwatts()).to_dbm();
        assert_eq!(s.on_rssi(combined), EtAction::Continue);
    }

    #[test]
    fn threshold_boundary_triggers() {
        // Just above the threshold (a hair over to dodge the dBm↔mW
        // round-trip rounding) must abandon; just below must continue.
        let s = EtScheduler::arm(Dbm::new(-60.0), T_CS_DELTA);
        let base = Dbm::new(-60.0).to_milliwatts();
        let above = (base + MilliWatts::new(T_CS_DELTA.to_milliwatts().value() * 1.001)).to_dbm();
        let below = (base + MilliWatts::new(T_CS_DELTA.to_milliwatts().value() * 0.999)).to_dbm();
        assert_eq!(s.on_rssi(above), EtAction::Abandon);
        assert_eq!(s.on_rssi(below), EtAction::Continue);
    }

    #[test]
    fn works_regardless_of_base_level() {
        // The rule is about the delta, not the absolute level.
        for base in [-85.0, -70.0, -50.0] {
            let s = EtScheduler::arm(Dbm::new(base), T_CS_DELTA);
            let second = Dbm::new(-75.0); // well above T'_cs
            let combined = (Dbm::new(base).to_milliwatts() + second.to_milliwatts()).to_dbm();
            assert_eq!(s.on_rssi(combined), EtAction::Abandon, "base {base}");
        }
    }

    #[test]
    fn rssi1_round_trips() {
        let s = EtScheduler::arm(Dbm::new(-60.0), T_CS_DELTA);
        assert!((s.rssi1() - Dbm::new(-60.0)).value().abs() < 1e-9);
        let _ = Db::ZERO;
    }
}
