//! Property-based tests of the CO-MAP protocol invariants.

use comap_core::adapt::{payload_candidates, AdaptationTable, CW_CANDIDATES};
use comap_core::cooccurrence::CoOccurrenceMap;
use comap_core::model::{DcfModel, HiddenProfile, ModelInput};
use comap_core::validate::ConcurrencyValidator;
use comap_core::ProtocolConfig;
use comap_mac::timing::PhyTiming;
use comap_radio::rates::Rate;
use comap_radio::Position;
use proptest::prelude::*;

fn arb_pos() -> impl Strategy<Value = Position> {
    ((-150.0..150.0f64), (-150.0..150.0f64)).prop_map(|(x, y)| Position::new(x, y))
}

proptest! {
    /// The concurrency decision is a pure function of geometry: swapping
    /// the two links swaps the directional PRRs.
    #[test]
    fn validation_is_geometrically_symmetric(
        a in arb_pos(), b in arb_pos(), c in arb_pos(), d in arb_pos(),
    ) {
        let cfg = ProtocolConfig::testbed();
        let v = ConcurrencyValidator::new(cfg.reception(), cfg.t_prr);
        let (p1, p2) = v.pairwise(a, b, c, d);
        let (q1, q2) = v.pairwise(c, d, a, b);
        prop_assert!((p1 - q2).abs() < 1e-9 && (p2 - q1).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p2));
    }

    /// Model probabilities stay probabilities over the whole parameter
    /// grid, and goodput is finite and non-negative.
    #[test]
    fn model_is_well_behaved(
        cw in 1u32..2048,
        contenders in 0usize..20,
        hidden in 0usize..10,
        payload in 50u32..2400,
        hetero in any::<bool>(),
    ) {
        let input = ModelInput {
            phy: PhyTiming::dsss(),
            rate: Rate::Mbps11,
            cw,
            contenders,
            hidden,
            payload_bytes: payload,
            hidden_profile: hetero.then_some(HiddenProfile::DCF_DEFAULT),
        };
        let stats = DcfModel::slot_stats(&input);
        for v in [stats.tau, stats.p_tr, stats.p_s, stats.p_s_i] {
            prop_assert!((0.0..=1.0).contains(&v), "{stats:?}");
        }
        let s = DcfModel::per_node_goodput(&input);
        prop_assert!(s.is_finite() && s >= 0.0);
        prop_assert!(s <= Rate::Mbps11.bits_per_second());
    }

    /// Adding hidden terminals never increases modeled goodput.
    #[test]
    fn model_monotone_in_hidden_terminals(
        cw in prop::sample::select(CW_CANDIDATES.to_vec()),
        contenders in 0usize..10,
        payload in 100u32..2200,
        hidden in 0usize..8,
    ) {
        let mk = |h: usize| ModelInput {
            phy: PhyTiming::dsss(),
            rate: Rate::Mbps11,
            cw,
            contenders,
            hidden: h,
            payload_bytes: payload,
            hidden_profile: Some(HiddenProfile::DCF_DEFAULT),
        };
        let a = DcfModel::per_node_goodput(&mk(hidden));
        let b = DcfModel::per_node_goodput(&mk(hidden + 1));
        prop_assert!(b <= a + 1e-9);
    }

    /// The adaptation table's stored entry beats (or ties) every
    /// candidate it was allowed to choose from.
    #[test]
    fn adaptation_entry_is_argmax(h in 0usize..4, c in 0usize..4) {
        let t = AdaptationTable::precompute(PhyTiming::dsss(), Rate::Mbps11, 4, 4);
        let s = t.setting(h, c);
        for &cw in &CW_CANDIDATES {
            for payload in payload_candidates().filter(|&p| p <= 1500) {
                let g = DcfModel::per_node_goodput(&ModelInput {
                    phy: PhyTiming::dsss(),
                    rate: Rate::Mbps11,
                    cw,
                    contenders: c,
                    hidden: h,
                    payload_bytes: payload,
                    hidden_profile: Some(HiddenProfile::DCF_DEFAULT),
                });
                prop_assert!(g <= s.predicted_goodput + 1e-9);
            }
        }
    }

    /// The co-occurrence map behaves like a map: last write wins, lookup
    /// reflects exactly the recorded set, invalidation removes precisely
    /// the entries involving the node.
    #[test]
    fn cooccurrence_map_semantics(
        ops in prop::collection::vec((0u8..3, 0u32..6, 0u32..6, 0u32..6, any::<bool>()), 0..120),
    ) {
        let mut map: CoOccurrenceMap<u32> = CoOccurrenceMap::new();
        let mut shadow: std::collections::BTreeMap<((u32, u32), u32), bool> =
            std::collections::BTreeMap::new();
        for (op, a, b, r, allowed) in ops {
            match op {
                0 => {
                    if a != b {
                        map.record((a, b), r, allowed);
                        shadow.insert(((a, b), r), allowed);
                    }
                }
                1 => {
                    if a != b {
                        let got = map.lookup((a, b), r);
                        prop_assert_eq!(got, shadow.get(&((a, b), r)).copied());
                    }
                }
                _ => {
                    map.invalidate_involving(a);
                    shadow.retain(|&((s, d), rx), _| s != a && d != a && rx != a);
                }
            }
        }
    }
}
